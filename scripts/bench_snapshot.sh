#!/usr/bin/env bash
# Perf snapshot of the hot kernels: runs the criterion kernel + solve
# microbenches (quick mode by default) and the bench_snapshot binary, which
# writes BENCH_PR8.json with spmv/rap/assemble timings, the cold-vs-planned
# speedups, the multi-vector (SpMM / batched matrix-free) kernel timings at
# k = 1/4/8 with per-vector speedups, the fine-operator A/B (assembled
# CSR/BSR3 bytes vs the batched element-kernel matrix-free operator,
# memory ratio + per-apply times + the apply_ratio headline), the
# 1-thread-vs-pool thread-scaling section (marked degenerate on 1-core
# hosts), the plan/pattern reuse counters, the comm section comparing the
# same spheres solve over simulated ranks, 2 threaded ranks (in-process
# transport), and 2 socket ranks (separate processes under pmg-launch)
# with real measured message counts and per-phase wait times, the
# overlap section running the threaded and socket solves A/B with the
# comm/compute overlap off vs on (blocked halo wait, hidden window,
# interior/boundary row split, allreduce fusion), and the setup
# weak-scaling section: RankHierarchy::build_distributed over 1/2/4
# threaded ranks at ~40k dofs per rank with per-phase times and
# weak-scaling efficiencies (marked degenerate on 1-core hosts). The meta
# block records the pool size, git SHA, and host core count so snapshots
# are comparable across machines.
#
# Knobs:
#   PMG_THREADS          pool size for the thread-scaling section
#                        (default 4 so snapshots are comparable; the host
#                        core count is recorded in meta.host_cores)
#   CRITERION_SAMPLE_MS  per-benchmark criterion budget (default 50 here)
#   PMG_BENCH_MS         per-measurement budget in bench_snapshot (ms)
#   PMG_BENCH_K          spheres ladder point (default 0 = tiny)
#   PMG_BENCH_SETUP_DOF  target dofs per rank in the setup weak-scaling
#                        section (default 40000; CI uses a small value)
#   PMG_BENCH_OUT        snapshot path (default BENCH_PR8.json)
#   PMG_SERVE_BENCH_OUT  serve-section snapshot path (default BENCH_PR9.json)
#   PMG_MEM_BENCH_OUT    memory-scaling snapshot path (default BENCH_PR10.json)
#   PMG_MEM_DOF          target dofs per rank in the memory-scaling
#                        section (default 40000; CI uses a small value)
#   PMG_SERVE_BENCH_REQUESTS
#                        requests per concurrency level in the serve
#                        saturation sweep (default 16)
#   PMG_BENCH_ASSERT_SERVE=1
#                        turn on just the (deterministic) serve floors:
#                        warm-cache hits skip setup, daemon answers are
#                        bitwise the offline solves, hit rate >= 0.9
#   PMG_BENCH_ASSERT_MEM=1
#                        turn on just the (deterministic) memory-scaling
#                        floors without the timing-sensitive PR8 ones
#   PMG_BENCH_ASSERT=1   fail unless planned RAP and pattern-reuse assembly
#                        are >= 1.5x their cold baselines, the matrix-free
#                        fine operator is >= 2x smaller than the assembled
#                        matrix, its apply is <= 2x the BSR3 apply
#                        (apply_ratio), the k = 4 matrix-free
#                        multi-apply is >= 1.3x faster per vector than
#                        four single applies, and (memory-scaling floors,
#                        deterministic byte counts) the p = 4 owned coarse
#                        share is <= 0.6x the replicated baseline with
#                        per-rank fine bytes/row within 1.5x of p = 1
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-50}"
export PMG_THREADS="${PMG_THREADS:-4}"

echo "== criterion kernel benches (CRITERION_SAMPLE_MS=$CRITERION_SAMPLE_MS) =="
cargo bench --offline -p pmg-bench --bench kernels

echo
echo "== criterion solve benches =="
cargo bench --offline -p pmg-bench --bench solve

echo
echo "== bench_snapshot (PMG_THREADS=$PMG_THREADS) -> ${PMG_BENCH_OUT:-BENCH_PR8.json} =="
# The socket data point launches a sibling spheres_rank binary; build it
# first so bench_snapshot finds it next to itself in target/release.
cargo build --release --offline --bin spheres_rank
cargo run --release --offline -p pmg-bench --bin bench_snapshot

echo
echo "== pmg-serve saturation (in-process daemon) -> ${PMG_SERVE_BENCH_OUT:-BENCH_PR9.json} =="
# Warm-hierarchy daemon bench: spawns an in-process pmg-serve on a
# private Unix socket, warms the spheres hierarchy once, then sweeps
# offered concurrency 1/2/4/8/16 with closed-loop clients. Records
# client-observed latency percentiles, throughput, busy rejections, the
# batch-size histogram, and the cache hit rate into BENCH_PR9.json.
# PMG_BENCH_ASSERT_SERVE=1 (or PMG_BENCH_ASSERT=1) turns on the serve
# floors, which are deterministic even on noisy hosts: warm-cache
# requests report setup_s == 0 (hits skip setup entirely), every daemon
# answer is bitwise the offline solve, and the single-spec sweep hits
# the warm cache on >= 90% of batches.
cargo build --release --offline --bin pmg_bench_client
PMG_BENCH_OUT="${PMG_SERVE_BENCH_OUT:-BENCH_PR9.json}" \
PMG_BENCH_ASSERT="${PMG_BENCH_ASSERT_SERVE:-${PMG_BENCH_ASSERT:-}}" \
  target/release/pmg_bench_client --requests "${PMG_SERVE_BENCH_REQUESTS:-16}"

echo
echo "== memory scaling (partition-at-ingest) -> ${PMG_MEM_BENCH_OUT:-BENCH_PR10.json} =="
# Weak-scales the sharded-ingest setup over 1/2/4 in-process ranks at a
# fixed per-rank problem size and records the per-rank resident operator
# bytes per level. The headline numbers: the worst rank's owned
# coarse-level share vs the replicated baseline (what every rank held
# before coarse levels were demoted to owned shares), and the per-rank
# fine bytes per owned row, which stays ~flat when ingest ships each rank
# only its own share. Both are deterministic byte counts, so the
# PMG_BENCH_ASSERT floors hold even on noisy hosts.
PMG_BENCH_OUT="${PMG_MEM_BENCH_OUT:-BENCH_PR10.json}" \
PMG_BENCH_ASSERT="${PMG_BENCH_ASSERT_MEM:-${PMG_BENCH_ASSERT:-}}" \
  cargo run --release --offline -p pmg-bench --bin mem_snapshot

echo
echo "done; snapshots in ${PMG_BENCH_OUT:-BENCH_PR8.json}, ${PMG_SERVE_BENCH_OUT:-BENCH_PR9.json}, and ${PMG_MEM_BENCH_OUT:-BENCH_PR10.json}"
