#!/usr/bin/env bash
# Perf snapshot of the hot kernels: runs the criterion kernel + solve
# microbenches (quick mode by default) and the bench_snapshot binary, which
# writes BENCH_PR3.json with spmv/rap/assemble timings, the cold-vs-planned
# speedups, the 1-thread-vs-pool thread-scaling section, and the
# plan/pattern reuse counters. The meta block records the pool size, git
# SHA, and host core count so snapshots are comparable across machines.
#
# Knobs:
#   PMG_THREADS          pool size for the thread-scaling section
#                        (default 4 so snapshots are comparable; the host
#                        core count is recorded in meta.host_cores)
#   CRITERION_SAMPLE_MS  per-benchmark criterion budget (default 50 here)
#   PMG_BENCH_MS         per-measurement budget in bench_snapshot (ms)
#   PMG_BENCH_K          spheres ladder point (default 0 = tiny)
#   PMG_BENCH_ASSERT=1   fail unless planned RAP and pattern-reuse assembly
#                        are >= 1.5x their cold baselines
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-50}"
export PMG_THREADS="${PMG_THREADS:-4}"

echo "== criterion kernel benches (CRITERION_SAMPLE_MS=$CRITERION_SAMPLE_MS) =="
cargo bench --offline -p pmg-bench --bench kernels

echo
echo "== criterion solve benches =="
cargo bench --offline -p pmg-bench --bench solve

echo
echo "== bench_snapshot (PMG_THREADS=$PMG_THREADS) -> BENCH_PR3.json =="
cargo run --release --offline -p pmg-bench --bin bench_snapshot

echo
echo "done; snapshot in ${PMG_BENCH_OUT:-BENCH_PR3.json}"
