#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation in one go.
# Ladder depth: PMG_MAX_K (default 2 ≈ seconds-to-minutes; 3 adds a ~420k
# dof point; 4 a ~1M dof point). Output goes to stdout; tee it somewhere.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo
  echo "================================================================"
  echo "== $*"
  echo "================================================================"
  cargo run --release -p pmg-bench --bin "$@"
}

export PMG_MAX_K="${PMG_MAX_K:-2}"

run table1
run fig9_problem
run table2_iterations
run fig10_times
run fig11_efficiency
run fig12_components
run fig7_grids
run fig13_nonlinear 1
run mis_ordering_study
run thin_body_ablation
run ordering_ablation
run smoother_ablation
run face_tol_study
run coarse_size_study
run sa_comparison

echo
echo "all artifacts regenerated (ladder depth PMG_MAX_K=$PMG_MAX_K)"
