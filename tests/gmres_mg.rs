//! Multigrid-preconditioned GMRES — the related-work configuration (Owen,
//! Feng & Peric use MG-enhanced GMRES for elasto-plasticity). The same
//! hierarchy that preconditions CG drives GMRES, including on an
//! unsymmetric perturbation of the operator where CG is off the table.

use pmg_fem::{FemProblem, LinearElastic};
use pmg_geometry::Vec3;
use pmg_mesh::generators::block;
use pmg_parallel::{DistMatrix, DistVec, Layout, MachineModel, Sim};
use pmg_solver::{gmres, GmresOptions, IdentityPrecond};
use pmg_sparse::{CooBuilder, CsrMatrix};
use prometheus::{classify_mesh, MgHierarchy, MgOptions};

fn elasticity(n: usize) -> (pmg_mesh::Mesh, CsrMatrix, Vec<f64>) {
    let mesh = block(n, n, n, Vec3::splat(1.0), |_| 0);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![std::sync::Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        if p.z == 1.0 {
            f[3 * v] = 0.01;
        }
    }
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
    (mesh, kc, rhs.iter().map(|v| -v).collect())
}

#[test]
fn mg_preconditioned_gmres_on_elasticity() {
    let (mesh, kc, b) = elasticity(6);
    let mut sim = Sim::new(2, MachineModel::default());
    let graph = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let mg = MgHierarchy::build(
        &mut sim,
        &kc,
        &mesh.coords,
        &graph,
        &classes,
        MgOptions {
            coarse_dof_threshold: 300,
            ..Default::default()
        },
    );
    let layout = mg.levels[0].a.row_layout().clone();
    let db = DistVec::from_global(layout.clone(), &b);

    // Unpreconditioned GMRES for the baseline.
    let mut x0 = DistVec::zeros(layout.clone());
    let plain = gmres(
        &mut sim,
        &mg.levels[0].a,
        &IdentityPrecond,
        &db,
        &mut x0,
        GmresOptions {
            rtol: 1e-8,
            max_iters: 2000,
            restart: 50,
        },
    );

    let mut x1 = DistVec::zeros(layout);
    let pre = gmres(
        &mut sim,
        &mg.levels[0].a,
        &mg,
        &db,
        &mut x1,
        GmresOptions {
            rtol: 1e-8,
            max_iters: 200,
            restart: 50,
        },
    );
    assert!(pre.converged, "{pre:?}");
    assert!(
        pre.iterations * 3 < plain.iterations.max(60),
        "MG-GMRES {} vs plain {}",
        pre.iterations,
        plain.iterations
    );
    // Verify against the operator.
    let xg = x1.to_global();
    let mut ax = vec![0.0; b.len()];
    kc.spmv(&xg, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-6 * bn);
}

#[test]
fn mg_gmres_survives_unsymmetric_perturbation() {
    // Add a skew perturbation (e.g. from a non-associated flow rule): CG's
    // assumptions break, MG-GMRES keeps working with the hierarchy built
    // from the symmetric part.
    let (mesh, kc, b) = elasticity(5);
    let n = kc.nrows();
    let mut pert = CooBuilder::new(n, n);
    for (i, j, v) in kc.iter() {
        pert.push(i, j, v);
        if i < j {
            // 5% skew on the off-diagonal couplings.
            pert.push(i, j, 0.05 * v);
            pert.push(j, i, -0.05 * v);
        }
    }
    let a_unsym = pert.build();
    assert!(!a_unsym.is_symmetric(1e-10));

    let mut sim = Sim::new(2, MachineModel::default());
    let graph = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    // Hierarchy built from the symmetric operator; applied to the
    // unsymmetric one.
    let mg = MgHierarchy::build(
        &mut sim,
        &kc,
        &mesh.coords,
        &graph,
        &classes,
        MgOptions {
            coarse_dof_threshold: 300,
            ..Default::default()
        },
    );
    let layout = mg.levels[0].a.row_layout().clone();
    let da = DistMatrix::from_global(&a_unsym, layout.clone(), layout.clone());
    let db = DistVec::from_global(layout.clone(), &b);
    let mut x = DistVec::zeros(layout);
    let res = gmres(
        &mut sim,
        &da,
        &mg,
        &db,
        &mut x,
        GmresOptions {
            rtol: 1e-8,
            max_iters: 300,
            restart: 60,
        },
    );
    assert!(res.converged, "{res:?}");
    let xg = x.to_global();
    let mut ax = vec![0.0; n];
    a_unsym.spmv(&xg, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-6 * bn);
}

#[test]
fn layout_block_vs_rcb_same_gmres_counts() {
    // GMRES in exact arithmetic is layout independent; check counts stay
    // within rounding jitter across distributions.
    let (mesh, kc, b) = elasticity(4);
    let n = kc.nrows();
    let mut counts = Vec::new();
    for use_rcb in [false, true] {
        let layout = if use_rcb {
            let part = pmg_partition::recursive_coordinate_bisection(&mesh.coords, 3);
            Layout::expand_dofs(&Layout::from_part(part, 3), 3)
        } else {
            Layout::block(n, 3)
        };
        let mut sim = Sim::new(3, MachineModel::default());
        let da = DistMatrix::from_global(&kc, layout.clone(), layout.clone());
        let db = DistVec::from_global(layout.clone(), &b);
        let mut x = DistVec::zeros(layout);
        let res = gmres(
            &mut sim,
            &da,
            &IdentityPrecond,
            &db,
            &mut x,
            GmresOptions {
                rtol: 1e-6,
                max_iters: 3000,
                restart: 40,
            },
        );
        assert!(res.converged);
        counts.push(res.iterations as i64);
    }
    assert!((counts[0] - counts[1]).abs() <= 2, "{counts:?}");
}
