//! Physical validation of the finite element substrate against closed-form
//! mechanics: a slender cantilever against Euler-Bernoulli beam theory, and
//! uniaxial stress against Hooke's law. The solver is only as credible as
//! the matrices it is fed.

use pmg_fem::{FemProblem, LinearElastic};
use pmg_geometry::Vec3;
use pmg_mesh::generators::block;
use prometheus::{MgOptions, Prometheus, PrometheusOptions};
use std::sync::Arc;

#[test]
fn cantilever_tip_deflection_matches_beam_theory() {
    // Beam: L=8, b=h=1, clamped at x=0, end load P in z.
    // Euler-Bernoulli: w = P L^3 / (3 E I), I = b h^3 / 12.
    let (l, e) = (8.0, 100.0);
    let nx = 16;
    let mesh = block(nx, 2, 2, Vec3::new(l, 1.0, 1.0), |_| 0);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(e, 0.0))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);

    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    let tip_nodes = mesh.vertices_where(|p| (p.x - l).abs() < 1e-12);
    let p_total = 1e-3;
    for (v, pt) in mesh.coords.iter().enumerate() {
        if pt.x == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
    }
    for &v in &tip_nodes {
        f[3 * v as usize + 2] = p_total / tip_nodes.len() as f64;
    }
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
    let b: Vec<f64> = rhs.iter().map(|v| -v).collect();

    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 300,
            ..Default::default()
        },
        max_iters: 600,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
    let (x, res) = solver.solve(&b, None, 1e-9);
    assert!(res.converged);

    let i_beam = 1.0 / 12.0;
    let w_theory = p_total * l.powi(3) / (3.0 * e * i_beam);
    // Average tip deflection.
    let w_fem: f64 = tip_nodes
        .iter()
        .map(|&v| x[3 * v as usize + 2])
        .sum::<f64>()
        / tip_nodes.len() as f64;
    // Coarse hex discretizations of slender beams are stiff (and shear
    // deformation softens); expect agreement within ~25%.
    let rel = (w_fem - w_theory).abs() / w_theory;
    assert!(
        rel < 0.25,
        "tip deflection {w_fem:.4e} vs theory {w_theory:.4e} (rel {rel:.2})"
    );
    // And the sign/monotonicity: deflection grows along the beam.
    let mid_nodes = mesh.vertices_where(|p| (p.x - l / 2.0).abs() < 1e-9);
    let w_mid: f64 = mid_nodes
        .iter()
        .map(|&v| x[3 * v as usize + 2])
        .sum::<f64>()
        / mid_nodes.len() as f64;
    assert!(w_fem > w_mid && w_mid > 0.0);
}

#[test]
fn uniaxial_stress_matches_hookes_law() {
    // A bar stretched by a prescribed end displacement with free lateral
    // faces: uniform strain, lateral contraction ν.
    let (e, nu) = (10.0, 0.3);
    let mesh = block(6, 2, 2, Vec3::new(3.0, 1.0, 1.0), |_| 0);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(e, nu))],
    );
    let (k, r0) = fem.assemble(&vec![0.0; ndof]);

    let stretch = 0.003; // 0.1% axial strain
    let mut fixed = Vec::new();
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.x == 0.0 {
            fixed.push((3 * v as u32, 0.0));
        }
        if (p.x - 3.0).abs() < 1e-12 {
            fixed.push((3 * v as u32, stretch));
        }
    }
    // Pin rigid modes: one node fully fixed, one more in z.
    let origin = mesh.vertices_where(|p| p == Vec3::ZERO)[0];
    fixed.push((3 * origin + 1, 0.0));
    fixed.push((3 * origin + 2, 0.0));
    let witness = mesh.vertices_where(|p| p == Vec3::new(0.0, 1.0, 0.0))[0];
    fixed.push((3 * witness + 2, 0.0));

    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &r0, &fixed);
    let mut solver = Prometheus::from_mesh(&mesh, &kc, PrometheusOptions::default());
    let (x, res) = solver.solve(&rhs, None, 1e-10);
    assert!(res.converged);

    // Axial strain uniform: u_x = stretch * x / 3.
    for (v, p) in mesh.coords.iter().enumerate() {
        let expect = stretch * p.x / 3.0;
        assert!(
            (x[3 * v] - expect).abs() < 1e-7,
            "u_x at {p:?}: {} vs {expect}",
            x[3 * v]
        );
    }
    // Lateral contraction: eps_y = -nu * eps_x.
    let eps_x = stretch / 3.0;
    let top = mesh.vertices_where(|p| p == Vec3::new(3.0, 1.0, 0.0))[0] as usize;
    let bottom = mesh.vertices_where(|p| p == Vec3::new(3.0, 0.0, 0.0))[0] as usize;
    let eps_y = x[3 * top + 1] - x[3 * bottom + 1];
    assert!(
        (eps_y + nu * eps_x).abs() < 1e-7,
        "lateral strain {eps_y:.3e} vs {:.3e}",
        -nu * eps_x
    );
}
