//! Non-convex domains: the Delaunay remesh of a coarse vertex set is
//! convex, so it overhangs re-entrant geometry — the situation §4.8's
//! tet-pruning and lost-vertex rules exist for. An L-bracket exercises the
//! whole path: coarsening stays valid, interpolation stays a partition of
//! unity, and multigrid still converges.

use pmg_fem::{FemProblem, LinearElastic};
use pmg_mesh::generators::l_bracket;
use prometheus::{
    classify_mesh, coarsen_level, CoarsenOptions, MgOptions, Prometheus, PrometheusOptions,
};
use std::sync::Arc;

#[test]
fn l_bracket_mesh_is_valid() {
    let m = l_bracket(8);
    assert!(m.validate_volumes().is_ok());
    // Volume = 1 - 1/4.
    assert!((m.total_volume() - 0.75).abs() < 1e-12);
    // The re-entrant edge exists: vertices at x=0.5, z=0.5 with y free.
    let edge = m.vertices_where(|p| (p.x - 0.5).abs() < 1e-12 && (p.z - 0.5).abs() < 1e-12);
    assert!(edge.len() >= 9);
}

#[test]
fn coarsening_partition_of_unity_on_reentrant_geometry() {
    let m = l_bracket(10);
    let g = m.vertex_graph();
    let classes = classify_mesh(&m, 0.7);
    let lvl = coarsen_level(&m.coords, &g, &classes, &CoarsenOptions::default());
    // Interpolation stays a partition of unity even where the coarse
    // Delaunay mesh overhangs the notch.
    let rt = lvl.restriction.transpose();
    for f in 0..m.num_vertices() {
        let (_, vals) = rt.row(f);
        let sum: f64 = vals.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "column {f}: {sum}");
    }
    // All coarse vertices are real mesh vertices (subset property).
    for &s in &lvl.selected {
        assert!((s as usize) < m.num_vertices());
    }
}

#[test]
fn multigrid_converges_on_l_bracket() {
    let m = l_bracket(8);
    let ndof = m.num_dof();
    let mut fem = FemProblem::new(
        m.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    for (v, p) in m.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        // Load the top of the standing leg.
        if (p.z - 1.0).abs() < 1e-12 {
            f[3 * v] = 0.01;
        }
    }
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
    let b: Vec<f64> = rhs.iter().map(|v| -v).collect();
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 300,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&m, &kc, opts);
    let (x, res) = solver.solve(&b, None, 1e-8);
    assert!(res.converged, "{res:?}");
    assert!(res.iterations <= 80, "{} iterations", res.iterations);
    let mut ax = vec![0.0; ndof];
    kc.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-6 * bn);
}
