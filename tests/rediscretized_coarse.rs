//! §3's two coarse-operator construction routes, compared: the Galerkin
//! product `R A Rᵀ` (the paper's choice) versus re-assembling a finite
//! element problem on the solver-generated coarse tet grid. Both must be
//! SPD, spectrally comparable, and both must work inside a two-grid
//! preconditioner.

use pmg_fem::{assemble_tet_operator, FemProblem, LinearElastic};
use pmg_mesh::generators::cube;
use pmg_parallel::{DistMatrix, DistVec, Layout, MachineModel, Sim};
use pmg_solver::{pcg, BlockJacobi, CoarseDirect, PcgOptions, Precond};
use pmg_sparse::CsrMatrix;
use prometheus::{classify_mesh, coarsen_level, mg::expand_restriction, CoarsenOptions};
use std::sync::Arc;

fn fine_system() -> (pmg_mesh::Mesh, CsrMatrix) {
    let mesh = cube(5);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
    }
    let (kc, _) = pmg_fem::bc::constrain_system(&k, &vec![0.0; ndof], &fixed);
    (mesh, kc)
}

/// A two-grid preconditioner parameterized by the coarse operator.
struct TwoGrid {
    a: DistMatrix,
    smoother: BlockJacobi,
    r: DistMatrix,
    p: DistMatrix,
    coarse: CoarseDirect,
}

impl TwoGrid {
    fn new(afine: &CsrMatrix, r_dof: &CsrMatrix, acoarse: &CsrMatrix) -> (TwoGrid, Sim) {
        let sim = Sim::new(1, MachineModel::default());
        let lf = Layout::serial(afine.nrows());
        let lc = Layout::serial(acoarse.nrows());
        let a = DistMatrix::from_global(afine, lf.clone(), lf.clone());
        let smoother = BlockJacobi::new(&a, 12.0, 0.6);
        let r = DistMatrix::from_global(r_dof, lc.clone(), lf.clone());
        let p = DistMatrix::from_global(&r_dof.transpose(), lf, lc.clone());
        let ac = DistMatrix::from_global(acoarse, lc.clone(), lc);
        let coarse = CoarseDirect::new(&ac);
        (
            TwoGrid {
                a,
                smoother,
                r,
                p,
                coarse,
            },
            sim,
        )
    }
}

impl Precond for TwoGrid {
    fn apply(&self, sim: &mut Sim, rhs: &DistVec, z: &mut DistVec) {
        let mut x = DistVec::zeros(rhs.layout().clone());
        self.smoother.smooth(sim, &self.a, rhs, &mut x, 1);
        let mut res = DistVec::zeros(rhs.layout().clone());
        self.a.spmv(sim, &x, &mut res);
        res.aypx(sim, -1.0, rhs);
        let mut rc = DistVec::zeros(self.r.row_layout().clone());
        self.r.spmv(sim, &res, &mut rc);
        let mut xc = DistVec::zeros(rc.layout().clone());
        self.coarse.apply(sim, &rc, &mut xc);
        let mut corr = DistVec::zeros(rhs.layout().clone());
        self.p.spmv(sim, &xc, &mut corr);
        x.axpy(sim, 1.0, &corr);
        self.smoother.smooth(sim, &self.a, rhs, &mut x, 1);
        z.copy_from(&x);
    }
}

#[test]
fn galerkin_and_rediscretized_operators_agree_spectrally() {
    let (mesh, kc) = fine_system();
    let g = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let lvl = coarsen_level(&mesh.coords, &g, &classes, &CoarsenOptions::default());
    let r_dof = expand_restriction(&lvl.restriction, 3);
    let galerkin = kc.rap(&r_dof);
    let redisc = assemble_tet_operator(
        &lvl.coords,
        &lvl.tets,
        Arc::new(LinearElastic::from_e_nu(1.0, 0.3)),
    );
    assert_eq!(galerkin.nrows(), redisc.nrows());
    assert!(galerkin.is_symmetric(1e-9));
    assert!(redisc.is_symmetric(1e-9));
    // Spectral comparability on random vectors: Rayleigh quotients within
    // a moderate factor (they discretize the same operator on the same
    // grid; the Galerkin one additionally carries the fine-grid BCs, so
    // only compare on vectors vanishing at constrained coarse vertices).
    let n = galerkin.nrows();
    let constrained: Vec<bool> = (0..n)
        .map(|d| {
            let v = d / 3;
            lvl.coords[v].z == 0.0
        })
        .collect();
    let mut ratios = Vec::new();
    for seed in 0..10u64 {
        let x: Vec<f64> = (0..n)
            .map(|i| {
                if constrained[i] {
                    0.0
                } else {
                    (((i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed * 0x9e37))
                        % 1000) as f64
                        / 500.0
                        - 1.0
                }
            })
            .collect();
        let mut ga = vec![0.0; n];
        galerkin.spmv(&x, &mut ga);
        let mut ra = vec![0.0; n];
        redisc.spmv(&x, &mut ra);
        let qg: f64 = ga.iter().zip(&x).map(|(a, b)| a * b).sum();
        let qr: f64 = ra.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!(qg > 0.0 && qr > 0.0, "lost definiteness: {qg} {qr}");
        ratios.push(qg / qr);
    }
    for r in &ratios {
        assert!(
            (0.05..20.0).contains(r),
            "operators not spectrally comparable: ratios {ratios:?}"
        );
    }
}

#[test]
fn both_coarse_operators_precondition_two_grid() {
    let (mesh, kc) = fine_system();
    let g = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let lvl = coarsen_level(&mesh.coords, &g, &classes, &CoarsenOptions::default());
    let r_dof = expand_restriction(&lvl.restriction, 3);
    let galerkin = kc.rap(&r_dof);
    // Rediscretized operator needs a diagonal shift where the fine BCs
    // would act (its own grid has no BCs, so it is singular): regularize
    // with a small multiple of its diagonal-average on constrained coarse
    // vertices.
    let mut redisc = assemble_tet_operator(
        &lvl.coords,
        &lvl.tets,
        Arc::new(LinearElastic::from_e_nu(1.0, 0.3)),
    );
    {
        let davg = redisc.diag().iter().sum::<f64>() / redisc.nrows() as f64;
        let nloc = redisc.nrows();
        for d in 0..nloc {
            let v = d / 3;
            if lvl.coords[v].z == 0.0 {
                redisc.add_to(d, d, davg);
            }
        }
    }

    let n = kc.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).sin()).collect();
    let mut iters = Vec::new();
    for ac in [&galerkin, &redisc] {
        let (tg, mut sim) = TwoGrid::new(&kc, &r_dof, ac);
        let layout = tg.a.row_layout().clone();
        let db = DistVec::from_global(layout.clone(), &b);
        let mut x = DistVec::zeros(layout);
        let res = pcg(
            &mut sim,
            &tg.a,
            &tg,
            &db,
            &mut x,
            PcgOptions {
                rtol: 1e-8,
                max_iters: 300,
                ..Default::default()
            },
        );
        assert!(res.converged);
        iters.push(res.iterations);
    }
    // Galerkin carries the fine BCs exactly and is at least as good; the
    // rediscretized operator must stay in the same ballpark (the paper's
    // point: both are viable, Galerkin is more robust and more modular).
    assert!(iters[1] <= 6 * iters[0].max(4), "{iters:?}");
}
