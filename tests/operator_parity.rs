//! The operator-parity contract pinning the matrix-free fine-grid path.
//!
//! One apply, four witnesses: the element-loop operator must (1) match the
//! assembled CSR and BSR3 matrices to rounding on free rows and *bitwise*
//! on Dirichlet rows, (2) produce bit-identical results on any thread
//! pool, (3) drive the SPMD solve to the same bits as the simulated solve
//! on every transport and schedule, and (4) hold all of that across real
//! OS processes over sockets. Anything that reassociates the element sums
//! or mishandles a constrained row breaks one of these four immediately.

use pmg_sparse::{Bsr3Matrix, Operator};

/// |got − want| ≤ tol·‖scale‖ elementwise, with context in the message.
fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    let scale = want.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}: row {i}: {g:e} vs {w:e} (scale {scale:e})"
        );
    }
}

/// A deterministic, non-degenerate test vector (varied signs/magnitudes so
/// no cancellation hides a wrong entry).
fn probe(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 41 % 29) as f64 - 14.0) * 0.1)
        .collect()
}

#[test]
fn matrix_free_apply_matches_assembled_csr_and_bsr3() {
    let sys = pmg_bench::spheres_first_solve(0);
    let n = sys.matrix.nrows();
    let mf = sys.matrix_free();
    assert_eq!(mf.nrows(), n);
    assert_eq!(mf.ncols(), n);

    let x = probe(n);
    let mut y_csr = vec![0.0; n];
    let mut y_bsr = vec![0.0; n];
    let mut y_mf = vec![0.0; n];
    sys.matrix.apply(&x, &mut y_csr);
    Bsr3Matrix::from_csr(&sys.matrix).apply(&x, &mut y_bsr);
    mf.apply(&x, &mut y_mf);

    assert_close(&y_mf, &y_csr, 1e-13, "matrix-free vs CSR");
    assert_close(&y_mf, &y_bsr, 1e-13, "matrix-free vs BSR3");

    // Dirichlet rows are exact, not approximate: both paths compute the
    // single product scale·x[row], so the bits must agree.
    assert!(!sys.fixed.is_empty(), "spheres system has constrained rows");
    for &d in &sys.fixed {
        let d = d as usize;
        assert_eq!(
            y_mf[d].to_bits(),
            y_csr[d].to_bits(),
            "Dirichlet row {d} must be bitwise"
        );
        assert_eq!(y_mf[d].to_bits(), (sys.scale * x[d]).to_bits());
    }

    // Diagonals agree too (the smoother's fallback path reads them).
    assert_close(&mf.diag(), &sys.matrix.diag(), 1e-13, "diag");
}

#[test]
fn matrix_free_apply_bitwise_across_thread_pools() {
    let sys = pmg_bench::spheres_first_solve(0);
    let n = sys.matrix.nrows();
    let mf = sys.matrix_free();
    let x = probe(n);

    let apply_on = |threads: usize| -> Vec<f64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut y = vec![0.0; n];
        pool.install(|| mf.apply(&x, &mut y));
        y
    };

    let y1 = apply_on(1);
    for threads in [2, 4, 7] {
        let yt = apply_on(threads);
        for (i, (a, b)) in yt.iter().zip(&y1).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "row {i} differs between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn matrix_free_spmd_solve_bitwise_across_transports_and_schedules() {
    let sys = pmg_bench::spheres_first_solve(0);
    let mf = sys.matrix_free();
    let pcg_opts = pmg_solver::PcgOptions {
        rtol: pmg_bench::PARITY_RTOL,
        max_iters: 200,
        ..Default::default()
    };
    for p in [1usize, 2, 4] {
        let mut opts = pmg_bench::parity_options(p);
        opts.mg.fine_operator = prometheus::FineOperator::MatrixFree;
        let mut solver =
            prometheus::Prometheus::from_mesh_matrix_free(&sys.mesh, &sys.matrix, opts, &mf);
        assert!(solver.mg.fine_mf.is_some(), "p={p}: kernels installed");
        let (x_sim, res_sim) = solver.solve(&sys.rhs, None, pmg_bench::PARITY_RTOL);
        assert!(res_sim.converged, "p={p}: {res_sim:?}");

        // Threaded SPMD, overlapped and blocking: all three executions
        // must agree bit for bit — solution and residual history.
        for overlap in [true, false] {
            let spmd =
                prometheus::solve_threads_opts(&solver.mg, &sys.rhs, pcg_opts, overlap).unwrap();
            assert_eq!(
                spmd.result.iterations, res_sim.iterations,
                "p={p} overlap={overlap}"
            );
            for (a, b) in spmd.result.residuals.iter().zip(&res_sim.residuals) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "p={p} overlap={overlap} residual history"
                );
            }
            for (a, b) in spmd.x.iter().zip(&x_sim) {
                assert_eq!(a.to_bits(), b.to_bits(), "p={p} overlap={overlap} solution");
            }
            if overlap && p > 1 {
                let w0 = spmd.waits[0];
                assert!(
                    w0.interior_rows + w0.boundary_rows > 0,
                    "p={p}: overlap accounting must tick on the matrix-free path"
                );
            }
        }
    }
}

#[test]
fn matrix_free_socket_ranks_match_simulated_solve() {
    // Two real OS processes over Unix-domain sockets, fine grid on the
    // element-loop kernels (PMG_FINE_OP=matrixfree), must reproduce the
    // in-process 2-rank matrix-free solve bitwise.
    let sys = pmg_bench::spheres_first_solve(0);
    let mf = sys.matrix_free();
    let mut opts = pmg_bench::parity_options(2);
    opts.mg.fine_operator = prometheus::FineOperator::MatrixFree;
    let mut solver =
        prometheus::Prometheus::from_mesh_matrix_free(&sys.mesh, &sys.matrix, opts, &mf);
    let (x_ref, res_ref) = solver.solve(&sys.rhs, None, pmg_bench::PARITY_RTOL);
    assert!(res_ref.converged, "{res_ref:?}");

    let dir = std::env::temp_dir().join(format!("pmg-mf-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("rank0.out");
    let exits = pmg_comm::launch::launch_with_env(
        2,
        std::path::Path::new(env!("CARGO_BIN_EXE_spheres_rank")),
        &["--out", out.to_str().unwrap()],
        None,
        &[("PMG_FINE_OP", "matrixfree")],
    )
    .expect("launch 2 socket ranks");
    assert!(
        exits.iter().all(|e| e.status.success()),
        "matrix-free socket ranks failed: {exits:?}"
    );
    let text = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let mut iters = 0usize;
    let mut x_bits = Vec::new();
    let mut res_bits = Vec::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        match (it.next(), it.next()) {
            (Some("iterations"), Some(v)) => iters = v.parse().unwrap(),
            (Some("x"), Some(v)) => x_bits.push(u64::from_str_radix(v, 16).unwrap()),
            (Some("res"), Some(v)) => res_bits.push(u64::from_str_radix(v, 16).unwrap()),
            _ => {}
        }
    }
    assert_eq!(iters, res_ref.iterations, "socket iteration count");
    assert_eq!(x_bits.len(), x_ref.len());
    for (got, want) in x_bits.iter().zip(&x_ref) {
        assert_eq!(*got, want.to_bits(), "socket solution bits");
    }
    assert_eq!(res_bits.len(), res_ref.residuals.len());
    for (got, want) in res_bits.iter().zip(&res_ref.residuals) {
        assert_eq!(*got, want.to_bits(), "socket residual bits");
    }
}
