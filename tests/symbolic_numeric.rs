//! The symbolic/numeric split, observed end-to-end through telemetry:
//! after a hierarchy is built and a first Newton-style operator update has
//! happened, a second re-assembly + `update_operator` round on the same
//! sparsity pattern must perform **zero** symbolic work — no new RAP plan
//! builds, no new assembly pattern builds — while the plan-reuse and
//! pattern-reuse counters keep climbing. The planned Galerkin products are
//! also checked numerically, level by level, against the unplanned
//! `CsrMatrix::rap` reference.
//!
//! Telemetry is process-global, so this test lives alone in its own
//! integration-test binary.

use pmg_bench::spheres_first_solve;
use pmg_fem::bc::constrain_system;
use prometheus::{MgOptions, Prometheus, PrometheusOptions};

fn counter(report: &pmg_telemetry::Report, name: &str) -> u64 {
    report.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn second_update_round_is_numeric_only() {
    pmg_telemetry::reset();
    pmg_telemetry::set_enabled(true);

    let mut sys = spheres_first_solve(0);
    let ndof = sys.mesh.num_dof();
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 200,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts);
    let nlevels = solver.mg.num_levels();
    assert!(nlevels >= 2, "need a real hierarchy, got {nlevels} levels");

    let fixed: Vec<(u32, f64)> = sys
        .problem
        .bcs_for_step(1, 10)
        .iter()
        .map(|b| (b.dof, b.value))
        .collect();
    // Two Newton-style rounds: re-assemble the tangent at a new (value-only)
    // displacement state and push it through the hierarchy.
    let mut round = |amplitude: f64, solver: &mut Prometheus| {
        let u: Vec<f64> = (0..ndof)
            .map(|i| amplitude * ((i * 7 % 13) as f64 / 13.0 - 0.5))
            .collect();
        let (k, r) = sys.problem.fem.assemble(&u);
        let (kc, _) = constrain_system(&k, &r, &fixed);
        solver.update_matrix(&kc);
        kc
    };

    let _k1 = round(1e-4, &mut solver);
    let c1 = pmg_telemetry::snapshot();
    let k2 = round(2e-4, &mut solver);
    let c2 = pmg_telemetry::snapshot();
    pmg_telemetry::set_enabled(false);

    // Round 2 did real work...
    assert!(
        counter(&c2, "rap/plan_reuse") > counter(&c1, "rap/plan_reuse"),
        "round 2 executed no RAP plans: {:?}",
        c2.counters
    );
    assert!(
        counter(&c2, "assembly/pattern_reuse") > counter(&c1, "assembly/pattern_reuse"),
        "round 2 assembled nothing: {:?}",
        c2.counters
    );
    // ...but none of it symbolic: no RAP plan rebuilt, no sparsity/scatter
    // map rebuilt.
    assert_eq!(
        counter(&c2, "rap/plan_build"),
        counter(&c1, "rap/plan_build"),
        "round 2 rebuilt a RAP plan"
    );
    assert_eq!(
        counter(&c2, "assembly/pattern_build"),
        counter(&c1, "assembly/pattern_build"),
        "round 2 rebuilt the assembly pattern"
    );
    // The hierarchy was built with collection on, so the build itself is
    // accounted: one plan per non-coarsest level, built exactly once.
    assert_eq!(counter(&c2, "rap/plan_build"), (nlevels - 1) as u64);

    // Numeric check: every planned coarse operator matches the unplanned
    // triple product to 1e-12, level by level.
    let mut cur = k2;
    for lvl in 0..nlevels - 1 {
        let r = solver.mg.levels[lvl]
            .r_global
            .as_ref()
            .expect("non-coarsest level keeps R");
        let reference = cur.rap(r);
        let planned = solver.mg.levels[lvl + 1].a.to_global();
        assert_eq!(planned.nrows(), reference.nrows(), "level {lvl}");
        let scale = reference
            .iter()
            .fold(0.0f64, |m, (_, _, v)| m.max(v.abs()))
            .max(1.0);
        for (i, j, v) in reference.iter() {
            let p = planned.get(i, j);
            assert!(
                (p - v).abs() <= 1e-12 * scale,
                "level {}: entry ({i},{j}) planned {p} vs rap {v}",
                lvl + 1
            );
        }
        cur = reference;
    }
}
