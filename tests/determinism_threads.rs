//! Cross-thread-count determinism: the whole setup+solve pipeline must
//! produce **bitwise identical** solutions and residual histories for any
//! pool size. This is the contract the thread pool layer guarantees (task
//! decomposition is a function of input length only; reductions use a
//! fixed-shape pairwise tree; MIS rounds are bulk-synchronous with a
//! conflict-free merge) — this test enforces it end to end on the paper's
//! tiny spheres problem with dedicated pools of 1, 2, and 4 threads.

use prometheus::{MgOptions, Prometheus, PrometheusOptions};

/// Local duplicate of the bench harness setup (tests are independent of
/// the bench crate).
mod tiny {
    use pmg_fem::bc::constrain_system;
    use pmg_mesh::{Mesh, SpheresParams};
    use pmg_sparse::CsrMatrix;

    pub struct System {
        pub mesh: Mesh,
        pub matrix: CsrMatrix,
        pub rhs: Vec<f64>,
    }

    pub fn build() -> System {
        let params = SpheresParams::tiny();
        let mut problem = pmg_fem::spheres_problem(&params);
        let mesh = problem.fem.mesh.clone();
        let ndof = mesh.num_dof();
        let (k, r) = problem.fem.assemble(&vec![0.0; ndof]);
        let bcs = problem.bcs_for_step(1, 10);
        let fixed: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
        let (matrix, rhs) = constrain_system(&k, &r, &fixed);
        System { mesh, matrix, rhs }
    }
}

fn solve_with_threads(sys: &tiny::System, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            threads: Some(threads),
            ..Default::default()
        },
        max_iters: 200,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts);
    let (x, res) = solver.solve(&sys.rhs, None, 1e-8);
    assert!(res.converged, "threads={threads}: {res:?}");
    (x, res.residuals)
}

#[test]
fn solution_and_residuals_bitwise_identical_across_thread_counts() {
    let sys = tiny::build();
    let (x1, r1) = solve_with_threads(&sys, 1);
    for threads in [2usize, 4] {
        let (xt, rt) = solve_with_threads(&sys, threads);
        assert_eq!(x1.len(), xt.len());
        for (i, (a, b)) in x1.iter().zip(&xt).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: solution differs at dof {i}: {a:e} vs {b:e}"
            );
        }
        assert_eq!(
            r1.len(),
            rt.len(),
            "threads={threads}: iteration counts differ"
        );
        for (k, (a, b)) in r1.iter().zip(&rt).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: residual differs at iter {k}: {a:e} vs {b:e}"
            );
        }
    }
}

#[test]
fn assembly_deterministic_across_thread_counts() {
    // The FE assembly path (pattern-reuse chunks + scatter) must also be
    // exact across pool sizes — it feeds the fingerprint caches.
    let build_vals = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let sys = tiny::build();
            sys.matrix.vals().to_vec()
        })
    };
    let v1 = build_vals(1);
    for threads in [2usize, 4] {
        let vt = build_vals(threads);
        assert_eq!(v1.len(), vt.len());
        assert!(
            v1.iter().zip(&vt).all(|(a, b)| a.to_bits() == b.to_bits()),
            "threads={threads}: assembled matrix differs"
        );
    }
}
