//! The paper's "higher order elements" future-work item, delivered: the
//! same fully automatic pipeline (classification, MIS coarsening, Delaunay
//! remeshing, Galerkin multigrid) on 20-node serendipity hexahedra. The
//! solver sees only the vertex cloud and graph, so quadratic elements need
//! zero solver changes — exactly the modularity §3 argues for.

use pmg_fem::{FemProblem, LinearElastic};
use pmg_geometry::Vec3;
use pmg_mesh::generators::{block, block20};
use prometheus::{MgOptions, Prometheus, PrometheusOptions};
use std::sync::Arc;

fn constrained(mesh: &pmg_mesh::Mesh) -> (pmg_sparse::CsrMatrix, Vec<f64>) {
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        if (p.z - 1.0).abs() < 1e-12 {
            f[3 * v] = 0.01; // shear the top
        }
    }
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
    (kc, rhs.iter().map(|v| -v).collect())
}

#[test]
fn hex20_stiffness_is_consistent() {
    // Affine patch test on quadratic elements.
    let mesh = block20(2, 2, 2, Vec3::splat(1.0), |_| 0);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let mut u = vec![0.0; ndof];
    for (v, p) in mesh.coords.iter().enumerate() {
        u[3 * v] = 1e-3 * p.x + 2e-3 * p.y;
        u[3 * v + 1] = -1e-3 * p.y;
        u[3 * v + 2] = 0.5e-3 * p.z + 1e-3 * p.x;
    }
    let (k, f) = fem.assemble(&u);
    assert!(k.is_symmetric(1e-10));
    // Interior nodes carry no residual under constant stress.
    for (v, p) in mesh.coords.iter().enumerate() {
        let interior = p.x > 0.0 && p.x < 1.0 && p.y > 0.0 && p.y < 1.0 && p.z > 0.0 && p.z < 1.0;
        if interior {
            for c in 0..3 {
                assert!(f[3 * v + c].abs() < 1e-13, "node {v}");
            }
        }
    }
    // Rigid translation in the null space of K.
    let mut t = vec![0.0; ndof];
    for a in 0..ndof / 3 {
        t[3 * a + 2] = 1.0;
    }
    let mut kt = vec![0.0; ndof];
    k.spmv(&t, &mut kt);
    assert!(kt.iter().all(|v| v.abs() < 1e-11));
}

#[test]
fn multigrid_solves_hex20_problem() {
    let mesh = block20(4, 4, 4, Vec3::splat(1.0), |_| 0);
    assert_eq!(mesh.kind, pmg_mesh::ElementKind::Hex20);
    let (kc, b) = constrained(&mesh);
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
    assert!(
        solver.level_sizes().len() >= 2,
        "{:?}",
        solver.level_sizes()
    );
    let (x, res) = solver.solve(&b, None, 1e-8);
    assert!(res.converged, "{res:?}");
    assert!(
        res.iterations <= 80,
        "{} iterations on hex20",
        res.iterations
    );
    let mut ax = vec![0.0; b.len()];
    kc.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-6 * bn);
}

#[test]
fn hex20_converges_to_hex8_solution_under_shear() {
    // Same physical problem, both discretizations: tip displacements agree
    // within discretization error (quadratic elements are stiffer-accurate).
    let mesh8 = block(6, 6, 6, Vec3::splat(1.0), |_| 0);
    let mesh20 = block20(3, 3, 3, Vec3::splat(1.0), |_| 0);
    let tip8 = {
        let (kc, b) = constrained(&mesh8);
        let mut s = Prometheus::from_mesh(&mesh8, &kc, PrometheusOptions::default());
        let (x, r) = s.solve(&b, None, 1e-9);
        assert!(r.converged);
        let v = mesh8.vertices_where(|p| p == Vec3::splat(1.0))[0] as usize;
        x[3 * v]
    };
    let tip20 = {
        let (kc, b) = constrained(&mesh20);
        let mut s = Prometheus::from_mesh(&mesh20, &kc, PrometheusOptions::default());
        let (x, r) = s.solve(&b, None, 1e-9);
        assert!(r.converged);
        let v = mesh20.vertices_where(|p| p == Vec3::splat(1.0))[0] as usize;
        x[3 * v]
    };
    // Coarse discretizations of different order differ by discretization
    // error (~12% here); they must agree to leading order.
    assert!(
        (tip8 - tip20).abs() < 0.2 * tip8.abs().max(tip20.abs()),
        "hex8 tip {tip8} vs hex20 tip {tip20}"
    );
}
