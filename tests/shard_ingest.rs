//! Memory-footprint contract of the partition-at-ingest setup path.
//!
//! A counting `#[global_allocator]` tracks every allocation of 16 KiB or
//! more made by a rank's thread while its hierarchy builds. A pure size
//! threshold cannot *semantically* tell an owned share from a global
//! array, so the assertions are comparative, which a threshold can check
//! honestly:
//!
//! * per-rank setup allocation **shrinks with the rank count** at a fixed
//!   problem (a path that materialized the global mesh/matrix/vectors on
//!   every rank would stay flat),
//! * the sharded path allocates strictly less per rank than
//!   `build_distributed` at the same rank count (which replicates every
//!   level's matrix on every rank),
//! * no single tracked allocation on any rank at p = 4 reaches the global
//!   fine matrix's smallest component array — the direct "no rank ever
//!   held the fine CSR" witness.
//!
//! Tracking is per-thread: rank work on `LocalTransport` threads is
//! counted, anything a kernel offloads to the shared rayon pool is not —
//! identically for both compared paths, so the comparisons stay fair.

use pmg_comm::{CommError, LocalTransport, Transport};
use pmg_parallel::Layout;
use pmg_sparse::{CooBuilder, CsrMatrix};
use prometheus::{classify_mesh, plan_ingest, MgOptions, RankHierarchy};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;

const TRACK_THRESHOLD: usize = 16 * 1024;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static TOTAL: Cell<u64> = const { Cell::new(0) };
    static LARGEST: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn record(size: usize) {
        if size < TRACK_THRESHOLD || !TRACKING.get() {
            return;
        }
        TOTAL.set(TOTAL.get() + size as u64);
        LARGEST.set(LARGEST.get().max(size as u64));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: AllocLayout) -> *mut u8 {
        Self::record(l.size());
        System.alloc(l)
    }

    unsafe fn alloc_zeroed(&self, l: AllocLayout) -> *mut u8 {
        Self::record(l.size());
        System.alloc_zeroed(l)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, l: AllocLayout) {
        System.dealloc(ptr, l)
    }

    unsafe fn realloc(&self, ptr: *mut u8, l: AllocLayout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        System.realloc(ptr, l, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with this thread's large-allocation tracking on; returns
/// (result, total tracked bytes, largest single tracked allocation).
fn tracked<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    TOTAL.set(0);
    LARGEST.set(0);
    TRACKING.set(true);
    let r = f();
    TRACKING.set(false);
    (r, TOTAL.get(), LARGEST.get())
}

fn fine_problem(n: usize) -> (CsrMatrix, pmg_mesh::Mesh, pmg_partition::Graph) {
    let m = pmg_mesh::generators::cube(n);
    let g = m.vertex_graph();
    let nv = m.num_vertices();
    let mut b = CooBuilder::new(nv, nv);
    for v in 0..nv {
        b.push(v, v, g.degree(v) as f64 + 1.0);
        for &w in g.neighbors(v) {
            b.push(v, w as usize, -1.0);
        }
    }
    (b.build(), m, g)
}

/// Build the hierarchy on `p` ranks via the given path and return each
/// rank's (total tracked bytes, largest tracked allocation) for the build
/// window alone — the owned-rows input is assembled before tracking starts.
fn build_footprint(
    a: &CsrMatrix,
    mesh: &pmg_mesh::Mesh,
    g: &pmg_partition::Graph,
    p: usize,
    opts: MgOptions,
    sharded: bool,
) -> Vec<(u64, u64)> {
    let classes = classify_mesh(mesh, 0.7);
    let plan = plan_ingest(&mesh.coords, g, &classes, &[], p, &opts);
    let layout = Layout::from_part(plan.part().to_vec(), p);
    let (a_ref, coords_ref, g_ref, classes_ref, plan_ref, layout_ref) =
        (a, &mesh.coords, g, &classes, &plan, &layout);
    LocalTransport::run_ranks(p, move |mut t| {
        let rank = t.rank();
        let a_owned = a_ref.extract_rows(layout_ref.owned(rank));
        let ((), total, largest) = tracked(|| {
            if sharded {
                let setup =
                    RankHierarchy::build_from_shards(&mut t, &plan_ref.seeds[rank], &a_owned, opts)
                        .unwrap();
                assert!(setup.num_levels() >= 2, "hierarchy must coarsen");
            } else {
                let setup = RankHierarchy::build_distributed(
                    &mut t,
                    a_ref,
                    coords_ref,
                    g_ref,
                    classes_ref,
                    opts,
                )
                .unwrap();
                assert!(setup.num_levels() >= 2, "hierarchy must coarsen");
            }
        });
        Ok::<_, CommError>((total, largest))
    })
    .into_iter()
    .map(|r| r.unwrap())
    .collect()
}

#[test]
fn sharded_setup_allocation_shrinks_with_ranks() {
    let (a, mesh, g) = fine_problem(20); // 8000 vertices, scalar
    let opts = MgOptions {
        dofs_per_vertex: 1,
        coarse_dof_threshold: 400,
        ..Default::default()
    };

    let p1 = build_footprint(&a, &mesh, &g, 1, opts, true);
    let p4 = build_footprint(&a, &mesh, &g, 4, opts, true);
    let p1_total = p1[0].0;
    let p4_worst = p4.iter().map(|&(t, _)| t).max().unwrap();
    assert!(
        p4_worst as f64 <= 0.6 * p1_total as f64,
        "per-rank setup allocation must shrink with ranks: \
         p=1 rank total {p1_total} B, p=4 worst rank {p4_worst} B"
    );

    // Direct witness at p = 4: nothing as large as even the global fine
    // matrix's column-index array was ever allocated on a rank.
    let global_cols_bytes = (a.nnz() * std::mem::size_of::<usize>()) as u64;
    for (rank, &(_, largest)) in p4.iter().enumerate() {
        assert!(
            largest < global_cols_bytes,
            "rank {rank} allocated {largest} B in one block — \
             global fine col_idx is {global_cols_bytes} B"
        );
    }
}

#[test]
fn sharded_setup_allocates_less_than_distributed_setup() {
    let (a, mesh, g) = fine_problem(16); // 4096 vertices, scalar
    let opts = MgOptions {
        dofs_per_vertex: 1,
        coarse_dof_threshold: 400,
        ..Default::default()
    };
    let p = 4;
    let shards = build_footprint(&a, &mesh, &g, p, opts, true);
    let dist = build_footprint(&a, &mesh, &g, p, opts, false);
    for rank in 0..p {
        assert!(
            shards[rank].0 < dist[rank].0,
            "rank {rank}: sharded build allocated {} B, \
             replicated-matrix distributed build {} B",
            shards[rank].0,
            dist[rank].0
        );
    }
}
