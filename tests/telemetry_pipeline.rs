//! Deterministic end-to-end telemetry regression: solve the tiny
//! concentric-spheres problem (fixed MIS seed, fixed machine model) with
//! collection enabled and check that
//!
//! - the CG iteration count stays inside its recorded band,
//! - the report carries every expected setup phase (classify, MIS,
//!   Delaunay remesh, restriction, `R A Rᵀ`, smoother, coarse direct) and
//!   per-level solve phase (smooth / restrict / prolong / coarse) with
//!   nonzero time,
//! - iteration count and residual history land in the report, and
//! - the whole artifact round-trips through one JSON-lines document.
//!
//! Telemetry is process-global, so this test lives alone in its own
//! integration-test binary.

use pmg_bench::spheres_first_solve;
use pmg_telemetry::{JsonLinesSink, Report, Sink};
use prometheus::{MgOptions, Prometheus, PrometheusOptions};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Recorded band for the tiny spheres first solve at rtol 1e-6 (measured:
/// 13 iterations). The problem, seed, and machine model are fixed, so a
/// drift outside this band means the solver or coarsening changed.
const ITER_BAND: std::ops::RangeInclusive<usize> = 8..=25;

#[test]
fn spheres_solve_emits_full_telemetry_report() {
    pmg_telemetry::reset();
    pmg_telemetry::set_enabled(true);
    pmg_telemetry::label("problem", "spheres-tiny");

    let sys = spheres_first_solve(0);
    let ndof = sys.mesh.num_dof();
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 200,
            ..Default::default()
        },
        max_iters: 200,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts);
    let (x, res) = solver.solve(&sys.rhs, None, 1e-6);
    let report = solver.report();
    pmg_telemetry::set_enabled(false);

    // The solve itself: converged, inside the recorded iteration band, and
    // actually solving the system.
    assert!(res.converged, "{res:?}");
    assert!(
        ITER_BAND.contains(&res.iterations),
        "iteration count {} left the recorded band {ITER_BAND:?}",
        res.iterations
    );
    let mut ax = vec![0.0; ndof];
    sys.matrix.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&sys.rhs)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-4 * bn);

    // Every setup phase of the paper's pipeline, with nonzero time.
    for path in [
        "setup",
        "setup/classify",
        "setup/coarsen",
        "setup/coarsen/mis",
        "setup/coarsen/delaunay",
        "setup/coarsen/delaunay/triangulate",
        "setup/coarsen/restriction",
        "setup/rap",
        "setup/smoother",
        "setup/coarse_direct",
        "solve",
        "solve/pcg",
        "solve/pcg/precond",
    ] {
        let p = report
            .phase(path)
            .unwrap_or_else(|| panic!("missing phase {path}"));
        assert!(p.total_s > 0.0, "phase {path} has zero time");
        assert!(p.count > 0, "phase {path} has zero count");
    }

    // Per-level solve phases: smooth/restrict/prolong on every grid that
    // cycles, coarse on the bottom grid.
    let nlevels = solver.level_sizes().len();
    assert!(
        nlevels >= 2,
        "hierarchy too shallow: {:?}",
        solver.level_sizes()
    );
    for lvl in 0..nlevels - 1 {
        for op in ["smooth", "restrict", "prolong"] {
            let path = format!("solve/pcg/precond/level{lvl}/{op}");
            let p = report
                .phase(&path)
                .unwrap_or_else(|| panic!("missing phase {path}"));
            assert!(p.total_s > 0.0, "phase {path} has zero time");
        }
    }
    let coarse = format!("solve/pcg/precond/level{}/coarse", nlevels - 1);
    assert!(report.phase(&coarse).is_some(), "missing {coarse}");

    // Iteration count, residual history, per-level gauges, labels.
    assert_eq!(report.counters["pcg/iterations"], res.iterations as u64);
    assert_eq!(report.series["pcg/residuals"], res.residuals);
    assert_eq!(report.gauges["mg/levels"], nlevels as f64);
    assert_eq!(report.gauges["mg/level0/rows"], ndof as f64);
    assert!(report.gauges["mg/operator_complexity"] > 1.0);
    assert_eq!(report.labels["problem"], "spheres-tiny");

    // The bridged machine-model phases arrive in the same artifact.
    for name in ["mesh setup", "matrix setup", "solve"] {
        let s = report
            .sim_phases
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sim phase {name}"));
        assert!(s.total_flops > 0, "sim phase {name} has zero flops");
    }

    // One JSON-lines document round-trips the entire report.
    let mut buf = Vec::new();
    JsonLinesSink(&mut buf).emit(&report).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = Report::from_json_lines(&text).unwrap();
    assert_eq!(parsed, report);
}

/// Scrape the counter/gauge names emitted by `src` into `out`. Handles
/// multi-line call sites and `&format!(...)` names; `format!` placeholders
/// are normalised to `{N}` to match the docs spelling
/// (`mg/level{lvl_index}/rows` -> `mg/level{N}/rows`).
fn scrape_emitted_names(src: &str, out: &mut BTreeSet<String>) {
    for needle in ["counter_add(", "gauge_set("] {
        let mut at = 0;
        while let Some(pos) = src[at..].find(needle) {
            at += pos + needle.len();
            let mut rest = src[at..].trim_start();
            if let Some(stripped) = rest.strip_prefix("&format!(") {
                rest = stripped.trim_start();
            }
            // Skip non-literal names (function definitions, name variables).
            let Some(body) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = body.find('"') else { continue };
            let mut name = String::new();
            let mut chars = body[..end].chars();
            while let Some(c) = chars.next() {
                if c == '{' {
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                    }
                    name.push_str("{N}");
                } else {
                    name.push(c);
                }
            }
            out.insert(name);
        }
    }
}

/// Counter and gauge names are stable API: every name production code can
/// emit must have a row in `docs/telemetry.md`. Scrapes all
/// `counter_add`/`gauge_set` call sites in the workspace sources —
/// excluding test/bench trees and the telemetry crate itself, whose unit
/// tests use throwaway names — and looks each name up in the docs text.
#[test]
fn emitted_counter_and_gauge_names_are_documented() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let docs = std::fs::read_to_string(root.join("docs/telemetry.md")).unwrap();

    let mut names = BTreeSet::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let base = path.file_name().unwrap().to_string_lossy().into_owned();
            if path.is_dir() {
                if base == "tests" || base == "benches" || base == "telemetry" || base == "shims" {
                    continue;
                }
                stack.push(path);
            } else if base.ends_with(".rs") {
                scrape_emitted_names(&std::fs::read_to_string(&path).unwrap(), &mut names);
            }
        }
    }

    // Sanity: the scraper actually sees the stack's emissions (a silent
    // zero-name pass would make the documentation assert vacuous).
    for expected in ["pcg/iterations", "comm/setup_msgs", "mg/level{N}/imbalance"] {
        assert!(
            names.contains(expected),
            "scraper lost a known name {expected}; scraped: {names:?}"
        );
    }

    let undocumented: Vec<&String> = names
        .iter()
        .filter(|n| !docs.contains(n.as_str()))
        .collect();
    assert!(
        undocumented.is_empty(),
        "telemetry names emitted in code but missing from docs/telemetry.md: {undocumented:?}"
    );
}
