//! The virtual-rank runtime must be numerically transparent: every
//! distributed operation reproduces its serial counterpart bit-for-bit or
//! to rounding, for any rank count and any ownership pattern.

use pmg_fem::{FemProblem, LinearElastic};
use pmg_geometry::Vec3;
use pmg_mesh::generators::block;
use pmg_parallel::{DistMatrix, DistVec, Layout, MachineModel, Sim};
use pmg_partition::recursive_coordinate_bisection;
use pmg_solver::{pcg, BlockJacobi, IdentityPrecond, PcgOptions};
use std::sync::Arc;

fn elasticity_matrix() -> (pmg_sparse::CsrMatrix, Vec<Vec3>) {
    let mesh = block(4, 4, 4, Vec3::splat(1.0), |_| 0);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
    }
    let (kc, _) = pmg_fem::bc::constrain_system(&k, &vec![0.0; ndof], &fixed);
    (kc, mesh.coords.clone())
}

#[test]
fn distributed_spmv_exact_for_rcb_layouts() {
    let (a, coords) = elasticity_matrix();
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
    let mut y_serial = vec![0.0; n];
    a.spmv(&x, &mut y_serial);
    for p in [1, 2, 5, 16] {
        let part = recursive_coordinate_bisection(&coords, p);
        let layout = Layout::expand_dofs(&Layout::from_part(part, p), 3);
        let mut sim = Sim::new(p, MachineModel::default());
        let da = DistMatrix::from_global(&a, layout.clone(), layout.clone());
        let dx = DistVec::from_global(layout.clone(), &x);
        let mut dy = DistVec::zeros(layout);
        da.spmv(&mut sim, &dx, &mut dy);
        let yg = dy.to_global();
        for (u, v) in yg.iter().zip(&y_serial) {
            assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0), "p={p}");
        }
    }
}

#[test]
fn pcg_iteration_counts_independent_of_ranks_with_identity_precond() {
    // With M = I the PCG recurrence is rank-count independent up to
    // rounding, so iteration counts must match exactly across P.
    let (a, _) = elasticity_matrix();
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).sin()).collect();
    let mut iters = Vec::new();
    for p in [1, 3, 8] {
        let layout = Layout::block(n, p);
        let mut sim = Sim::new(p, MachineModel::default());
        let da = DistMatrix::from_global(&a, layout.clone(), layout.clone());
        let db = DistVec::from_global(layout.clone(), &b);
        let mut x = DistVec::zeros(layout);
        let res = pcg(
            &mut sim,
            &da,
            &IdentityPrecond,
            &db,
            &mut x,
            PcgOptions {
                rtol: 1e-6,
                max_iters: 2000,
                ..Default::default()
            },
        );
        assert!(res.converged, "p={p}");
        iters.push(res.iterations);
    }
    assert!(
        iters
            .iter()
            .all(|&i| (i as i64 - iters[0] as i64).abs() <= 1),
        "iteration counts diverged across ranks: {iters:?}"
    );
}

#[test]
fn total_flops_are_rank_invariant_for_spmv() {
    // Work efficiency e_w = 1 (§6): the distributed SpMV performs exactly
    // the serial flops, just partitioned.
    let (a, coords) = elasticity_matrix();
    let n = a.nrows();
    let x = vec![1.0; n];
    let mut totals = Vec::new();
    for p in [1, 4, 9] {
        let part = recursive_coordinate_bisection(&coords, p);
        let layout = Layout::expand_dofs(&Layout::from_part(part, p), 3);
        let mut sim = Sim::new(p, MachineModel::default());
        let da = DistMatrix::from_global(&a, layout.clone(), layout.clone());
        let dx = DistVec::from_global(layout.clone(), &x);
        let mut dy = DistVec::zeros(layout);
        da.spmv(&mut sim, &dx, &mut dy);
        let phases = sim.finish();
        totals.push(phases["default"].total_flops());
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
}

#[test]
fn block_jacobi_blocks_scale_with_local_size() {
    // 6 blocks per 1000 local unknowns (§7.2): rank-local block counts
    // follow the layout.
    let (a, coords) = elasticity_matrix();
    let p = 3;
    let part = recursive_coordinate_bisection(&coords, p);
    let layout = Layout::expand_dofs(&Layout::from_part(part, p), 3);
    let da = DistMatrix::from_global(&a, layout.clone(), layout);
    let bj = BlockJacobi::new(&da, 6.0, 0.6);
    for r in 0..p {
        let local = da.local_block(r).nrows();
        let expect = ((6.0 * local as f64 / 1000.0).round() as usize).clamp(1, local);
        assert_eq!(bj.num_blocks(r), expect, "rank {r} with {local} dofs");
    }
}

/// Parse the `spheres_rank --out` artifact: iteration count, convergence
/// flag, solution / residual-history bit patterns, and the interior-row
/// count from the overlap accounting line.
fn parse_rank_out(text: &str) -> (usize, bool, Vec<u64>, Vec<u64>, u64) {
    let mut iterations = 0usize;
    let mut converged = false;
    let mut x = Vec::new();
    let mut res = Vec::new();
    let mut interior = 0u64;
    for line in text.lines() {
        let mut it = line.split_whitespace();
        match (it.next(), it.next()) {
            (Some("iterations"), Some(v)) => iterations = v.parse().unwrap(),
            (Some("converged"), Some(v)) => converged = v == "1",
            (Some("x"), Some(v)) => x.push(u64::from_str_radix(v, 16).unwrap()),
            (Some("res"), Some(v)) => res.push(u64::from_str_radix(v, 16).unwrap()),
            (Some("overlap"), Some(v)) => interior = v.parse().unwrap(),
            // Timing/traffic lines are for the bench snapshot, not parity.
            (Some("solve_s" | "stats" | "waits"), _) => {}
            _ => panic!("unexpected line in rank output: {line}"),
        }
    }
    (iterations, converged, x, res, interior)
}

#[test]
fn spheres_solve_bitwise_identical_across_transports() {
    // The PR's acceptance bar: the full setup + solve on the spheres
    // problem produces a bitwise-identical solution and residual history
    // whether the ranks are simulated (counting instead of sending),
    // threads over an in-process transport, or separate processes over
    // Unix-domain sockets.
    let sys = pmg_bench::spheres_first_solve(0);
    let pcg_opts = pmg_solver::PcgOptions {
        rtol: pmg_bench::PARITY_RTOL,
        max_iters: 200,
        ..Default::default()
    };
    let mut two_rank_reference = None;
    for p in [1usize, 2, 4] {
        let opts = pmg_bench::parity_options(p);
        // Route through the PMG_FINE_OP-aware constructor: the spawned
        // worker ranks inherit that env var, so the in-process reference
        // must run on the same fine-operator backend to compare bitwise.
        let mut solver = pmg_bench::parity_solver(&sys, opts);
        let (x_sim, res_sim) = solver.solve(&sys.rhs, None, pmg_bench::PARITY_RTOL);
        assert!(res_sim.converged, "p={p}: {res_sim:?}");

        let spmd = prometheus::solve_threads(&solver.mg, &sys.rhs, pcg_opts).unwrap();
        assert_eq!(spmd.result.iterations, res_sim.iterations, "p={p}");
        for (a, b) in spmd.result.residuals.iter().zip(&res_sim.residuals) {
            assert_eq!(a.to_bits(), b.to_bits(), "p={p} residual history");
        }
        for (a, b) in spmd.x.iter().zip(&x_sim) {
            assert_eq!(a.to_bits(), b.to_bits(), "p={p} solution");
        }
        if p > 1 {
            // Real messages flowed (this was not a degenerate exchange).
            assert!(spmd.stats.iter().map(|s| s.msgs).sum::<u64>() > 0, "p={p}");
        }
        if p == 2 {
            two_rank_reference = Some((res_sim.iterations, x_sim, res_sim.residuals));
        }
    }

    // Multi-process: launch 2 ranks of the worker binary over sockets,
    // once with the comm/compute overlap on (the default) and once forced
    // off — both must reproduce the 2-rank simulated solve bitwise, and
    // the overlapped run must actually have classified interior rows.
    let (ref_iters, ref_x, ref_res) = two_rank_reference.unwrap();
    let dir = std::env::temp_dir().join(format!("pmg-parity-{}", std::process::id()));
    for overlap in [true, false] {
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("rank0.out");
        let exits = pmg_comm::launch::launch_with_env(
            2,
            std::path::Path::new(env!("CARGO_BIN_EXE_spheres_rank")),
            &["--out", out.to_str().unwrap()],
            None,
            &[("PMG_OVERLAP", if overlap { "1" } else { "0" })],
        )
        .expect("launch 2 socket ranks");
        assert!(
            exits.iter().all(|e| e.status.success()),
            "socket ranks failed (overlap={overlap}): {exits:?}"
        );
        let (iters, converged, x_bits, res_bits, interior) =
            parse_rank_out(&std::fs::read_to_string(&out).unwrap());
        std::fs::remove_dir_all(&dir).ok();
        assert!(converged);
        assert_eq!(
            iters, ref_iters,
            "socket iteration count (overlap={overlap})"
        );
        assert_eq!(x_bits.len(), ref_x.len());
        for (got, want) in x_bits.iter().zip(&ref_x) {
            assert_eq!(
                *got,
                want.to_bits(),
                "socket solution bits (overlap={overlap})"
            );
        }
        assert_eq!(res_bits.len(), ref_res.len());
        for (got, want) in res_bits.iter().zip(&ref_res) {
            assert_eq!(
                *got,
                want.to_bits(),
                "socket residual bits (overlap={overlap})"
            );
        }
        if overlap {
            assert!(interior > 0, "overlapped run classified no interior rows");
        } else {
            assert_eq!(interior, 0, "blocking run must report no overlap work");
        }
    }
}

#[test]
fn spheres_distributed_setup_bitwise_identical_over_sockets() {
    // PR 8's acceptance bar: `PMG_DIST_SETUP=1` routes the worker through
    // `RankHierarchy::build_distributed` — transport MIS, face-ID merge,
    // per-rank Galerkin rows, ghost-list collectives — and the resulting
    // 2-process solve must still reproduce the in-process replicated-setup
    // solve bitwise.
    let sys = pmg_bench::spheres_first_solve(0);
    let opts = pmg_bench::parity_options(2);
    let mut solver = prometheus::Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts);
    let (x_ref, res_ref) = solver.solve(&sys.rhs, None, pmg_bench::PARITY_RTOL);
    assert!(res_ref.converged, "{res_ref:?}");

    let dir = std::env::temp_dir().join(format!("pmg-dist-setup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("rank0.out");
    let exits = pmg_comm::launch::launch_with_env(
        2,
        std::path::Path::new(env!("CARGO_BIN_EXE_spheres_rank")),
        &["--out", out.to_str().unwrap()],
        None,
        &[("PMG_DIST_SETUP", "1"), ("PMG_FINE_OP", "assembled")],
    )
    .expect("launch 2 socket ranks with distributed setup");
    assert!(
        exits.iter().all(|e| e.status.success()),
        "distributed-setup socket ranks failed: {exits:?}"
    );
    let (iters, converged, x_bits, res_bits, _) =
        parse_rank_out(&std::fs::read_to_string(&out).unwrap());
    std::fs::remove_dir_all(&dir).ok();
    assert!(converged);
    assert_eq!(iters, res_ref.iterations, "distributed-setup iterations");
    assert_eq!(x_bits.len(), x_ref.len());
    for (got, want) in x_bits.iter().zip(&x_ref) {
        assert_eq!(*got, want.to_bits(), "distributed-setup solution bits");
    }
    assert_eq!(res_bits.len(), res_ref.residuals.len());
    for (got, want) in res_bits.iter().zip(&res_ref.residuals) {
        assert_eq!(*got, want.to_bits(), "distributed-setup residual bits");
    }
}

#[test]
fn spheres_sharded_ingest_bitwise_identical_over_sockets() {
    // PR 10's acceptance bar: `PMG_SHARD_INGEST=1` routes the workers
    // through partition-at-ingest — rank 0 plans and scatters per-rank
    // seeds, each rank assembles only its owned fine rows, the Galerkin
    // rows come from p2p-fetched A rows with no coarse value allgather,
    // and the coarsest factor lives on rank 0 alone. The resulting 2- and
    // 4-process solves must reproduce the in-process replicated-setup
    // solve bitwise.
    let sys = pmg_bench::spheres_first_solve(0);
    for p in [2usize, 4] {
        let opts = pmg_bench::parity_options(p);
        let mut solver = prometheus::Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts);
        let (x_ref, res_ref) = solver.solve(&sys.rhs, None, pmg_bench::PARITY_RTOL);
        assert!(res_ref.converged, "p={p}: {res_ref:?}");

        let dir = std::env::temp_dir().join(format!("pmg-shard-ingest-{p}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("rank0.out");
        let exits = pmg_comm::launch::launch_with_env(
            p,
            std::path::Path::new(env!("CARGO_BIN_EXE_spheres_rank")),
            &["--out", out.to_str().unwrap()],
            None,
            &[("PMG_SHARD_INGEST", "1"), ("PMG_FINE_OP", "assembled")],
        )
        .expect("launch socket ranks with sharded ingest");
        assert!(
            exits.iter().all(|e| e.status.success()),
            "sharded-ingest socket ranks failed (p={p}): {exits:?}"
        );
        let (iters, converged, x_bits, res_bits, _) =
            parse_rank_out(&std::fs::read_to_string(&out).unwrap());
        std::fs::remove_dir_all(&dir).ok();
        assert!(converged);
        assert_eq!(
            iters, res_ref.iterations,
            "sharded-ingest iterations (p={p})"
        );
        assert_eq!(x_bits.len(), x_ref.len());
        for (got, want) in x_bits.iter().zip(&x_ref) {
            assert_eq!(*got, want.to_bits(), "sharded-ingest solution bits (p={p})");
        }
        assert_eq!(res_bits.len(), res_ref.residuals.len());
        for (got, want) in res_bits.iter().zip(&res_ref.residuals) {
            assert_eq!(*got, want.to_bits(), "sharded-ingest residual bits (p={p})");
        }
    }
}

#[test]
fn machine_model_latency_dominates_small_messages() {
    // Sanity of the BSP model: for tiny payloads the modeled comm time is
    // ~latency * messages; for large payloads bandwidth dominates.
    let model = MachineModel {
        latency: 1e-3,
        inv_bandwidth: 1e-9,
        flop_rate: 1e9,
    };
    let mut sim = Sim::new(2, model);
    sim.exchange(&[(1, 8), (1, 8)]);
    let small = sim.finish()["default"].modeled_comm_time;
    assert!((small - (1e-3 + 8e-9)).abs() < 1e-12);
    let mut sim = Sim::new(2, model);
    sim.exchange(&[(1, 100_000_000), (0, 0)]);
    let big = sim.finish()["default"].modeled_comm_time;
    assert!(big > 0.1);
}
