//! Cross-crate invariants of the automatic coarsening pipeline on real
//! finite element meshes (mesh crate -> classify -> MIS -> Delaunay ->
//! restriction -> Galerkin).

use pmg_geometry::Vec3;
use pmg_mesh::{sphere_in_cube, SpheresParams};
use prometheus::{classify_mesh, coarsen_level, CoarsenOptions, VertexClass};

#[test]
fn spheres_restriction_partition_of_unity() {
    let mesh = sphere_in_cube(&SpheresParams::tiny());
    let g = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let lvl = coarsen_level(&mesh.coords, &g, &classes, &CoarsenOptions::default());
    let rt = lvl.restriction.transpose();
    for f in 0..mesh.num_vertices() {
        let (_, vals) = rt.row(f);
        let sum: f64 = vals.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "column {f} sums to {sum}");
    }
}

#[test]
fn spheres_interfaces_survive_coarsening() {
    // The material-interface vertices are the articulation the paper's
    // heuristics protect: the coarse grid must keep vertices on (or very
    // near) every shell interface radius.
    let params = SpheresParams::tiny();
    let mesh = sphere_in_cube(&params);
    let g = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let lvl = coarsen_level(&mesh.coords, &g, &classes, &CoarsenOptions::default());
    let nsh = params.n_layers * params.elems_per_layer;
    for li in 0..=nsh {
        let r = params.core_radius
            + li as f64 / nsh as f64 * (params.sphere_radius - params.core_radius);
        let on_interface = lvl
            .coords
            .iter()
            .filter(|p| (p.norm() - r).abs() < 1e-6)
            .count();
        assert!(
            on_interface >= 3,
            "interface at radius {r} lost its vertices (kept {on_interface})"
        );
    }
}

#[test]
fn galerkin_coarse_operator_is_spd_on_elasticity() {
    use pmg_fem::{FemProblem, LinearElastic};
    use pmg_sparse::dense::Cholesky;
    use std::sync::Arc;

    let mesh = pmg_mesh::generators::cube(4);
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    // Clamp one face to make K SPD.
    let mut fixed = Vec::new();
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
    }
    let (kc, _) = pmg_fem::bc::constrain_system(&k, &vec![0.0; ndof], &fixed);
    assert!(kc.is_symmetric(1e-12));

    let g = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let lvl = coarsen_level(&mesh.coords, &g, &classes, &CoarsenOptions::default());
    let r = prometheus::mg::expand_restriction(&lvl.restriction, 3);
    let ac = kc.rap(&r);
    assert!(ac.is_symmetric(1e-9));
    // SPD: dense Cholesky succeeds.
    assert!(
        Cholesky::factor(&ac.to_dense()).is_some(),
        "Galerkin coarse operator lost definiteness"
    );
}

#[test]
fn classification_is_stable_under_relabeling() {
    // Splitting one material id into two along an existing interface must
    // not change the classification (the facets are the same).
    let mesh1 = pmg_mesh::generators::block(4, 2, 2, Vec3::new(4.0, 2.0, 2.0), |c| {
        if c.x < 2.0 {
            0
        } else {
            1
        }
    });
    let mesh2 = pmg_mesh::generators::block(4, 2, 2, Vec3::new(4.0, 2.0, 2.0), |c| {
        if c.x < 2.0 {
            5
        } else {
            9
        }
    });
    let c1 = classify_mesh(&mesh1, 0.7);
    let c2 = classify_mesh(&mesh2, 0.7);
    assert_eq!(c1.class, c2.class);
}

#[test]
fn deep_hierarchy_terminates() {
    let mesh = pmg_mesh::generators::cube(8);
    let mut coords = mesh.coords.clone();
    let mut g = mesh.vertex_graph();
    let mut cls = classify_mesh(&mesh, 0.7);
    let mut sizes = vec![coords.len()];
    for depth in 1..12 {
        if coords.len() < 20 {
            break;
        }
        let opts = CoarsenOptions {
            reclassify: depth >= 2,
            ..Default::default()
        };
        let lvl = coarsen_level(&coords, &g, &cls, &opts);
        assert!(lvl.selected.len() < coords.len());
        sizes.push(lvl.selected.len());
        coords = lvl.coords;
        g = lvl.graph;
        cls = lvl.classes;
    }
    assert!(sizes.len() >= 3, "hierarchy too shallow: {sizes:?}");
    assert!(
        *sizes.last().unwrap() < 100,
        "coarsening stalled: {sizes:?}"
    );
    // The 8 cube corners survive every level (corners are never deleted,
    // and reclassification keeps the true geometric corners).
    let corners = cls
        .class
        .iter()
        .filter(|&&c| c == VertexClass::Corner)
        .count();
    assert!(corners >= 1, "all corners vanished");
}
