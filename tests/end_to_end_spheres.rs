//! End-to-end integration: the paper's spheres problem through the whole
//! stack — mesh generation, FE assembly, automatic coarsening, FMG-PCG —
//! including parallel-vs-serial consistency and a short Newton run.

use pmg_fem::{spheres_problem, NewtonDriver, NewtonOptions};
use pmg_mesh::SpheresParams;
use prometheus::{FineOperator, MgOptions, Prometheus, PrometheusOptions};

fn tiny_system() -> pmg_bench_free::System {
    pmg_bench_free::build()
}

/// Local duplicate of the bench harness setup (tests are independent of
/// the bench crate).
mod pmg_bench_free {
    use pmg_fem::bc::{constrain_system, constraint_scale};
    use pmg_fem::FemProblem;
    use pmg_mesh::{Mesh, SpheresParams};
    use pmg_sparse::CsrMatrix;

    pub struct System {
        pub mesh: Mesh,
        pub matrix: CsrMatrix,
        pub rhs: Vec<f64>,
        /// The FE problem after assembly at `u = 0` (element geometry
        /// cached) plus the Dirichlet data, so tests can build the
        /// matrix-free operator for the same constrained system.
        pub fem: FemProblem,
        pub fixed: Vec<u32>,
        pub scale: f64,
    }

    impl System {
        /// The element-loop operator equivalent to `matrix`.
        pub fn matrix_free(&self) -> pmg_fem::MatFreeOperator {
            let zeros = vec![0.0; self.mesh.num_dof()];
            pmg_fem::MatFreeOperator::new(&self.fem, &zeros, &self.fixed, self.scale)
        }
    }

    pub fn build() -> System {
        let params = SpheresParams::tiny();
        let mut problem = pmg_fem::spheres_problem(&params);
        let mesh = problem.fem.mesh.clone();
        let ndof = mesh.num_dof();
        let (k, r) = problem.fem.assemble(&vec![0.0; ndof]);
        let bcs = problem.bcs_for_step(1, 10);
        let fixed_pairs: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
        let (matrix, rhs) = constrain_system(&k, &r, &fixed_pairs);
        let scale = constraint_scale(&k, &fixed_pairs);
        let fixed: Vec<u32> = fixed_pairs.iter().map(|&(d, _)| d).collect();
        System {
            mesh,
            matrix,
            rhs,
            fem: problem.fem,
            fixed,
            scale,
        }
    }
}

/// Build the solver on whichever fine-operator backend `PMG_FINE_OP`
/// selects, so the whole file doubles as a matrix-free integration suite
/// under `PMG_FINE_OP=matrixfree` (the CI matrix run).
fn solver_for(sys: &pmg_bench_free::System, mut opts: PrometheusOptions) -> Prometheus {
    match FineOperator::from_env() {
        FineOperator::MatrixFree => {
            opts.mg.fine_operator = FineOperator::MatrixFree;
            let mf = sys.matrix_free();
            Prometheus::from_mesh_matrix_free(&sys.mesh, &sys.matrix, opts, &mf)
        }
        FineOperator::Assembled => Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts),
    }
}

#[test]
fn first_linear_solve_converges_quickly() {
    let sys = tiny_system();
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 200,
        ..Default::default()
    };
    let mut solver = solver_for(&sys, opts);
    assert!(solver.level_sizes().len() >= 2);
    let (x, res) = solver.solve(&sys.rhs, None, 1e-6);
    assert!(res.converged, "{res:?}");
    assert!(
        res.iterations <= 60,
        "MG-PCG should converge fast on the spheres problem: {} iters",
        res.iterations
    );
    // True residual check against the original operator.
    let mut ax = vec![0.0; x.len()];
    sys.matrix.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&sys.rhs)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err <= 2e-6 * bn, "true residual {err:.3e} vs b {bn:.3e}");
}

#[test]
fn parallel_ranks_agree_with_serial() {
    let sys = tiny_system();
    let solve_with = |p: usize| {
        let opts = PrometheusOptions {
            nranks: p,
            mg: MgOptions {
                coarse_dof_threshold: 400,
                ..Default::default()
            },
            max_iters: 200,
            ..Default::default()
        };
        let mut solver = solver_for(&sys, opts);
        let (x, res) = solver.solve(&sys.rhs, None, 1e-10);
        assert!(res.converged, "p={p}");
        x
    };
    let x1 = solve_with(1);
    for p in [2, 4, 7] {
        let xp = solve_with(p);
        // Same linear system solved to 1e-10: solutions agree to solver
        // tolerance (the hierarchy may differ slightly via the rank-based
        // MIS, but the answer may not).
        let num: f64 = x1
            .iter()
            .zip(&xp)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = x1.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        assert!(num / den < 1e-6, "p={p}: relative diff {}", num / den);
    }
}

#[test]
fn two_newton_steps_with_multigrid() {
    let params = SpheresParams {
        n_surf: 3,
        n_layers: 3,
        elems_per_layer: 1,
        n_core_zone: 1,
        n_outer_zone: 1,
        ..SpheresParams::tiny()
    };
    let mut problem = spheres_problem(&params);
    let mesh = problem.fem.mesh.clone();
    let ndof = mesh.num_dof();
    let mut u = vec![0.0; ndof];
    let driver = NewtonDriver::new(NewtonOptions::default());
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 300,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver: Option<Prometheus> = None;
    for step in 1..=2 {
        let bcs = problem.bcs_for_step(step, 10);
        let stats = {
            let mut solve = |k: &pmg_sparse::CsrMatrix, rhs: &[f64], rtol: f64| {
                match solver.as_mut() {
                    None => solver = Some(Prometheus::from_mesh(&mesh, k, opts)),
                    Some(s) => s.update_matrix(k),
                }
                let (x, r) = solver.as_mut().unwrap().solve(rhs, None, rtol);
                assert!(r.converged, "linear solve failed at rtol {rtol}");
                (x, r.iterations)
            };
            driver.solve_step(&mut problem.fem, &mut u, &bcs, &mut solve)
        };
        assert!(stats.converged, "Newton step {step} failed: {stats:?}");
        assert!(stats.newton_iters <= 12);
    }
    // The top surface moved by the prescribed amount.
    let target = -problem.total_crush * 2.0 / 10.0;
    for &d in &problem.top_dofs {
        assert!((u[d as usize] - target).abs() < 1e-9);
    }
}

/// Golden parity: PCG + FMG with the matrix-free fine operator must walk
/// the same Krylov trajectory as the assembled solve — same iteration
/// count and a residual history that tracks it to floating-point
/// reassociation (the element-loop apply sums the same numbers in a
/// different order, so bitwise equality is not expected — staying on the
/// same iteration path is the contract).
#[test]
fn matrix_free_solve_reproduces_assembled_history() {
    let sys = tiny_system();
    let base = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 200,
        ..Default::default()
    };

    let mut assembled = Prometheus::from_mesh(&sys.mesh, &sys.matrix, base);
    let (xa, ra) = assembled.solve(&sys.rhs, None, 1e-6);

    let mut opts = base;
    opts.mg.fine_operator = FineOperator::MatrixFree;
    let mf = sys.matrix_free();
    let mut matfree = Prometheus::from_mesh_matrix_free(&sys.mesh, &sys.matrix, opts, &mf);
    let (xm, rm) = matfree.solve(&sys.rhs, None, 1e-6);

    assert!(ra.converged && rm.converged, "{ra:?} vs {rm:?}");
    assert_eq!(
        rm.iterations, ra.iterations,
        "matrix-free iteration count diverged from assembled"
    );
    assert_eq!(rm.residuals.len(), ra.residuals.len());
    for (it, (m, a)) in rm.residuals.iter().zip(&ra.residuals).enumerate() {
        assert!(
            (m - a).abs() <= 1e-6 * a.abs(),
            "iter {it}: residual {m:e} vs assembled {a:e}"
        );
    }
    let num: f64 = xm
        .iter()
        .zip(&xa)
        .map(|(m, a)| (m - a) * (m - a))
        .sum::<f64>()
        .sqrt();
    let den: f64 = xa.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
    assert!(num / den < 1e-8, "solution drift {}", num / den);

    // The memory story the matrix-free path exists for: its operator
    // footprint must undercut the assembled fine matrix.
    use pmg_sparse::Operator;
    assert!(
        mf.memory_bytes() < sys.matrix.memory_bytes(),
        "matrix-free {} bytes vs assembled {}",
        mf.memory_bytes(),
        sys.matrix.memory_bytes()
    );
}
