//! The paper's opening claim, measured: "finite element matrices are often
//! poorly conditioned" — and the multigrid preconditioner repairs this.
//! Lanczos estimates the spectrum of the raw and the FMG-preconditioned
//! operator on the spheres problem (material jump 1e4, ν = 0.49).

use pmg_fem::bc::constrain_system;
use pmg_mesh::SpheresParams;
use pmg_parallel::{DistMatrix, Layout, MachineModel, Sim};
use pmg_solver::{lanczos_spectrum, IdentityPrecond};
use prometheus::{classify_mesh, MgHierarchy, MgOptions};

#[test]
fn fmg_preconditioning_collapses_condition_number() {
    let params = SpheresParams::tiny();
    let mut problem = pmg_fem::spheres_problem(&params);
    let mesh = problem.fem.mesh.clone();
    let ndof = mesh.num_dof();
    let (k, r) = problem.fem.assemble(&vec![0.0; ndof]);
    let bcs = problem.bcs_for_step(1, 10);
    let fixed: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
    let (kc, _) = constrain_system(&k, &r, &fixed);

    let mut sim = Sim::new(1, MachineModel::default());
    let layout = Layout::serial(ndof);
    let da = DistMatrix::from_global(&kc, layout.clone(), layout);

    let raw = lanczos_spectrum(&mut sim, &da, &IdentityPrecond, 40);
    // Lanczos with 40 steps lower-bounds the true condition number; even
    // the bound is in the thousands on this tiny mesh (it grows with
    // refinement).
    assert!(
        raw.condition() > 1e3,
        "the spheres operator should be badly conditioned: {:?}",
        raw
    );

    let graph = mesh.vertex_graph();
    let classes = classify_mesh(&mesh, 0.7);
    let mg = MgHierarchy::build(
        &mut sim,
        &kc,
        &mesh.coords,
        &graph,
        &classes,
        MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
    );
    // Note: the hierarchy owns its own layout; rebuild the operator on it.
    let pre = lanczos_spectrum(&mut sim, &mg.levels[0].a, &mg, 40);
    assert!(
        pre.lambda_min > 0.0,
        "preconditioned operator must stay definite: {pre:?}"
    );
    assert!(
        pre.condition() < 1e-2 * raw.condition(),
        "FMG should collapse the condition number: raw {:.3e} vs preconditioned {:.3e}",
        raw.condition(),
        pre.condition()
    );
    // A good multigrid preconditioner yields O(1..tens) conditioning even
    // with the 1e4 material jump.
    assert!(
        pre.condition() < 200.0,
        "preconditioned κ = {:.3e}",
        pre.condition()
    );
}
