//! Figure 8 of the paper, end to end: flat input file → parallel read
//! (each rank seeks only its share) → partition (RCB standing in for
//! ParMetis) → per-rank sub-domain construction with ghosts → per-rank
//! assembly of owned rows → Prometheus multigrid solve. The distributed
//! pipeline must reproduce the serial answer.

use pmg_fem::athena::{assemble_distributed, partition_mesh, redundancy_factor};
use pmg_fem::table1_materials;
use pmg_mesh::flatfile::{read_flat_slice, write_flat};
use pmg_mesh::{sphere_in_cube, Mesh, SpheresParams};
use pmg_partition::recursive_coordinate_bisection;
use prometheus::{MgOptions, Prometheus, PrometheusOptions};

#[test]
fn flat_file_to_solution() {
    let nranks = 4;
    let params = SpheresParams::tiny();
    let mesh = sphere_in_cube(&params);

    // 1. Write the flat input file; read it back in rank-sized slices.
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("pmg_athena_{}.mesh", std::process::id()));
        p
    };
    write_flat(&mesh, &path).unwrap();
    let mut coords = Vec::new();
    let mut elem_verts = Vec::new();
    let mut materials = Vec::new();
    let mut kind = None;
    for r in 0..nranks {
        let s = read_flat_slice(&path, r, nranks).unwrap();
        kind = Some(s.header.kind);
        coords.extend(s.coords);
        elem_verts.extend(s.elem_verts);
        materials.extend(s.materials);
    }
    std::fs::remove_file(&path).ok();
    let mesh_read = Mesh::new(coords, kind.unwrap(), elem_verts, materials);
    assert_eq!(mesh_read.num_vertices(), mesh.num_vertices());

    // 2. Partition and build the per-rank sub-domains.
    let part = recursive_coordinate_bisection(&mesh_read.coords, nranks);
    let subs = partition_mesh(&mesh_read, &part, nranks);
    let rf = redundancy_factor(&subs);
    assert!(rf > 1.0 && rf < 2.0, "redundancy {rf}");

    // 3. Distributed assembly of the tangent at zero displacement.
    let ndof = mesh_read.num_dof();
    let u = vec![0.0; ndof];
    let (k, r) = assemble_distributed(&subs, &table1_materials(), &u, mesh_read.num_vertices());
    assert!(k.is_symmetric(1e-10));

    // 4. Constrain and solve with the automatic multigrid.
    let mut problem = pmg_fem::spheres_problem(&params);
    let bcs = problem.bcs_for_step(1, 10);
    let fixed: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &r, &fixed);
    let opts = PrometheusOptions {
        nranks,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&mesh_read, &kc, opts);
    let (x, res) = solver.solve(&rhs, None, 1e-6);
    assert!(res.converged, "{res:?}");

    // 5. Cross-check against the fully serial pipeline.
    let (k_serial, r_serial) = problem.fem.assemble(&u);
    let (kc_serial, rhs_serial) = pmg_fem::bc::constrain_system(&k_serial, &r_serial, &fixed);
    // Identical operators...
    for i in (0..ndof).step_by(97) {
        let (c1, v1) = kc.row(i);
        let (c2, v2) = kc_serial.row(i);
        assert_eq!(c1, c2, "row {i}");
        for (a, b) in v1.iter().zip(v2) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((rhs[i] - rhs_serial[i]).abs() < 1e-12);
    }
    // ...and a solution that satisfies the serial system.
    let mut ax = vec![0.0; ndof];
    kc_serial.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&rhs_serial)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = rhs_serial.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 2e-6 * bn, "residual {err:.3e} vs {bn:.3e}");
}

#[test]
fn athena_redundancy_grows_with_ranks_but_stays_bounded() {
    let mesh = sphere_in_cube(&SpheresParams::tiny());
    let mut prev = 1.0;
    for nranks in [1usize, 2, 4, 8, 16] {
        let part = recursive_coordinate_bisection(&mesh.coords, nranks);
        let subs = partition_mesh(&mesh, &part, nranks);
        let rf = redundancy_factor(&subs);
        assert!(
            rf >= prev - 1e-9,
            "redundancy should not shrink: {prev} -> {rf}"
        );
        assert!(rf < 2.5, "redundancy exploded at P={nranks}: {rf}");
        prev = rf;
    }
}
