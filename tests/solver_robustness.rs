//! Solver robustness across the regimes the paper highlights: large
//! material jumps, near-incompressibility, thin bodies, and the smoothed
//! aggregation alternative.

use pmg_fem::{FemProblem, LinearElastic, NeoHookean};
use pmg_geometry::Vec3;
use pmg_mesh::generators::block;
use prometheus::{CycleType, MgOptions, Prometheus, PrometheusOptions};
use std::sync::Arc;

fn constrained_system(
    mesh: &pmg_mesh::Mesh,
    materials: Vec<Arc<dyn pmg_fem::Material>>,
) -> (pmg_sparse::CsrMatrix, Vec<f64>) {
    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(mesh.clone(), materials);
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        if p.z == 1.0 {
            f[3 * v + 2] = -0.001;
        }
    }
    let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
    (kc, rhs.iter().map(|v| -v).collect())
}

fn solve_iters(
    mesh: &pmg_mesh::Mesh,
    k: &pmg_sparse::CsrMatrix,
    b: &[f64],
    cycle: CycleType,
) -> usize {
    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 300,
            cycle,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(mesh, k, opts);
    let (_, res) = solver.solve(b, None, 1e-8);
    assert!(res.converged, "cycle {cycle:?} did not converge");
    res.iterations
}

#[test]
fn material_jump_1e4_stays_bounded() {
    // Alternating stiff/soft slabs (two elements through each slab, like
    // the paper's resolved shells): the Galerkin coarse operators see the
    // jump; MG-PCG must stay in a few dozen iterations.
    let mesh = block(6, 6, 6, Vec3::splat(1.0), |c| {
        if ((c.z * 3.0) as usize).is_multiple_of(2) {
            0
        } else {
            1
        }
    });
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![
        Arc::new(LinearElastic::from_e_nu(1.0, 0.3)),
        Arc::new(LinearElastic::from_e_nu(1e-4, 0.3)),
    ];
    let (k, b) = constrained_system(&mesh, mats);
    let iters = solve_iters(&mesh, &k, &b, CycleType::Fmg);
    assert!(
        iters <= 60,
        "material jump blew up the iteration count: {iters}"
    );
}

#[test]
fn one_element_thick_jump_slabs_still_converge() {
    // The degenerate variant: slabs one element thick, so no coarse grid
    // can resolve the layering. Convergence degrades (the coarse space
    // cannot represent per-slab kinematics) but must not stall.
    let mesh = block(6, 6, 6, Vec3::splat(1.0), |c| {
        if ((c.z * 6.0) as usize).is_multiple_of(2) {
            0
        } else {
            1
        }
    });
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![
        Arc::new(LinearElastic::from_e_nu(1.0, 0.3)),
        Arc::new(LinearElastic::from_e_nu(1e-4, 0.3)),
    ];
    let (k, b) = constrained_system(&mesh, mats);
    let iters = solve_iters(&mesh, &k, &b, CycleType::Fmg);
    assert!(iters <= 250, "unresolvable layering stalled: {iters}");
}

#[test]
fn near_incompressible_converges() {
    let mesh = block(5, 5, 5, Vec3::splat(1.0), |_| 0);
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![Arc::new(NeoHookean::from_e_nu(1e-4, 0.49))];
    let (k, b) = constrained_system(&mesh, mats);
    let iters = solve_iters(&mesh, &k, &b, CycleType::Fmg);
    assert!(iters <= 120, "nu=0.49 iteration count: {iters}");
}

#[test]
fn v_w_and_fmg_cycles_all_work() {
    let mesh = block(6, 6, 6, Vec3::splat(1.0), |_| 0);
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))];
    let (k, b) = constrained_system(&mesh, mats);
    let v = solve_iters(&mesh, &k, &b, CycleType::V);
    let w = solve_iters(&mesh, &k, &b, CycleType::W);
    let f = solve_iters(&mesh, &k, &b, CycleType::Fmg);
    assert!(v <= 60 && w <= 60 && f <= 60, "V: {v}, W: {w}, FMG: {f}");
    // The W-cycle is at least as strong per application as the V-cycle.
    assert!(w <= v + 2, "W {w} should not trail V {v}");
}

#[test]
fn sa_baseline_solves_elasticity() {
    use pmg_parallel::{DistVec, MachineModel, Sim};
    use pmg_solver::{pcg, PcgOptions};
    use prometheus::{build_sa_hierarchy, SaOptions};

    let mesh = block(5, 5, 5, Vec3::splat(1.0), |_| 0);
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))];
    let (k, b) = constrained_system(&mesh, mats);
    let mut sim = Sim::new(2, MachineModel::default());
    let sa = build_sa_hierarchy(
        &mut sim,
        &k,
        &mesh.coords,
        SaOptions {
            mg: MgOptions {
                coarse_dof_threshold: 300,
                cycle: CycleType::V,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(sa.num_levels() >= 2);
    let layout = sa.levels[0].a.row_layout().clone();
    let db = DistVec::from_global(layout.clone(), &b);
    let mut x = DistVec::zeros(layout);
    let res = pcg(
        &mut sim,
        &sa.levels[0].a,
        &sa,
        &db,
        &mut x,
        PcgOptions {
            rtol: 1e-8,
            max_iters: 300,
            ..Default::default()
        },
    );
    assert!(res.converged);
    assert!(res.iterations <= 120, "SA iterations: {}", res.iterations);
}

#[test]
fn one_level_baseline_is_worse_than_mg() {
    use pmg_parallel::{DistMatrix, DistVec, Layout, MachineModel, Sim};
    use pmg_solver::{pcg, BlockJacobi, PcgOptions};

    let mesh = block(7, 7, 7, Vec3::splat(1.0), |_| 0);
    let mats: Vec<Arc<dyn pmg_fem::Material>> = vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))];
    let (k, b) = constrained_system(&mesh, mats);
    let mg_iters = solve_iters(&mesh, &k, &b, CycleType::Fmg);

    let layout = Layout::block(k.nrows(), 2);
    let mut sim = Sim::new(2, MachineModel::default());
    let da = DistMatrix::from_global(&k, layout.clone(), layout.clone());
    let bj = BlockJacobi::new(&da, 6.0, 1.0);
    let db = DistVec::from_global(layout.clone(), &b);
    let mut x = DistVec::zeros(layout);
    let res = pcg(
        &mut sim,
        &da,
        &bj,
        &db,
        &mut x,
        PcgOptions {
            rtol: 1e-8,
            max_iters: 3000,
            ..Default::default()
        },
    );
    assert!(
        res.iterations > 2 * mg_iters,
        "one-level {} vs MG {}",
        res.iterations,
        mg_iters
    );
}
