//! Fault injection against the SPMD solve: the reliability layer of
//! [`pmg_comm::FaultTransport`] must make the solve *bitwise* insensitive
//! to message delay, duplication, and loss (timeout + retransmit restore
//! per-link FIFO exactly), and a crashed rank must surface a clean
//! [`CommError`] on the surviving ranks instead of a hang.

use pmg_comm::{CommError, FaultConfig, FaultTransport, LocalTransport, Transport};
use pmg_parallel::{MachineModel, Sim};
use pmg_solver::PcgOptions;
use pmg_sparse::{CooBuilder, CsrMatrix};
use prometheus::{classify_mesh, solve_threads, spmd_pcg, MgHierarchy, MgOptions, RankHierarchy};
use std::time::Duration;

/// Scalar SPD problem (graph Laplacian + identity) on a hex cube mesh.
fn scalar_problem(n: usize) -> (CsrMatrix, pmg_mesh::Mesh, pmg_partition::Graph) {
    let m = pmg_mesh::generators::cube(n);
    let g = m.vertex_graph();
    let nv = m.num_vertices();
    let mut b = CooBuilder::new(nv, nv);
    for v in 0..nv {
        b.push(v, v, g.degree(v) as f64 + 1.0);
        for &w in g.neighbors(v) {
            b.push(v, w as usize, -1.0);
        }
    }
    (b.build(), m, g)
}

fn build_hierarchy(nranks: usize) -> (MgHierarchy, CsrMatrix) {
    let (a, mesh, g) = scalar_problem(7);
    let classes = classify_mesh(&mesh, 0.7);
    let mut sim = Sim::new(nranks, MachineModel::default());
    let opts = MgOptions {
        dofs_per_vertex: 1,
        coarse_dof_threshold: 60,
        ..Default::default()
    };
    let mg = MgHierarchy::build(&mut sim, &a, &mesh.coords, &g, &classes, opts);
    (mg, a)
}

#[test]
fn solve_is_bitwise_exact_under_injected_faults() {
    let nranks = 2;
    let (mg, a) = build_hierarchy(nranks);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
    let opts = PcgOptions {
        rtol: 1e-8,
        max_iters: 60,
        ..Default::default()
    };

    // Clean reference over the in-process transport.
    let clean = solve_threads(&mg, &b, opts).unwrap();
    assert!(clean.result.converged);

    // Same solve with 1% of messages delayed, 1% duplicated, and 1%
    // dropped (recovered by timeout + retransmission).
    let layout = mg.levels[0].a.row_layout().clone();
    let cfg = FaultConfig {
        delay_prob: 0.01,
        dup_prob: 0.01,
        drop_prob: 0.01,
        delay: Duration::from_micros(500),
        timeout: Duration::from_millis(50),
        ..Default::default()
    };
    let (mg_ref, b_ref, l_ref) = (&mg, &b, &layout);
    let per_rank = LocalTransport::run_ranks(nranks, move |inner| {
        let mut t = FaultTransport::wrap(inner, cfg.clone());
        let rank = t.rank();
        let h = RankHierarchy::extract(mg_ref, rank);
        let bl: Vec<f64> = l_ref
            .owned(rank)
            .iter()
            .map(|&g| b_ref[g as usize])
            .collect();
        let mut xl = vec![0.0; bl.len()];
        let (res, _) = spmd_pcg(&mut t, &h, &bl, &mut xl, opts)?;
        Ok::<_, CommError>((xl, res, t.stats()))
    });

    let mut retries = 0u64;
    for (rank, out) in per_rank.into_iter().enumerate() {
        let (xl, res, stats) = out.unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        assert_eq!(res.iterations, clean.result.iterations, "rank {rank}");
        for (got, want) in res.residuals.iter().zip(&clean.result.residuals) {
            assert_eq!(got.to_bits(), want.to_bits(), "rank {rank} residuals");
        }
        for (&g, &v) in layout.owned(rank).iter().zip(&xl) {
            assert_eq!(
                v.to_bits(),
                clean.x[g as usize].to_bits(),
                "rank {rank} solution"
            );
        }
        retries += stats.retries;
    }
    // The drop injection really exercised the retransmission path.
    assert!(retries > 0, "expected injected drops to force retries");
}

#[test]
fn crashed_rank_surfaces_clean_error_not_hang() {
    let nranks = 2;
    let (mg, a) = build_hierarchy(nranks);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
    let layout = mg.levels[0].a.row_layout().clone();
    let opts = PcgOptions {
        rtol: 1e-8,
        max_iters: 60,
        ..Default::default()
    };

    let (mg_ref, b_ref, l_ref) = (&mg, &b, &layout);
    let per_rank = LocalTransport::run_ranks(nranks, move |inner| {
        let rank = inner.rank();
        let cfg = FaultConfig {
            timeout: Duration::from_millis(20),
            max_retries: 2,
            // Rank 1 goes silent after a handful of sends, mid-solve.
            crash_after: (rank == 1).then_some(5),
            ..Default::default()
        };
        let mut t = FaultTransport::wrap(inner, cfg);
        let h = RankHierarchy::extract(mg_ref, rank);
        let bl: Vec<f64> = l_ref
            .owned(rank)
            .iter()
            .map(|&g| b_ref[g as usize])
            .collect();
        let mut xl = vec![0.0; bl.len()];
        spmd_pcg(&mut t, &h, &bl, &mut xl, opts).map(|(res, _)| res)
    });

    // The surviving rank gets a typed error (and the test returning at all
    // proves nothing hung).
    let err = per_rank[0].as_ref().expect_err("rank 0 must fail cleanly");
    assert!(
        matches!(
            err,
            CommError::RetriesExhausted { .. } | CommError::Timeout { .. }
        ),
        "unexpected error kind: {err}"
    );
}
