//! The 3x3-blocked (BSR3) solve path against the scalar CSR reference.
//!
//! The blocked product accumulates in the same per-row order as the scalar
//! one, so routing the level operators through `Bsr3Matrix` must not change
//! a single bit of the solve: identical PCG iteration counts, identical
//! residual histories, identical solutions.

use pmg_bench::spheres_first_solve;
use prometheus::{MgOptions, Prometheus, PrometheusOptions};

fn opts(block3: bool) -> PrometheusOptions {
    PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 200,
            block3,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn bsr3_routed_pcg_is_bitwise_identical_to_csr() {
    let sys = spheres_first_solve(0);

    let mut blocked = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts(true));
    let mut scalar = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts(false));

    // The spheres problem is 3 dofs/vertex with vertex-aligned layouts:
    // every level operator must actually take the blocked path.
    for (lvl, level) in blocked.mg.levels.iter().enumerate() {
        assert!(level.a.bsr3_routed(), "level {lvl} not BSR3-routed");
    }
    for (lvl, level) in scalar.mg.levels.iter().enumerate() {
        assert!(
            !level.a.bsr3_routed(),
            "level {lvl} routed despite block3=false"
        );
    }

    let (xb, rb) = blocked.solve(&sys.rhs, None, 1e-8);
    let (xs, rs) = scalar.solve(&sys.rhs, None, 1e-8);

    assert!(rb.converged && rs.converged, "{rb:?} / {rs:?}");
    assert_eq!(rb.iterations, rs.iterations, "iteration counts diverged");
    assert_eq!(rb.residuals, rs.residuals, "residual histories diverged");
    assert_eq!(xb, xs, "solutions diverged");
}

#[test]
fn bsr3_smoother_sweep_is_bitwise_identical() {
    use pmg_parallel::DistVec;

    let sys = spheres_first_solve(0);
    let blocked = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts(true));
    let scalar = Prometheus::from_mesh(&sys.mesh, &sys.matrix, opts(false));

    let run = |solver: &Prometheus| -> (Vec<f64>, Vec<f64>) {
        let mut sim = pmg_parallel::Sim::new(2, pmg_parallel::MachineModel::default());
        let level = &solver.mg.levels[0];
        let layout = level.a.row_layout().clone();
        let b = DistVec::from_global(layout.clone(), &sys.rhs);
        let mut x = DistVec::zeros(layout.clone());
        level.smoother.smooth(&mut sim, &level.a, &b, &mut x, 3);
        // One extra raw product through the routed operator.
        let mut y = DistVec::zeros(layout);
        level.a.spmv(&mut sim, &x, &mut y);
        (x.to_global(), y.to_global())
    };
    let (xb, yb) = run(&blocked);
    let (xs, ys) = run(&scalar);
    assert_eq!(xb, xs, "smoother sweeps diverged");
    assert_eq!(yb, ys, "spmv results diverged");
}
