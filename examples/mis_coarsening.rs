//! Inspect the automatic coarsening pipeline (the paper's Figure 7 view):
//! vertex classification, MIS selection under different orderings, the
//! Delaunay remesh, and the resulting grid hierarchy of the spheres
//! problem.
//!
//! Run with: `cargo run --release --example mis_coarsening`

use prometheus_repro::mesh::{sphere_in_cube, SpheresParams};
use prometheus_repro::partition::Graph;
use prometheus_repro::solver::{
    classify_vertices, coarsen_level, greedy_mis, identify_faces, modified_mis_graph,
    CoarsenOptions, MisOrdering, VertexClass,
};

fn class_histogram(classes: &prometheus_repro::solver::VertexClasses) -> String {
    format!(
        "interior {:>6}  surface {:>6}  edge {:>5}  corner {:>5}",
        classes.count(VertexClass::Interior),
        classes.count(VertexClass::Surface),
        classes.count(VertexClass::Edge),
        classes.count(VertexClass::Corner),
    )
}

fn main() {
    // §4.7 study: MIS density under natural vs random ordering on a
    // uniform hex mesh (bounds 1/8 .. 1/27 of the vertex count).
    println!("=== MIS ordering study (uniform 16^3-element cube, §4.7) ===");
    let cube = prometheus_repro::mesh::generators::cube(16);
    let g = cube.vertex_graph();
    let n = cube.num_vertices();
    for (name, ordering) in [
        ("natural", MisOrdering::Natural),
        ("random ", MisOrdering::Random(7)),
    ] {
        let order = ordering.order(n, &vec![0u8; n]);
        let sel = greedy_mis(&g, &order);
        let ns = sel.iter().filter(|&&s| s).count();
        println!(
            "  {name} ordering: MIS {ns:>5} of {n} = 1/{:.1}   (bounds: 1/8 .. 1/27)",
            n as f64 / ns as f64
        );
    }

    // Face identification and classification on the spheres problem.
    println!("\n=== concentric spheres: classification and coarsening ===");
    let params = SpheresParams::tiny();
    let mesh = sphere_in_cube(&params);
    let facets = prometheus_repro::mesh::boundary_facets(&mesh);
    let adj = prometheus_repro::mesh::facet_adjacency(&facets);
    let ids = identify_faces(&facets, &adj, 0.7);
    let nfaces = {
        let mut u = ids.clone();
        u.sort_unstable();
        u.dedup();
        u.len()
    };
    println!(
        "fine grid: {} vertices, {} boundary facets grouped into {} faces (TOL=0.7)",
        mesh.num_vertices(),
        facets.len(),
        nfaces
    );
    let classes = classify_vertices(mesh.num_vertices(), &facets, &ids);
    println!("  classes: {}", class_histogram(&classes));

    // The modified MIS graph (§4.6).
    let graph = mesh.vertex_graph();
    let modified = modified_mis_graph(&graph, &classes);
    println!(
        "  MIS graph: {} edges -> {} after the §4.6 modification",
        graph.num_edges(),
        modified.num_edges()
    );

    // Recursive coarsening: the grids of Figure 7.
    println!("\nlevel  vertices   tets    lost   classes");
    let mut coords = mesh.coords.clone();
    let mut g: Graph = graph;
    let mut cls = classes;
    println!(
        "{:>5} {:>9} {:>6} {:>6}   {}",
        0,
        coords.len(),
        mesh.num_elements(),
        "-",
        class_histogram(&cls)
    );
    for level in 1..6 {
        if coords.len() < 30 {
            break;
        }
        let opts = CoarsenOptions {
            reclassify: level >= 2,
            ..Default::default()
        };
        let lvl = coarsen_level(&coords, &g, &cls, &opts);
        println!(
            "{:>5} {:>9} {:>6} {:>6}   {}",
            level,
            lvl.selected.len(),
            lvl.tets.len(),
            lvl.lost_vertices,
            class_histogram(&lvl.classes)
        );
        coords = lvl.coords;
        g = lvl.graph;
        cls = lvl.classes;
    }
}
