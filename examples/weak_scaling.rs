//! A miniature of the paper's weak-scaling study (§7.1): solve the first
//! linear system of the spheres problem on the refinement ladder, with the
//! virtual-rank count growing with the problem, and report the quantities
//! of Table 2 / Figures 10-11: iteration counts, per-phase times, flop
//! rates and efficiencies.
//!
//! Run with: `cargo run --release --example weak_scaling [max_k]`
//! (`max_k` = 2 by default; 3 adds a ~420k dof point and a few minutes).
//! The full study with all series lives in `crates/bench/src/bin/`.

use prometheus_repro::fem::bc::constrain_system;
use prometheus_repro::mesh::SpheresParams;
use prometheus_repro::solver::{MgOptions, Prometheus, PrometheusOptions};
use std::time::Instant;

/// Rank ladder mirroring the paper's processor counts at ~8.5k dof/rank.
fn ranks_for(k: usize) -> usize {
    [2, 15, 50, 120, 240, 400, 640, 960][k - 1]
}

fn main() {
    let max_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!(
        "{:>2} {:>5} {:>10} {:>6} {:>8} {:>10} {:>12} {:>10} {:>8}",
        "k", "P", "dof", "iters", "levels", "wall(s)", "Mflop/s(mdl)", "e_c", "balance"
    );

    let mut base_rate_per_rank: Option<f64> = None;
    for k in 1..=max_k {
        let p = ranks_for(k);
        let params = SpheresParams::ladder(k);
        let mut problem = prometheus_repro::fem::spheres_problem(&params);
        let mesh = problem.fem.mesh.clone();
        let ndof = mesh.num_dof();

        let u = vec![0.0; ndof];
        let (kmat, r) = problem.fem.assemble(&u);
        let bcs = problem.bcs_for_step(1, 10);
        let fixed: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
        let (kc, rhs) = constrain_system(&kmat, &r, &fixed);

        let wall = Instant::now();
        let opts = PrometheusOptions {
            nranks: p,
            mg: MgOptions {
                coarse_dof_threshold: 600,
                ..Default::default()
            },
            max_iters: 300,
            ..Default::default()
        };
        let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
        let levels = solver.level_sizes().len();
        // The paper's first linear solve: rtol = 1e-4.
        let (_x, res) = solver.solve(&rhs, None, 1e-4);
        let wall = wall.elapsed().as_secs_f64();

        let phases = solver.finish();
        let solve = &phases["solve"];
        let rate = solve.modeled_flop_rate();
        let per_rank = rate / p as f64;
        let e_c = match base_rate_per_rank {
            None => {
                base_rate_per_rank = Some(per_rank);
                1.0
            }
            Some(base) => per_rank / base,
        };
        println!(
            "{:>2} {:>5} {:>10} {:>6} {:>8} {:>10.2} {:>12.1} {:>10.2} {:>8.2}",
            k,
            p,
            ndof,
            res.iterations,
            levels,
            wall,
            rate / 1e6,
            e_c,
            solve.load_balance()
        );
    }
    println!("\n(e_c = modeled per-rank flop rate relative to the first ladder point;");
    println!(" compare with the paper's ~29 -> 21 iterations and ~60% solve efficiency at P=960)");
}
