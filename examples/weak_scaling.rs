//! A miniature of the paper's weak-scaling study (§7.1): solve the first
//! linear system of the spheres problem on the refinement ladder, with the
//! virtual-rank count growing with the problem, and report the quantities
//! of Table 2 / Figures 10-11: iteration counts, per-phase times, flop
//! rates and efficiencies.
//!
//! Run with:
//! `cargo run --release --example weak_scaling [max_k] [--transport sim|threads]`
//! (`max_k` = 2 by default; 3 adds a ~420k dof point and a few minutes).
//!
//! `--transport sim` (default) runs only the orchestrated single-address-
//! space solve, whose comm columns are *modeled* BSP quantities.
//! `--transport threads` additionally re-runs each solve with every rank as
//! a real OS thread exchanging messages over the in-process transport, and
//! prints the *measured* traffic (messages, bytes, per-phase wait time)
//! under the modeled row — the solution is verified bitwise identical to
//! the sim path. Note each ladder point spawns P real threads, so this mode
//! is only sensible for the small ladder points.
//!
//! The full study with all series lives in `crates/bench/src/bin/`.

use prometheus_repro::fem::bc::constrain_system;
use prometheus_repro::krylov::PcgOptions;
use prometheus_repro::mesh::SpheresParams;
use prometheus_repro::solver::{solve_threads, MgOptions, Prometheus, PrometheusOptions};
use std::time::Instant;

/// Rank ladder mirroring the paper's processor counts at ~8.5k dof/rank.
fn ranks_for(k: usize) -> usize {
    [2, 15, 50, 120, 240, 400, 640, 960][k - 1]
}

fn main() {
    let mut max_k = 2usize;
    let mut threads_mode = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--transport" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("sim") => threads_mode = false,
                    Some("threads") => threads_mode = true,
                    other => {
                        eprintln!("--transport must be 'sim' or 'threads', got {other:?}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            s => {
                match s.parse() {
                    Ok(k) => max_k = k,
                    Err(_) => {
                        eprintln!("unknown argument {s}");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
        }
    }

    println!(
        "{:>2} {:>5} {:>10} {:>6} {:>8} {:>10} {:>12} {:>10} {:>8}",
        "k", "P", "dof", "iters", "levels", "wall(s)", "Mflop/s(mdl)", "e_c", "balance"
    );

    let mut base_rate_per_rank: Option<f64> = None;
    for k in 1..=max_k {
        let p = ranks_for(k);
        let params = SpheresParams::ladder(k);
        let mut problem = prometheus_repro::fem::spheres_problem(&params);
        let mesh = problem.fem.mesh.clone();
        let ndof = mesh.num_dof();

        let u = vec![0.0; ndof];
        let (kmat, r) = problem.fem.assemble(&u);
        let bcs = problem.bcs_for_step(1, 10);
        let fixed: Vec<(u32, f64)> = bcs.iter().map(|b| (b.dof, b.value)).collect();
        let (kc, rhs) = constrain_system(&kmat, &r, &fixed);

        let wall = Instant::now();
        let opts = PrometheusOptions {
            nranks: p,
            mg: MgOptions {
                coarse_dof_threshold: 600,
                ..Default::default()
            },
            max_iters: 300,
            ..Default::default()
        };
        let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
        let levels = solver.level_sizes().len();
        // The paper's first linear solve: rtol = 1e-4.
        let (x_sim, res) = solver.solve(&rhs, None, 1e-4);
        let wall = wall.elapsed().as_secs_f64();

        // Run the threaded-rank solve before `finish()` consumes the
        // solver (and with it the hierarchy the ranks are extracted from).
        let spmd = threads_mode.then(|| {
            let t0 = Instant::now();
            let outcome = solve_threads(
                &solver.mg,
                &rhs,
                PcgOptions {
                    rtol: 1e-4,
                    max_iters: 300,
                    ..Default::default()
                },
            )
            .expect("threaded-rank solve");
            (outcome, t0.elapsed().as_secs_f64())
        });

        let phases = solver.finish();
        let solve = &phases["solve"];
        let rate = solve.modeled_flop_rate();
        let per_rank = rate / p as f64;
        let e_c = match base_rate_per_rank {
            None => {
                base_rate_per_rank = Some(per_rank);
                1.0
            }
            Some(base) => per_rank / base,
        };
        println!(
            "{:>2} {:>5} {:>10} {:>6} {:>8} {:>10.2} {:>12.1} {:>10.2} {:>8.2}",
            k,
            p,
            ndof,
            res.iterations,
            levels,
            wall,
            rate / 1e6,
            e_c,
            solve.load_balance()
        );

        if let Some((spmd, thr_wall)) = spmd {
            // Same solve, but every rank is a real thread over the
            // in-process transport: measured traffic, not the BSP model.
            let bitwise = spmd.result.iterations == res.iterations
                && spmd
                    .x
                    .iter()
                    .zip(&x_sim)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            let msgs: u64 = spmd.stats.iter().map(|s| s.msgs).sum();
            let bytes: u64 = spmd.stats.iter().map(|s| s.bytes).sum();
            let allreduces = spmd.stats.first().map(|s| s.allreduces).unwrap_or(0);
            let wait_max = spmd.stats.iter().map(|s| s.wait_s).fold(0.0_f64, f64::max);
            let w0 = spmd.waits[0];
            println!(
                "   threads({p}): wall {thr_wall:.2}s  msgs {msgs}  bytes {bytes}  \
                 allreduces {allreduces}  max wait {wait_max:.3}s"
            );
            println!(
                "                rank-0 wait: halo {:.3}s  allreduce {:.3}s  coarse {:.3}s  \
                 [{}]",
                w0.halo_s,
                w0.allreduce_s,
                w0.coarse_s,
                if bitwise {
                    "bitwise == sim"
                } else {
                    "MISMATCH vs sim"
                }
            );
            assert!(bitwise, "threaded solve diverged from the sim solve");
        }
    }
    println!("\n(e_c = modeled per-rank flop rate relative to the first ladder point;");
    println!(" compare with the paper's ~29 -> 21 iterations and ~60% solve efficiency at P=960)");
}
