//! The integration story the paper leads with: "scalable algorithms ...
//! that can be easily integrated with existing finite element codes (ie,
//! requiring only data that is easily available in most finite element
//! applications)". This example plays the existing FE code: it writes a
//! mesh to the flat input file, then the solver side reads it back
//! (slice-wise, as Athena would), assembles, solves, and exports VTK.
//!
//! Run with: `cargo run --release --example external_mesh`

use prometheus_repro::fem::{bc::constrain_system, FemProblem, LinearElastic};
use prometheus_repro::mesh::flatfile::{read_flat_slice, write_flat};
use prometheus_repro::mesh::generators::l_bracket;
use prometheus_repro::mesh::{to_vtk, Mesh};
use prometheus_repro::solver::{MgOptions, Prometheus, PrometheusOptions};
use std::sync::Arc;

fn main() {
    // --- The "application" side: some FE code produces a mesh file. ---
    let mesh_out = l_bracket(10);
    let path = std::env::temp_dir().join("external_bracket.mesh");
    write_flat(&mesh_out, &path).expect("write mesh file");
    println!(
        "application wrote {} ({} vertices, {} hexes)",
        path.display(),
        mesh_out.num_vertices(),
        mesh_out.num_elements()
    );

    // --- The solver side: parallel read (4 ranks), assemble, solve. ---
    let nranks = 4;
    let mut coords = Vec::new();
    let mut elem_verts = Vec::new();
    let mut materials = Vec::new();
    let mut kind = None;
    for r in 0..nranks {
        let s = read_flat_slice(&path, r, nranks).expect("read slice");
        println!(
            "  rank {r} read vertices [{}..{}) and {} elements",
            s.vertex_start,
            s.vertex_start + s.coords.len(),
            s.materials.len()
        );
        kind = Some(s.header.kind);
        coords.extend(s.coords);
        elem_verts.extend(s.elem_verts);
        materials.extend(s.materials);
    }
    std::fs::remove_file(&path).ok();
    let mesh = Mesh::new(coords, kind.unwrap(), elem_verts, materials);

    let ndof = mesh.num_dof();
    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(70.0, 0.33))],
    );
    let (k, _) = fem.assemble(&vec![0.0; ndof]);
    let mut fixed = Vec::new();
    let mut f = vec![0.0; ndof];
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        if (p.z - 1.0).abs() < 1e-12 {
            f[3 * v] = 0.05; // shear the standing leg's top
        }
    }
    let (kc, rhs) = constrain_system(&k, &f, &fixed);
    let b: Vec<f64> = rhs.iter().map(|v| -v).collect();

    let opts = PrometheusOptions {
        nranks,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
    println!("hierarchy: {:?}", solver.level_sizes());
    let (x, res) = solver.solve(&b, None, 1e-8);
    println!(
        "solved in {} iterations (converged: {})",
        res.iterations, res.converged
    );

    let vtk_path = "target/external_bracket.vtk";
    std::fs::create_dir_all("target").ok();
    std::fs::write(vtk_path, to_vtk(&mesh, Some(("displacement", &x)))).expect("write vtk");
    println!("wrote {vtk_path} (open in ParaView, warp by displacement)");
}
