//! Run the spheres crush and export a VTK time series (mesh, materials,
//! displacement field) for ParaView — the deformed configurations behind
//! the paper's Figure 9 (right).
//!
//! Run with: `cargo run --release --example crush_visualization [steps]`
//! Output: `target/crush_step_<k>.vtk`.

use prometheus_repro::fem::{NewtonDriver, NewtonOptions};
use prometheus_repro::mesh::{to_vtk, SpheresParams};
use prometheus_repro::solver::{MgOptions, Prometheus, PrometheusOptions};

fn main() {
    let nsteps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let params = SpheresParams::tiny();
    let mut problem = prometheus_repro::fem::spheres_problem(&params);
    let mesh = problem.fem.mesh.clone();
    let ndof = mesh.num_dof();
    println!("crushing {} dof octant over {nsteps} steps...", ndof);

    let opts = PrometheusOptions {
        nranks: 2,
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut u = vec![0.0; ndof];
    let driver = NewtonDriver::new(NewtonOptions::default());
    let mut solver: Option<Prometheus> = None;

    std::fs::create_dir_all("target").ok();
    let path0 = "target/crush_step_0.vtk";
    std::fs::write(path0, to_vtk(&mesh, Some(("displacement", &u)))).expect("write vtk");
    println!("  wrote {path0}");

    for step in 1..=nsteps {
        let bcs = problem.bcs_for_step(step, nsteps);
        let stats = {
            let mut solve = |k: &pmg_sparse::CsrMatrix, rhs: &[f64], rtol: f64| {
                match solver.as_mut() {
                    None => solver = Some(Prometheus::from_mesh(&mesh, k, opts)),
                    Some(s) => s.update_matrix(k),
                }
                let (x, r) = solver.as_mut().unwrap().solve(rhs, None, rtol);
                (x, r.iterations)
            };
            driver.solve_step(&mut problem.fem, &mut u, &bcs, &mut solve)
        };
        let path = format!("target/crush_step_{step}.vtk");
        std::fs::write(&path, to_vtk(&mesh, Some(("displacement", &u)))).expect("write vtk");
        println!(
            "  step {step}: {} Newton iters, {:.1}% plastic -> {path}",
            stats.newton_iters,
            100.0 * problem.hard_yielded_fraction()
        );
    }
    println!("open the series in ParaView and apply 'Warp By Vector' on displacement");
}
