//! Quickstart: solve a 3D elasticity problem with the automatic
//! unstructured multigrid solver.
//!
//! The user-side contract matches the paper's design goal: provide only
//! the fine grid (mesh + assembled operator); the solver builds every
//! coarse grid itself (MIS coarsening -> Delaunay remesh -> Galerkin
//! operators) and solves with FMG-preconditioned CG.
//!
//! Run with: `cargo run --release --example quickstart`

use prometheus_repro::fem::{bc::constrain_system, FemProblem, LinearElastic};
use prometheus_repro::geometry::Vec3;
use prometheus_repro::mesh::generators::block;
use prometheus_repro::solver::{MgOptions, Prometheus, PrometheusOptions};
use std::sync::Arc;

fn main() {
    // 1. A finite element problem: a 10x10x10 hex block of steel-ish
    //    material, clamped at the bottom, sheared at the top.
    let n = 10;
    let mesh = block(n, n, n, Vec3::splat(1.0), |_| 0);
    println!(
        "fine grid: {} vertices, {} hex elements, {} dof",
        mesh.num_vertices(),
        mesh.num_elements(),
        mesh.num_dof()
    );

    let mut fem = FemProblem::new(
        mesh.clone(),
        vec![Arc::new(LinearElastic::from_e_nu(200.0, 0.3))],
    );
    let (k, _) = fem.assemble(&vec![0.0; mesh.num_dof()]);

    // 2. Boundary conditions: clamp z=0, apply a surface load at z=1.
    let mut fixed = Vec::new();
    let mut f = vec![0.0; mesh.num_dof()];
    for (v, p) in mesh.coords.iter().enumerate() {
        if p.z == 0.0 {
            for c in 0..3 {
                fixed.push((3 * v as u32 + c, 0.0));
            }
        }
        if p.z == 1.0 {
            f[3 * v] = 1.0; // shear in x
        }
    }
    let (kc, rhs) = constrain_system(&k, &f, &fixed);
    let b: Vec<f64> = rhs.iter().map(|v| -v).collect();

    // 3. Hand the mesh and operator to the solver; it does the rest.
    let opts = PrometheusOptions {
        nranks: 4, // simulated parallel machine
        mg: MgOptions {
            coarse_dof_threshold: 400,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut solver = Prometheus::from_mesh(&mesh, &kc, opts);
    println!(
        "multigrid hierarchy (vertices per level): {:?}",
        solver.level_sizes()
    );

    let (x, res) = solver.solve(&b, None, 1e-8);
    println!(
        "solved in {} FMG-PCG iterations (relative residual {:.2e})",
        res.iterations, res.rel_residual
    );

    // 4. Verify and report.
    let mut ax = vec![0.0; b.len()];
    kc.spmv(&x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!("true residual check: {:.2e}", err / bn);

    let tip = mesh.vertices_where(|p| p.z == 1.0 && p.x == 1.0 && p.y == 1.0)[0] as usize;
    println!("tip displacement: ux = {:.4e}", x[3 * tip]);

    let phases = solver.finish();
    for (name, stats) in &phases {
        if stats.total_flops() == 0 {
            continue;
        }
        println!(
            "phase {:<14} flops {:>12}  modeled {:>8.4}s  load balance {:.2}",
            name,
            stats.total_flops(),
            stats.modeled_time,
            stats.load_balance()
        );
    }
}
