//! The paper's §7 model problem: a sphere of seventeen alternating hard
//! (J2 plasticity) and soft (Neo-Hookean) shells embedded in a soft cube —
//! "a spherical steel-belted radial inside a rubber cube" — crushed from
//! the top in displacement-controlled steps, solved by full Newton with
//! FMG-preconditioned CG at every iteration.
//!
//! Run with: `cargo run --release --example sphere_in_cube [refinement] [steps]`
//! (refinement 1 is the paper ladder's base problem; default here is a
//! reduced mesh so the example finishes in seconds).

use prometheus_repro::fem::{NewtonDriver, NewtonOptions};
use prometheus_repro::mesh::SpheresParams;
use prometheus_repro::solver::{MgOptions, Prometheus, PrometheusOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let refinement: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let nsteps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let params = if refinement == 0 {
        SpheresParams::tiny()
    } else {
        SpheresParams::ladder(refinement)
    };
    let mut problem = prometheus_repro::fem::spheres_problem(&params);
    let mesh = problem.fem.mesh.clone();
    println!("=== concentric spheres problem (paper §7, Table 1 materials) ===");
    println!(
        "mesh: {} vertices / {} hexes / {} dof ({} shell layers)",
        mesh.num_vertices(),
        mesh.num_elements(),
        mesh.num_dof(),
        params.n_layers
    );
    println!(
        "materials: soft E=1e-4 nu=0.49 (Neo-Hookean) | hard E=1 nu=0.3 sigma_y=1e-3 H=0.002E (J2)"
    );

    let ndof = mesh.num_dof();
    let mut u = vec![0.0; ndof];
    let driver = NewtonDriver::new(NewtonOptions::default());

    // The linear solver: build the hierarchy once (the paper's amortized
    // "mesh setup"), then refresh only the operators per Newton iteration
    // (the "matrix setup" phase).
    let opts = PrometheusOptions {
        nranks: 4,
        mg: MgOptions {
            coarse_dof_threshold: 500,
            ..Default::default()
        },
        max_iters: 300,
        ..Default::default()
    };
    let mut solver: Option<Prometheus> = None;

    println!(
        "{:>4} {:>8} {:>14} {:>12} {:>10}",
        "step", "newton", "linear iters", "energy", "%plastic"
    );
    let mut total_linear = 0usize;
    for step in 1..=nsteps {
        let bcs = problem.bcs_for_step(step, nsteps);
        let mut linear_iters: Vec<usize> = Vec::new();
        let stats = {
            let mut solve = |k: &pmg_sparse::CsrMatrix, rhs: &[f64], rtol: f64| {
                match solver.as_mut() {
                    None => solver = Some(Prometheus::from_mesh(&mesh, k, opts)),
                    Some(s) => s.update_matrix(k),
                }
                let (x, res) = solver.as_mut().unwrap().solve(rhs, None, rtol);
                linear_iters.push(res.iterations);
                (x, res.iterations)
            };
            driver.solve_step(&mut problem.fem, &mut u, &bcs, &mut solve)
        };
        let yielded = problem.hard_yielded_fraction();
        total_linear += stats.linear_iters.iter().sum::<usize>();
        println!(
            "{:>4} {:>8} {:>14} {:>12.3e} {:>9.1}%",
            step,
            stats.newton_iters,
            format!("{:?}", stats.linear_iters),
            stats.energies.last().copied().unwrap_or(0.0),
            100.0 * yielded
        );
        if !stats.converged {
            println!(
                "  (step {step} did not fully converge in {} iterations)",
                stats.newton_iters
            );
        }
    }
    println!("total linear iterations across the load program: {total_linear}");
    let down = problem
        .top_dofs
        .first()
        .map(|&d| u[d as usize])
        .unwrap_or(0.0);
    println!("final top-surface displacement: {down:.3}");
}
