//! `pmg_bench_client` — driver and correctness harness for the
//! `pmg_serve` daemon.
//!
//! Two modes:
//!
//! - `--smoke`: the CI gate. Fires 8 concurrent requests across two
//!   fingerprints at a running daemon, checks every answer **bitwise**
//!   against offline in-process solves of the same systems (the same
//!   construction path the `spheres_rank` parity artifacts pin), checks
//!   the warm cache was hit, then requests shutdown and confirms the
//!   daemon drains. Exits nonzero on any failure.
//! - default (bench): spawns an in-process daemon (or targets a running
//!   one via `--connect-*`), warms the hierarchy, then sweeps offered
//!   concurrency 1/2/4/8/16 recording a saturation curve — client-side
//!   latency percentiles, throughput, busy rejections, the batch-size
//!   histogram — into `BENCH_PR9.json` (override `PMG_BENCH_OUT`).
//!   `PMG_BENCH_ASSERT=1` enforces the warm-cache floor: every
//!   post-warm request must report `setup_s == 0` (hits skip setup) and
//!   every solution must match the offline bits.
//!
//! ```text
//! pmg_bench_client [--smoke] [--connect-unix PATH | --connect-tcp ADDR]
//!                  [--requests N]
//! ```

use pmg_serve::{serve, Client, ClientError, ProblemSpec, ServeConfig, SolveReply};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

enum Target {
    Unix(String),
    Tcp(String),
}

fn connect(target: &Target) -> std::io::Result<Client> {
    match target {
        Target::Unix(p) => Client::connect_unix(p),
        Target::Tcp(a) => Client::connect_tcp(a),
    }
}

/// Solve with bounded busy-retry; returns the reply and how many times
/// admission control pushed back.
fn solve_retry(
    client: &mut Client,
    spec: &ProblemSpec,
    rtol: f64,
    id: &str,
) -> Result<(SolveReply, u64), ClientError> {
    let mut busy = 0;
    loop {
        match client.solve_spec(spec, None, rtol, id) {
            Ok(r) => return Ok((r, busy)),
            Err(ClientError::Busy) => {
                busy += 1;
                if busy > 1000 {
                    return Err(ClientError::Busy);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The offline oracle: the same system solved in-process through the
/// transport-parity construction (`parity_solver` + `parity_options`),
/// which the repo's consistency tests pin bitwise against the
/// `spheres_rank` socket artifacts. Daemon answers must equal these
/// bits exactly.
fn offline_bits(k: usize, nranks: usize, rtol: f64) -> Vec<f64> {
    let sys = pmg_bench::spheres_first_solve(k);
    let mut solver = pmg_bench::parity_solver(&sys, pmg_bench::parity_options(nranks));
    let (x, res) = solver.solve(&sys.rhs, None, rtol);
    assert!(res.converged, "offline oracle solve diverged");
    x
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// CI smoke: 8 concurrent requests, two fingerprints, bitwise vs
/// offline, warm-cache hit, graceful drain.
fn smoke(target: &Target) {
    let rtol = pmg_bench::PARITY_RTOL;
    let spec_a = ProblemSpec {
        name: "spheres".into(),
        k: 0,
        nranks: 2,
    };
    let spec_b = ProblemSpec {
        name: "spheres".into(),
        k: 0,
        nranks: 3,
    };
    eprintln!("smoke: computing offline oracle solves");
    let oracle_a = offline_bits(0, 2, rtol);
    let oracle_b = offline_bits(0, 3, rtol);

    // Warm A so the concurrent wave sees at least one guaranteed hit.
    let (fp_a, _, setup_s) = connect(target)
        .expect("connect for warm")
        .warm(&spec_a)
        .expect("warm spec A");
    eprintln!(
        "smoke: warmed {} in {setup_s:.3}s",
        prometheus::fingerprint_hex(fp_a)
    );

    // 8 concurrent requests: 5 on A (one by fingerprint), 3 on B.
    let replies: Vec<(usize, SolveReply)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (spec_a, spec_b) = (&spec_a, &spec_b);
                let target = &target;
                scope.spawn(move || {
                    let mut c = connect(target).expect("connect worker");
                    let id = format!("smoke-{i}");
                    let reply = if i == 4 {
                        // One request addresses the warm hierarchy by
                        // fingerprint instead of by spec.
                        c.solve_fingerprint(fp_a, None, rtol, &id)
                            .expect("fingerprint solve")
                    } else {
                        let spec = if i < 5 { spec_a } else { spec_b };
                        solve_retry(&mut c, spec, rtol, &id).expect("solve").0
                    };
                    (i, reply)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut failures = 0;
    for (i, r) in &replies {
        let (oracle, name) = if *i < 5 {
            (&oracle_a, "A")
        } else {
            (&oracle_b, "B")
        };
        if !r.converged {
            eprintln!("FAIL smoke-{i}: did not converge");
            failures += 1;
        }
        if bits_equal(&r.x, oracle) {
            eprintln!(
                "ok   smoke-{i} [{name}] {} iters, batched {}, cache {}, bitwise == offline",
                r.iterations,
                r.batched,
                if r.cache_hit { "hit" } else { "miss" }
            );
        } else {
            eprintln!("FAIL smoke-{i} [{name}]: solution differs from offline bits");
            failures += 1;
        }
        if r.cache_hit && r.setup_s != 0.0 {
            eprintln!("FAIL smoke-{i}: cache hit but setup_s = {}", r.setup_s);
            failures += 1;
        }
    }

    let stats = connect(target)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    eprintln!(
        "smoke: stats requests={} batched={} cache_hit={} cache_miss={} rejected={}",
        stats.requests, stats.batched, stats.cache_hit, stats.cache_miss, stats.rejected
    );
    if stats.cache_hit == 0 {
        eprintln!("FAIL smoke: expected serve/cache_hit > 0 (hierarchy was pre-warmed)");
        failures += 1;
    }
    if stats.requests < 8 {
        eprintln!(
            "FAIL smoke: daemon counted {} requests, expected >= 8",
            stats.requests
        );
        failures += 1;
    }

    // Graceful drain: shutdown must be acknowledged and the listener
    // must actually go away.
    connect(target)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown ack");
    let gone = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(100));
        connect(target).is_err()
    });
    if !gone {
        eprintln!("FAIL smoke: daemon still accepting connections 10s after shutdown");
        failures += 1;
    } else {
        eprintln!("smoke: daemon drained and closed its listeners");
    }

    if failures > 0 {
        eprintln!("smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("smoke: PASS (8 requests, 2 fingerprints, bitwise == offline, graceful drain)");
}

struct SweepPoint {
    concurrency: usize,
    requests: usize,
    elapsed_s: f64,
    p50_s: f64,
    p90_s: f64,
    p99_s: f64,
    busy: u64,
    bitwise_ok: bool,
    max_hit_setup_s: f64,
}

/// Saturation bench: closed-loop clients at increasing concurrency.
fn bench(target: &Target, requests_per_level: usize) {
    let rtol = pmg_bench::PARITY_RTOL;
    let spec = ProblemSpec {
        name: "spheres".into(),
        k: 0,
        nranks: 2,
    };
    eprintln!("bench: computing offline oracle");
    let oracle = offline_bits(0, 2, rtol);

    let (fp, already_warm, setup_miss_s) = connect(target)
        .expect("connect for warm")
        .warm(&spec)
        .expect("warm");
    eprintln!(
        "bench: hierarchy {} {} in {setup_miss_s:.3}s",
        prometheus::fingerprint_hex(fp),
        if already_warm {
            "already warm"
        } else {
            "built"
        }
    );
    // A second warm must hit with zero setup — the warm-cache floor.
    let (_, hit, warm_hit_setup_s) = connect(target)
        .expect("connect for rewarm")
        .warm(&spec)
        .expect("rewarm");
    assert!(hit, "second warm of the same spec missed the cache");

    let mut batch_histogram: BTreeMap<usize, u64> = BTreeMap::new();
    let mut points = Vec::new();
    for concurrency in [1usize, 2, 4, 8, 16] {
        let t0 = Instant::now();
        let per_thread = requests_per_level.div_ceil(concurrency);
        let results: Vec<(Vec<f64>, Vec<SolveReply>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|t| {
                    let spec = &spec;
                    let oracle = &oracle;
                    let target = &target;
                    scope.spawn(move || {
                        let mut c = connect(target).expect("connect bench worker");
                        let mut lats = Vec::new();
                        let mut replies = Vec::new();
                        let mut busy = 0;
                        for i in 0..per_thread {
                            let id = format!("bench-c{concurrency}-t{t}-{i}");
                            let rt0 = Instant::now();
                            let (r, b) = solve_retry(&mut c, spec, rtol, &id).expect("solve");
                            lats.push(rt0.elapsed().as_secs_f64());
                            busy += b;
                            assert!(
                                bits_equal(&r.x, oracle),
                                "{id}: daemon bits differ from offline"
                            );
                            replies.push(r);
                        }
                        (lats, replies, busy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed_s = t0.elapsed().as_secs_f64();

        let mut lats = Vec::new();
        let mut busy = 0;
        let mut bitwise_ok = true;
        let mut max_hit_setup_s: f64 = 0.0;
        for (l, replies, b) in &results {
            lats.extend_from_slice(l);
            busy += b;
            for r in replies {
                *batch_histogram.entry(r.batched).or_insert(0) += 1;
                bitwise_ok &= r.converged;
                if r.cache_hit {
                    max_hit_setup_s = max_hit_setup_s.max(r.setup_s);
                }
            }
        }
        let pct = |q: f64| pmg_telemetry::stats::percentile(&lats, q).unwrap_or(0.0);
        let point = SweepPoint {
            concurrency,
            requests: lats.len(),
            elapsed_s,
            p50_s: pct(0.50),
            p90_s: pct(0.90),
            p99_s: pct(0.99),
            busy,
            bitwise_ok,
            max_hit_setup_s,
        };
        eprintln!(
            "bench: c={concurrency:<2} {} reqs in {elapsed_s:.3}s ({:.1} rps)  \
             p50 {:.4}s  p99 {:.4}s  busy {busy}",
            point.requests,
            point.requests as f64 / elapsed_s,
            point.p50_s,
            point.p99_s,
        );
        points.push(point);
    }

    let stats = connect(target)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    let hit_rate = if stats.cache_hit + stats.cache_miss > 0 {
        stats.cache_hit as f64 / (stats.cache_hit + stats.cache_miss) as f64
    } else {
        0.0
    };

    let out_path = std::env::var("PMG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut j = String::new();
    writeln!(j, "{{").unwrap();
    writeln!(j, "  \"meta\": {{").unwrap();
    writeln!(j, "    \"k\": 0,").unwrap();
    writeln!(j, "    \"nranks\": 2,").unwrap();
    writeln!(j, "    \"rtol\": {rtol:e},").unwrap();
    writeln!(j, "    \"host_cores\": {host_cores},").unwrap();
    writeln!(j, "    \"git_sha\": \"{}\"", git_sha()).unwrap();
    writeln!(j, "  }},").unwrap();
    writeln!(j, "  \"serve\": {{").unwrap();
    writeln!(j, "    \"setup_miss_s\": {setup_miss_s:.6},").unwrap();
    writeln!(j, "    \"warm_hit_setup_s\": {warm_hit_setup_s:.6},").unwrap();
    writeln!(j, "    \"saturation\": [").unwrap();
    for (i, p) in points.iter().enumerate() {
        writeln!(j, "      {{").unwrap();
        writeln!(j, "        \"concurrency\": {},", p.concurrency).unwrap();
        writeln!(j, "        \"requests\": {},", p.requests).unwrap();
        writeln!(j, "        \"elapsed_s\": {:.6},", p.elapsed_s).unwrap();
        writeln!(
            j,
            "        \"throughput_rps\": {:.3},",
            p.requests as f64 / p.elapsed_s
        )
        .unwrap();
        writeln!(j, "        \"p50_s\": {:.6},", p.p50_s).unwrap();
        writeln!(j, "        \"p90_s\": {:.6},", p.p90_s).unwrap();
        writeln!(j, "        \"p99_s\": {:.6},", p.p99_s).unwrap();
        writeln!(j, "        \"busy\": {},", p.busy).unwrap();
        writeln!(j, "        \"max_hit_setup_s\": {:.6}", p.max_hit_setup_s).unwrap();
        writeln!(j, "      }}{}", if i + 1 < points.len() { "," } else { "" }).unwrap();
    }
    writeln!(j, "    ],").unwrap();
    writeln!(j, "    \"cache\": {{").unwrap();
    writeln!(j, "      \"hit\": {},", stats.cache_hit).unwrap();
    writeln!(j, "      \"miss\": {},", stats.cache_miss).unwrap();
    writeln!(j, "      \"evict\": {},", stats.cache_evict).unwrap();
    writeln!(j, "      \"hit_rate\": {hit_rate:.4}").unwrap();
    writeln!(j, "    }},").unwrap();
    writeln!(j, "    \"batch_histogram\": {{").unwrap();
    let n_hist = batch_histogram.len();
    for (i, (size, count)) in batch_histogram.iter().enumerate() {
        writeln!(
            j,
            "      \"{size}\": {count}{}",
            if i + 1 < n_hist { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(j, "    }},").unwrap();
    let bitwise_all = points.iter().all(|p| p.bitwise_ok);
    writeln!(j, "    \"bitwise_vs_offline\": {bitwise_all},").unwrap();
    writeln!(j, "    \"rejected\": {},", stats.rejected).unwrap();
    writeln!(j, "    \"batched\": {}", stats.batched).unwrap();
    writeln!(j, "  }}").unwrap();
    writeln!(j, "}}").unwrap();
    std::fs::write(&out_path, &j).expect("write bench output");
    println!(
        "bench: cache hit rate {hit_rate:.2}, {} requests batched, wrote {out_path}",
        stats.batched
    );

    if std::env::var("PMG_BENCH_ASSERT").as_deref() == Ok("1") {
        assert!(
            bitwise_all,
            "a daemon answer differed from the offline bits"
        );
        let max_hit_setup = points.iter().fold(0.0_f64, |m, p| m.max(p.max_hit_setup_s));
        assert!(
            max_hit_setup == 0.0 && warm_hit_setup_s == 0.0,
            "warm-cache requests must skip setup entirely (saw setup_s up to \
             {max_hit_setup}, warm hit {warm_hit_setup_s})"
        );
        assert!(
            hit_rate >= 0.9,
            "single-spec sweep should hit the warm cache almost always, got {hit_rate:.2}"
        );
    }
}

fn main() {
    let mut smoke_mode = false;
    let mut target: Option<Target> = None;
    let mut requests = 24usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match flag.as_str() {
            "--smoke" => smoke_mode = true,
            "--connect-unix" => target = Some(Target::Unix(value())),
            "--connect-tcp" => target = Some(Target::Tcp(value())),
            "--requests" => requests = value().parse().expect("--requests N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // Without --connect-*, run an in-process daemon on a private socket.
    let (target, local) = match target {
        Some(t) => (t, None),
        None => {
            let path = std::env::temp_dir().join(format!("pmg-serve-{}.sock", std::process::id()));
            let config = ServeConfig {
                unix_path: Some(path.clone()),
                ..Default::default()
            };
            let handle = serve(config).expect("start in-process daemon");
            (
                Target::Unix(path.to_string_lossy().into_owned()),
                Some(handle),
            )
        }
    };

    if smoke_mode {
        smoke(&target);
    } else {
        bench(&target, requests);
        if local.is_some() {
            // Shut the private daemon down so wait() below returns.
            let _ = connect(&target).and_then(|mut c| {
                c.shutdown()
                    .map_err(|e| std::io::Error::other(e.to_string()))
            });
        }
    }
    if let Some(handle) = local {
        handle.wait();
    }
}
