//! `pmg-serve` — the persistent solver daemon.
//!
//! Listens on a Unix-domain socket and/or TCP, keeps built multigrid
//! hierarchies warm in an LRU byte-budgeted cache, and coalesces
//! concurrent same-hierarchy requests into blocked multi-RHS solves.
//! Protocol and semantics: `docs/server.md`.
//!
//! ```text
//! pmg_serve --unix /tmp/pmg.sock [--tcp 127.0.0.1:7070]
//!           [--queue-cap 64] [--max-batch 8] [--linger-ms 2]
//!           [--cache-mb 256] [--hold-ms 0]
//! ```
//!
//! Telemetry rides the usual env switches: `PMG_TELEMETRY=table|json`
//! (+ `PMG_TELEMETRY_FILE`) emits a report — including the `serve/*`
//! counters and latency-percentile gauges — when the daemon drains and
//! exits.

use pmg_serve::{serve, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pmg_serve [--unix PATH] [--tcp ADDR] [--queue-cap N] \
         [--max-batch N] [--linger-ms N] [--cache-mb N] [--hold-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--unix" => config.unix_path = Some(value().into()),
            "--tcp" => config.tcp_addr = Some(value()),
            "--queue-cap" => config.queue_cap = parse(&value()),
            "--max-batch" => config.max_batch = parse(&value()),
            "--linger-ms" => config.linger_ms = parse(&value()),
            "--cache-mb" => config.cache_bytes = parse::<usize>(&value()) << 20,
            "--hold-ms" => config.hold_ms = parse(&value()),
            _ => usage(),
        }
    }
    if config.unix_path.is_none() && config.tcp_addr.is_none() {
        usage();
    }

    let mut sink = pmg_bench::telemetry_from_env();

    let handle = match serve(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("pmg_serve: {e}");
            std::process::exit(1);
        }
    };
    if let Some(p) = &config.unix_path {
        println!("listening unix {}", p.display());
    }
    if let Some(a) = handle.tcp_addr() {
        println!("listening tcp {a}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Blocks until a shutdown request drains the daemon.
    handle.wait();

    let report = pmg_telemetry::snapshot();
    sink.emit(&report).expect("emit telemetry report");
    println!("drained");
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| usage())
}
