//! One SPMD rank of the multi-process spheres parity solve.
//!
//! Spawned `n` at a time by `pmg-launch` (which sets `PMG_COMM_RANK`,
//! `PMG_COMM_SIZE`, and `PMG_COMM_DIR`), each process builds the tiny
//! spheres first-solve system and its multigrid hierarchy deterministically,
//! then solves over the Unix-domain-socket transport. By default the setup
//! is replicated (each process runs the full in-process build and extracts
//! its rank's share); `PMG_DIST_SETUP=1` instead runs the distributed setup
//! pipeline — transport MIS, face-ID merge, per-rank Galerkin rows, and the
//! ghost-list collectives — which is bitwise-identical by construction.
//! Rank 0 gathers the solution and, when `--out PATH` (or `PMG_OUT`) is
//! given, writes the iteration count, convergence flag, and the solution /
//! residual-history bit patterns for the parity test to compare against the
//! simulated solve.
//!
//! `PMG_OVERLAP=0` disables the communication/computation overlap (and the
//! fused PCG allreduce) for A/B wait-time measurements; the solve is
//! bitwise identical either way. The rank-0 artifact records the overlap
//! accounting on an `overlap <interior_rows> <boundary_rows> <hidden_s>`
//! line.
//!
//! Exits 0 iff the solve converged.

use pmg_comm::{bytes_to_f64s, f64s_to_bytes, SocketTransport, Transport};
use pmg_solver::PcgOptions;
use prometheus::{spmd_pcg, RankHierarchy};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out_path = std::env::var("PMG_OUT").ok();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("spheres_rank: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut t = SocketTransport::connect_from_env()
        .expect("PMG_COMM_RANK/SIZE/DIR must be set (run under pmg-launch)");

    let overlap = std::env::var("PMG_OVERLAP")
        .map(|v| v != "0")
        .unwrap_or(true);

    let dist_setup = std::env::var("PMG_DIST_SETUP")
        .map(|v| v == "1")
        .unwrap_or(false);

    let shard_ingest = std::env::var("PMG_SHARD_INGEST")
        .map(|v| v == "1")
        .unwrap_or(false);

    let sys = pmg_bench::spheres_first_solve(0);
    let opts = pmg_bench::parity_options(t.size());
    let solve_opts = PcgOptions {
        rtol: pmg_bench::PARITY_RTOL,
        max_iters: 200,
        ..Default::default()
    };

    let (layout, res, waits, xl, solve_s) = if shard_ingest {
        // Partition-at-ingest: rank 0 plans the seeds (RCB partition,
        // owned level-0 restriction rows, replicated coarse geometry) and
        // scatters each rank its share; the hierarchy then grows through
        // `build_from_shards` — no coarse value allgather, direct factor
        // on rank 0 only. Every process still *builds* the global spheres
        // system here (this harness checks parity, not footprint — the
        // counting-allocator test owns the memory claim), but the setup
        // consumes only this rank's owned rows of it.
        let nranks = t.size();
        let rank = t.rank();
        let plan = if rank == 0 {
            let graph = sys.mesh.vertex_graph();
            let classes = prometheus::classify_mesh_parallel(&sys.mesh, opts.face_tol, nranks);
            let part = pmg_partition::recursive_coordinate_bisection(&sys.mesh.coords, nranks);
            let shards = pmg_mesh::shard_mesh(&sys.mesh, &part, nranks);
            let elem_counts: Vec<u32> = shards
                .iter()
                .map(|s| s.mesh.num_elements() as u32)
                .collect();
            Some(prometheus::plan_ingest_with_part(
                &sys.mesh.coords,
                &graph,
                &classes,
                &elem_counts,
                part,
                nranks,
                &opts.mg,
            ))
        } else {
            None
        };
        let seed = prometheus::scatter_seeds(&mut t, plan.as_ref()).expect("seed scatter");
        let vlayout = pmg_parallel::Layout::from_part(seed.part.clone(), nranks);
        let layout = pmg_parallel::Layout::expand_dofs(&vlayout, opts.mg.dofs_per_vertex);
        let a_owned = sys.matrix.extract_rows(layout.owned(rank));
        let setup = RankHierarchy::build_from_shards(&mut t, &seed, &a_owned, opts.mg)
            .expect("sharded setup over sockets");
        let layout = setup.fine_layout().clone();
        let mut h = setup.rank_hierarchy();
        h.overlap = overlap;

        let bl: Vec<f64> = layout
            .owned(rank)
            .iter()
            .map(|&g| sys.rhs[g as usize])
            .collect();
        let mut xl = vec![0.0; bl.len()];
        let solve_start = std::time::Instant::now();
        let (res, waits) =
            spmd_pcg(&mut t, &h, &bl, &mut xl, solve_opts).expect("SPMD solve over sockets");
        (layout, res, waits, xl, solve_start.elapsed().as_secs_f64())
    } else if dist_setup {
        // Distributed setup: the fine classification and every setup phase
        // (MIS, face-ID merge, Galerkin rows, ghost lists) run over the
        // socket transport. `PMG_FINE_OP` does not apply here — the
        // distributed pipeline distributes the assembled operator.
        let graph = sys.mesh.vertex_graph();
        let nproc = t.size();
        let classes = prometheus::classify_mesh_transport(&mut t, &sys.mesh, opts.face_tol, nproc)
            .expect("transport classification");
        let setup = RankHierarchy::build_distributed(
            &mut t,
            &sys.matrix,
            &sys.mesh.coords,
            &graph,
            &classes,
            opts.mg,
        )
        .expect("distributed setup over sockets");
        let layout = setup.fine_layout().clone();
        let mut h = setup.rank_hierarchy();
        h.overlap = overlap;

        let bl: Vec<f64> = layout
            .owned(t.rank())
            .iter()
            .map(|&g| sys.rhs[g as usize])
            .collect();
        let mut xl = vec![0.0; bl.len()];
        let solve_start = std::time::Instant::now();
        let (res, waits) =
            spmd_pcg(&mut t, &h, &bl, &mut xl, solve_opts).expect("SPMD solve over sockets");
        (layout, res, waits, xl, solve_start.elapsed().as_secs_f64())
    } else {
        // `PMG_FINE_OP=matrixfree` swaps the fine-grid apply for the
        // element-loop kernels; the setup stays replicated and deterministic.
        let solver = pmg_bench::parity_solver(&sys, opts);
        let layout = solver.mg.levels[0].a.row_layout().clone();
        let mut h = RankHierarchy::extract(&solver.mg, t.rank());
        h.overlap = overlap;

        let bl: Vec<f64> = layout
            .owned(t.rank())
            .iter()
            .map(|&g| sys.rhs[g as usize])
            .collect();
        let mut xl = vec![0.0; bl.len()];
        let solve_start = std::time::Instant::now();
        let (res, waits) =
            spmd_pcg(&mut t, &h, &bl, &mut xl, solve_opts).expect("SPMD solve over sockets");
        (layout, res, waits, xl, solve_start.elapsed().as_secs_f64())
    };
    let stats = t.stats(); // snapshot before the result gather adds traffic

    let gathered = pmg_comm::gather(&mut t, &f64s_to_bytes(&xl)).expect("gather solution");
    if let Some(parts) = gathered {
        let mut x = vec![0.0; layout.num_global()];
        for (rk, blob) in parts.iter().enumerate() {
            let vals = bytes_to_f64s(blob);
            for (&g, &v) in layout.owned(rk).iter().zip(&vals) {
                x[g as usize] = v;
            }
        }
        if let Some(path) = &out_path {
            let mut f = std::fs::File::create(path).expect("create --out file");
            writeln!(f, "iterations {}", res.iterations).unwrap();
            writeln!(f, "converged {}", u8::from(res.converged)).unwrap();
            writeln!(f, "solve_s {solve_s:.9}").unwrap();
            writeln!(
                f,
                "stats {} {} {:.9} {} {}",
                stats.msgs, stats.bytes, stats.wait_s, stats.retries, stats.allreduces
            )
            .unwrap();
            writeln!(
                f,
                "waits {:.9} {:.9} {:.9}",
                waits.halo_s, waits.allreduce_s, waits.coarse_s
            )
            .unwrap();
            writeln!(
                f,
                "overlap {} {} {:.9}",
                waits.interior_rows, waits.boundary_rows, waits.halo_hidden_s
            )
            .unwrap();
            for v in &x {
                writeln!(f, "x {:016x}", v.to_bits()).unwrap();
            }
            for v in &res.residuals {
                writeln!(f, "res {:016x}", v.to_bits()).unwrap();
            }
        } else {
            println!(
                "spheres_rank: {} ranks, {} iterations, converged={}, rel_residual={:.3e}",
                t.size(),
                res.iterations,
                res.converged,
                res.rel_residual
            );
        }
    }

    if res.converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
