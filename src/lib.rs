//! Umbrella crate for the SC'99 Prometheus reproduction: re-exports every
//! workspace member under one roof, so examples and downstream users can
//! depend on a single crate.
//!
//! See the [`prometheus`] crate for the solver itself and `DESIGN.md` at
//! the repository root for the system inventory.

pub use pmg_comm as comm;
pub use pmg_fem as fem;
pub use pmg_geometry as geometry;
pub use pmg_mesh as mesh;
pub use pmg_parallel as parallel;
pub use pmg_partition as partition;
pub use pmg_solver as krylov;
pub use pmg_sparse as sparse;
pub use prometheus as solver;
