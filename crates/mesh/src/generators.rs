//! Structured hexahedral test-problem generators.

use crate::mesh::{ElementKind, Mesh};
use pmg_geometry::Vec3;

/// A structured `nx x ny x nz` hexahedral block on `[0, dims.x] x [0,
/// dims.y] x [0, dims.z]`. Materials are assigned from the element centroid
/// by `material`.
///
/// ```
/// use pmg_geometry::Vec3;
/// use pmg_mesh::generators::block;
/// let m = block(2, 2, 2, Vec3::splat(1.0), |c| u32::from(c.z > 0.5));
/// assert_eq!(m.num_elements(), 8);
/// assert_eq!(m.num_vertices(), 27);
/// assert!((m.total_volume() - 1.0).abs() < 1e-12);
/// ```
pub fn block(nx: usize, ny: usize, nz: usize, dims: Vec3, material: impl Fn(Vec3) -> u32) -> Mesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let node = |i: usize, j: usize, k: usize| (i * (ny + 1) * (nz + 1) + j * (nz + 1) + k) as u32;
    let mut coords = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
    for i in 0..=nx {
        for j in 0..=ny {
            for k in 0..=nz {
                coords.push(Vec3::new(
                    dims.x * i as f64 / nx as f64,
                    dims.y * j as f64 / ny as f64,
                    dims.z * k as f64 / nz as f64,
                ));
            }
        }
    }
    let mut elem_verts = Vec::with_capacity(nx * ny * nz * 8);
    let mut materials = Vec::with_capacity(nx * ny * nz);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                // Local ordering: 0-3 on the k face CCW (viewed from +z),
                // 4-7 above.
                elem_verts.extend_from_slice(&[
                    node(i, j, k),
                    node(i + 1, j, k),
                    node(i + 1, j + 1, k),
                    node(i, j + 1, k),
                    node(i, j, k + 1),
                    node(i + 1, j, k + 1),
                    node(i + 1, j + 1, k + 1),
                    node(i, j + 1, k + 1),
                ]);
                let centroid = Vec3::new(
                    dims.x * (i as f64 + 0.5) / nx as f64,
                    dims.y * (j as f64 + 0.5) / ny as f64,
                    dims.z * (k as f64 + 0.5) / nz as f64,
                );
                materials.push(material(centroid));
            }
        }
    }
    Mesh::new(coords, ElementKind::Hex8, elem_verts, materials)
}

/// A structured `nx x ny x nz` block of 20-node serendipity hexahedra on
/// `[0, dims.x] x [0, dims.y] x [0, dims.z]` (the paper's "higher order
/// elements" future-work item). Nodes live on the half-index grid with at
/// most one odd coordinate (corners: all even; mid-edge: one odd).
pub fn block20(
    nx: usize,
    ny: usize,
    nz: usize,
    dims: Vec3,
    material: impl Fn(Vec3) -> u32,
) -> Mesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    use std::collections::HashMap;
    let mut ids: HashMap<(usize, usize, usize), u32> = HashMap::new();
    let mut coords = Vec::new();
    let mut intern = |i: usize, j: usize, k: usize| -> u32 {
        let odd = usize::from(i % 2 == 1) + usize::from(j % 2 == 1) + usize::from(k % 2 == 1);
        debug_assert!(odd <= 1, "serendipity grid has no face/volume nodes");
        *ids.entry((i, j, k)).or_insert_with(|| {
            coords.push(Vec3::new(
                dims.x * i as f64 / (2 * nx) as f64,
                dims.y * j as f64 / (2 * ny) as f64,
                dims.z * k as f64 / (2 * nz) as f64,
            ));
            (coords.len() - 1) as u32
        })
    };

    let mut elem_verts = Vec::with_capacity(nx * ny * nz * 20);
    let mut materials = Vec::with_capacity(nx * ny * nz);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let (x, y, z) = (2 * i, 2 * j, 2 * k);
                // Corners in the Hex8 order.
                let c = [
                    (x, y, z),
                    (x + 2, y, z),
                    (x + 2, y + 2, z),
                    (x, y + 2, z),
                    (x, y, z + 2),
                    (x + 2, y, z + 2),
                    (x + 2, y + 2, z + 2),
                    (x, y + 2, z + 2),
                ];
                // Mid-edge nodes per the Hex20 convention.
                let mids = [
                    (x + 1, y, z),
                    (x + 2, y + 1, z),
                    (x + 1, y + 2, z),
                    (x, y + 1, z),
                    (x + 1, y, z + 2),
                    (x + 2, y + 1, z + 2),
                    (x + 1, y + 2, z + 2),
                    (x, y + 1, z + 2),
                    (x, y, z + 1),
                    (x + 2, y, z + 1),
                    (x + 2, y + 2, z + 1),
                    (x, y + 2, z + 1),
                ];
                for (gi, gj, gk) in c.into_iter().chain(mids) {
                    elem_verts.push(intern(gi, gj, gk));
                }
                let centroid = Vec3::new(
                    dims.x * (i as f64 + 0.5) / nx as f64,
                    dims.y * (j as f64 + 0.5) / ny as f64,
                    dims.z * (k as f64 + 0.5) / nz as f64,
                );
                materials.push(material(centroid));
            }
        }
    }
    Mesh::new(coords, ElementKind::Hex20, elem_verts, materials)
}

/// A thin plate: `n x n x 1` elements with thickness `t` (the §4.6 "thin
/// body" that defeats an unmodified MIS).
pub fn thin_plate(n: usize, side: f64, t: f64) -> Mesh {
    block(n, n, 1, Vec3::new(side, side, t), |_| 0)
}

/// A voxel mesh: hexahedra of an `nx x ny x nz` grid over `[0, dims]`,
/// keeping only the cells where `keep(centroid)` yields a material id.
/// This generates non-convex domains (brackets, perforated plates, ...) —
/// the geometry where coarse Delaunay grids overshoot the body and the
/// coarsener's lost-vertex recovery earns its keep.
pub fn voxel_mesh(
    nx: usize,
    ny: usize,
    nz: usize,
    dims: Vec3,
    keep: impl Fn(Vec3) -> Option<u32>,
) -> Mesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    use std::collections::HashMap;
    let mut ids: HashMap<(usize, usize, usize), u32> = HashMap::new();
    let mut coords = Vec::new();
    let mut intern = |i: usize, j: usize, k: usize| -> u32 {
        *ids.entry((i, j, k)).or_insert_with(|| {
            coords.push(Vec3::new(
                dims.x * i as f64 / nx as f64,
                dims.y * j as f64 / ny as f64,
                dims.z * k as f64 / nz as f64,
            ));
            (coords.len() - 1) as u32
        })
    };
    let mut elem_verts = Vec::new();
    let mut materials = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let centroid = Vec3::new(
                    dims.x * (i as f64 + 0.5) / nx as f64,
                    dims.y * (j as f64 + 0.5) / ny as f64,
                    dims.z * (k as f64 + 0.5) / nz as f64,
                );
                let Some(mat) = keep(centroid) else { continue };
                for (di, dj, dk) in [
                    (0, 0, 0),
                    (1, 0, 0),
                    (1, 1, 0),
                    (0, 1, 0),
                    (0, 0, 1),
                    (1, 0, 1),
                    (1, 1, 1),
                    (0, 1, 1),
                ] {
                    elem_verts.push(intern(i + di, j + dj, k + dk));
                }
                materials.push(mat);
            }
        }
    }
    assert!(!materials.is_empty(), "keep() rejected every cell");
    Mesh::new(coords, ElementKind::Hex8, elem_verts, materials)
}

/// An L-bracket: the unit cube minus its upper far octant-ish corner block
/// (a standard non-convex stress-concentration geometry).
pub fn l_bracket(n: usize) -> Mesh {
    voxel_mesh(n, n, n, Vec3::splat(1.0), |c| {
        if c.x > 0.5 && c.z > 0.5 {
            None
        } else {
            Some(0)
        }
    })
}

/// A uniform cube of `n^3` elements with unit side (the §4.7 MIS-size
/// study mesh).
pub fn cube(n: usize) -> Mesh {
    block(n, n, n, Vec3::splat(1.0), |_| 0)
}

/// Promote a Hex8 mesh to Hex20 by inserting shared mid-edge nodes (the
/// p-refinement path to the paper's "higher order elements" future work —
/// works on any hex mesh, including the curved spheres workload; mid-edge
/// nodes are straight-edge midpoints).
pub fn hex8_to_hex20(mesh: &Mesh) -> Mesh {
    assert_eq!(mesh.kind, ElementKind::Hex8, "input must be Hex8");
    use std::collections::HashMap;
    // The 12 edges of a hex in the Hex20 mid-node order (nodes 8..19).
    const EDGES: [(usize, usize); 12] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    let mut coords = mesh.coords.clone();
    let mut edge_node: HashMap<(u32, u32), u32> = HashMap::new();
    let mut elem_verts = Vec::with_capacity(mesh.num_elements() * 20);
    for e in 0..mesh.num_elements() {
        let ev = mesh.elem(e);
        elem_verts.extend_from_slice(ev);
        for (a, b) in EDGES {
            let (va, vb) = (ev[a], ev[b]);
            let key = (va.min(vb), va.max(vb));
            let id = *edge_node.entry(key).or_insert_with(|| {
                coords.push((mesh.coords[va as usize] + mesh.coords[vb as usize]) * 0.5);
                (coords.len() - 1) as u32
            });
            elem_verts.push(id);
        }
    }
    Mesh::new(
        coords,
        ElementKind::Hex20,
        elem_verts,
        mesh.materials.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_and_volume() {
        let m = block(3, 4, 5, Vec3::new(3.0, 4.0, 5.0), |_| 0);
        assert_eq!(m.num_vertices(), 4 * 5 * 6);
        assert_eq!(m.num_elements(), 60);
        assert!((m.total_volume() - 60.0).abs() < 1e-10);
        assert!(m.validate_volumes().is_ok());
    }

    #[test]
    fn block_material_split() {
        let m = block(4, 1, 1, Vec3::new(4.0, 1.0, 1.0), |c| {
            if c.x < 2.0 {
                0
            } else {
                7
            }
        });
        assert_eq!(m.materials, vec![0, 0, 7, 7]);
    }

    #[test]
    fn thin_plate_shape() {
        let m = thin_plate(8, 8.0, 0.5);
        assert_eq!(m.num_elements(), 64);
        let bb = m.bounding_box();
        assert_eq!(bb.extent(), Vec3::new(8.0, 8.0, 0.5));
    }

    #[test]
    fn block20_counts_and_volume() {
        let m = block20(2, 2, 2, Vec3::splat(2.0), |_| 0);
        // Serendipity node count for nx=ny=nz=2: corners 27 + edges
        // 3*(2*3*3)=54 => 81.
        assert_eq!(m.num_vertices(), 81);
        assert_eq!(m.num_elements(), 8);
        assert!((m.total_volume() - 8.0).abs() < 1e-12);
        assert!(m.validate_volumes().is_ok());
        // Every element's mid-edge node 8 is the midpoint of corners 0, 1.
        for e in 0..8 {
            let v = m.elem(e);
            let p0 = m.coords[v[0] as usize];
            let p1 = m.coords[v[1] as usize];
            let pm = m.coords[v[8] as usize];
            assert!(((p0 + p1) * 0.5 - pm).norm() < 1e-12);
            // Vertical edge node 16 is the midpoint of corners 0, 4.
            let p4 = m.coords[v[4] as usize];
            let pv = m.coords[v[16] as usize];
            assert!(((p0 + p4) * 0.5 - pv).norm() < 1e-12);
        }
    }

    #[test]
    fn hex8_to_hex20_matches_native_generator() {
        // Converting a block must give the same node/element counts (and
        // interchangeable geometry) as generating Hex20 natively.
        let m8 = block(2, 2, 2, Vec3::splat(2.0), |c| u32::from(c.x > 1.0));
        let m20 = hex8_to_hex20(&m8);
        let native = block20(2, 2, 2, Vec3::splat(2.0), |c| u32::from(c.x > 1.0));
        assert_eq!(m20.kind, ElementKind::Hex20);
        assert_eq!(m20.num_vertices(), native.num_vertices());
        assert_eq!(m20.num_elements(), native.num_elements());
        assert_eq!(m20.materials, native.materials);
        assert!((m20.total_volume() - 8.0).abs() < 1e-12);
        assert!(m20.validate_volumes().is_ok());
        // Every mid-edge node is the midpoint of its corner pair.
        for e in 0..m20.num_elements() {
            let v = m20.elem(e);
            let mid = m20.coords[v[8] as usize];
            let expect = (m20.coords[v[0] as usize] + m20.coords[v[1] as usize]) * 0.5;
            assert!((mid - expect).norm() < 1e-14);
        }
    }

    #[test]
    fn hex8_to_hex20_shares_edge_nodes() {
        // Adjacent elements must reference the same mid-edge node.
        let m = hex8_to_hex20(&block(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |_| 0));
        // Two hexes with a shared face: 12 + 12 - 4 shared edge mids + ...
        // counts: corners 12, unique edges: 20 -> total 32 nodes.
        assert_eq!(m.num_vertices(), 32);
    }

    #[test]
    fn block20_boundary_facets() {
        use crate::facets::boundary_facets;
        let m = block20(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |_| 0);
        let f = boundary_facets(&m);
        assert_eq!(f.len(), 10); // same face topology as the Hex8 block
        for facet in &f {
            assert_eq!(facet.verts.len(), 8);
            assert!((facet.normal.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cube_graph_interior_degree() {
        let m = cube(3); // 4^3 vertices
        let g = m.vertex_graph();
        // The single interior vertex of a 3^3-element cube touches 8
        // elements and is adjacent to the other 26 vertices of its 3x3x3
        // neighborhood.
        let center = m.vertices_where(|p| (p - Vec3::splat(1.0 / 3.0)).norm() < 1e-9)[0] as usize;
        // center is at grid point (1,1,1) of a 4x4x4 grid: interior.
        assert_eq!(g.degree(center), 26);
    }
}
