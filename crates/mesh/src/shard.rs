//! Sharded mesh representation for partition-at-ingest (§5).
//!
//! "Athena [...] uses ParMetis to partition the finite element graph, and
//! then constructs a complete finite element problem on each processor."
//! The paper's reader never materializes the global mesh on a compute
//! rank: the ingest side partitions the element connectivity at load time
//! and ships each rank only its owned vertices plus the one-element-deep
//! ghost closure. [`MeshShard`] is that per-rank payload — a self-contained
//! local [`Mesh`] with the local→global maps needed to place assembled
//! rows into the global dof space — and [`shard_mesh`] carves a global
//! mesh into shards with exactly the sub-domain construction the
//! `pmg_fem` Athena layer uses (every element touching at least one owned
//! vertex, owned vertices first in ascending global order so local
//! numbering lines up with `pmg_parallel::Layout`).
//!
//! Shards serialize to a flat little-endian byte image ([`MeshShard::encode`]
//! / [`MeshShard::decode`]) so rank 0 can scatter them over any transport;
//! coordinates roundtrip bitwise.

use crate::mesh::{ElementKind, Mesh};
use pmg_geometry::Vec3;

/// One rank's share of a partitioned mesh: owned vertices, the ghost
/// closure, and the local→global maps.
#[derive(Clone, Debug)]
pub struct MeshShard {
    /// Which rank this shard belongs to.
    pub rank: u32,
    /// Total ranks in the partition.
    pub nranks: u32,
    /// Vertices in the global mesh (metadata only — no global array of
    /// this length is ever allocated from a shard).
    pub num_global_vertices: u32,
    /// Elements in the global mesh (metadata only).
    pub num_global_elements: u32,
    /// The local mesh: all elements touching an owned vertex, with local
    /// vertex numbering (owned first, then ghosts).
    pub mesh: Mesh,
    /// Global vertex id of each local vertex. Owned vertices come first in
    /// ascending global order (matching `Layout`'s owned numbering), then
    /// ghosts in ascending global order.
    pub global_vertices: Vec<u32>,
    /// Global element id of each local element, ascending.
    pub global_elements: Vec<u32>,
    /// How many local vertices are owned (they are the prefix).
    pub num_owned: usize,
}

impl MeshShard {
    /// Owned local vertex count.
    pub fn num_owned(&self) -> usize {
        self.num_owned
    }

    /// Ghost (non-owned) local vertex count.
    pub fn num_ghost(&self) -> usize {
        self.mesh.num_vertices() - self.num_owned
    }

    /// Global ids of the owned vertices, ascending.
    pub fn owned_global(&self) -> &[u32] {
        &self.global_vertices[..self.num_owned]
    }

    /// Whether local vertex `lv` is owned by this rank.
    pub fn is_owned(&self, lv: usize) -> bool {
        lv < self.num_owned
    }

    /// Local index of global vertex `g`, if present in this shard. Both
    /// the owned prefix and the ghost suffix are sorted ascending, so two
    /// binary searches suffice — no hash map is stored.
    pub fn local_of(&self, g: u32) -> Option<usize> {
        let (owned, ghosts) = self.global_vertices.split_at(self.num_owned);
        match owned.binary_search(&g) {
            Ok(l) => Some(l),
            Err(_) => ghosts.binary_search(&g).ok().map(|l| self.num_owned + l),
        }
    }

    /// Serialize to a little-endian byte image (scatter payload).
    pub fn encode(&self) -> Vec<u8> {
        let nv = self.mesh.num_vertices();
        let ne = self.mesh.num_elements();
        let mut b = Vec::with_capacity(32 + 24 * nv + 4 * self.mesh.elem_verts.len() + 12 * ne);
        b.extend_from_slice(&SHARD_MAGIC.to_le_bytes());
        for v in [
            self.rank,
            self.nranks,
            self.num_global_vertices,
            self.num_global_elements,
            kind_code(self.mesh.kind),
            self.num_owned as u32,
            nv as u32,
            ne as u32,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for p in &self.mesh.coords {
            for c in [p.x, p.y, p.z] {
                b.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        for &v in &self.mesh.elem_verts {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for &m in &self.mesh.materials {
            b.extend_from_slice(&m.to_le_bytes());
        }
        for &g in &self.global_vertices {
            b.extend_from_slice(&g.to_le_bytes());
        }
        for &g in &self.global_elements {
            b.extend_from_slice(&g.to_le_bytes());
        }
        b
    }

    /// Decode a byte image produced by [`MeshShard::encode`]. Returns
    /// `None` on a malformed payload.
    pub fn decode(bytes: &[u8]) -> Option<MeshShard> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != SHARD_MAGIC {
            return None;
        }
        let rank = r.u32()?;
        let nranks = r.u32()?;
        let num_global_vertices = r.u32()?;
        let num_global_elements = r.u32()?;
        let kind = kind_from_code(r.u32()?)?;
        let num_owned = r.u32()? as usize;
        let nv = r.u32()? as usize;
        let ne = r.u32()? as usize;
        let mut coords = Vec::with_capacity(nv);
        for _ in 0..nv {
            let x = r.f64()?;
            let y = r.f64()?;
            let z = r.f64()?;
            coords.push(Vec3::new(x, y, z));
        }
        let elem_verts = r.u32s(ne * kind.nodes())?;
        let materials = r.u32s(ne)?;
        let global_vertices = r.u32s(nv)?;
        let global_elements = r.u32s(ne)?;
        if r.pos != bytes.len() || num_owned > nv {
            return None;
        }
        if elem_verts.iter().any(|&v| v as usize >= nv) {
            return None;
        }
        Some(MeshShard {
            rank,
            nranks,
            num_global_vertices,
            num_global_elements,
            mesh: Mesh::new(coords, kind, elem_verts, materials),
            global_vertices,
            global_elements,
            num_owned,
        })
    }
}

const SHARD_MAGIC: u32 = 0x504D_5348; // "PMSH"

fn kind_code(kind: ElementKind) -> u32 {
    match kind {
        ElementKind::Hex8 => 0,
        ElementKind::Tet4 => 1,
        ElementKind::Hex20 => 2,
    }
}

fn kind_from_code(c: u32) -> Option<ElementKind> {
    match c {
        0 => Some(ElementKind::Hex8),
        1 => Some(ElementKind::Tet4),
        2 => Some(ElementKind::Hex20),
        _ => None,
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u32(&mut self) -> Option<u32> {
        let b = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        let b = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    fn u32s(&mut self, n: usize) -> Option<Vec<u32>> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Some(v)
    }
}

/// Carve `mesh` into per-rank shards given the vertex assignment `part`
/// (one rank id per vertex, e.g. from
/// `pmg_partition::recursive_coordinate_bisection` over the coordinates).
///
/// Runs on the ingest side (rank 0, or whatever reads the file); compute
/// ranks only ever see the returned shards. The sub-domain construction is
/// identical to the Athena layer's `partition_mesh`: each rank gets every
/// element touching at least one of its owned vertices, local vertices are
/// owned-ascending then ghost-ascending, so a `pmg_fem::RankAssembly`
/// built from a shard reproduces the `partition_mesh` one bitwise.
pub fn shard_mesh(mesh: &Mesh, part: &[u32], nranks: usize) -> Vec<MeshShard> {
    assert_eq!(part.len(), mesh.num_vertices());
    let nv_per_elem = mesh.kind.nodes();
    // Elements per rank: any element touching an owned vertex.
    let mut elems_of: Vec<Vec<u32>> = vec![Vec::new(); nranks];
    for e in 0..mesh.num_elements() {
        let mut ranks: Vec<u32> = mesh.elem(e).iter().map(|&v| part[v as usize]).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for r in ranks {
            elems_of[r as usize].push(e as u32);
        }
    }

    (0..nranks)
        .map(|r| {
            let elems = &elems_of[r];
            // Local vertices: owned first (ascending global id, matching
            // Layout numbering), then ghosts ascending.
            let mut vset: Vec<u32> = elems
                .iter()
                .flat_map(|&e| mesh.elem(e as usize).iter().copied())
                .collect();
            vset.sort_unstable();
            vset.dedup();
            let (owned_v, ghost_v): (Vec<u32>, Vec<u32>) = vset
                .into_iter()
                .partition(|&v| part[v as usize] == r as u32);
            let num_owned = owned_v.len();
            let global_vertices: Vec<u32> = owned_v.iter().chain(ghost_v.iter()).copied().collect();
            let mut local_of = std::collections::HashMap::with_capacity(global_vertices.len());
            for (l, &g) in global_vertices.iter().enumerate() {
                local_of.insert(g, l as u32);
            }
            let coords = global_vertices
                .iter()
                .map(|&g| mesh.coords[g as usize])
                .collect();
            let mut elem_verts = Vec::with_capacity(elems.len() * nv_per_elem);
            let mut materials = Vec::with_capacity(elems.len());
            for &e in elems {
                for &v in mesh.elem(e as usize) {
                    elem_verts.push(local_of[&v]);
                }
                materials.push(mesh.materials[e as usize]);
            }
            MeshShard {
                rank: r as u32,
                nranks: nranks as u32,
                num_global_vertices: mesh.num_vertices() as u32,
                num_global_elements: mesh.num_elements() as u32,
                mesh: Mesh::new(coords, mesh.kind, elem_verts, materials),
                global_vertices,
                global_elements: elems.clone(),
                num_owned,
            }
        })
        .collect()
}

/// Element imbalance of a sharded partition: the largest per-rank element
/// count over the mean (1.0 = perfectly balanced). Counts ghost-closure
/// elements, i.e. this is the *evaluated* element load including the
/// paper's redundant work, the quantity the `mg/level0/element_imbalance`
/// gauge reports at ingest time.
pub fn element_imbalance(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *counts.iter().max().unwrap();
    max as f64 * counts.len() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::block;
    use pmg_partition::recursive_coordinate_bisection;

    fn mesh() -> Mesh {
        block(4, 3, 3, Vec3::new(4.0, 3.0, 3.0), |c| u32::from(c.x > 2.0))
    }

    #[test]
    fn shards_tile_ownership_and_close_elements() {
        let m = mesh();
        for p in [1usize, 2, 3, 5] {
            let part = recursive_coordinate_bisection(&m.coords, p);
            let shards = shard_mesh(&m, &part, p);
            assert_eq!(shards.len(), p);
            let mut owner = vec![usize::MAX; m.num_vertices()];
            for s in &shards {
                assert_eq!(s.nranks as usize, p);
                assert_eq!(s.num_global_vertices as usize, m.num_vertices());
                assert_eq!(s.num_global_elements as usize, m.num_elements());
                // Owned prefix and ghost suffix each ascend.
                let (own, ghost) = s.global_vertices.split_at(s.num_owned);
                assert!(own.windows(2).all(|w| w[0] < w[1]));
                assert!(ghost.windows(2).all(|w| w[0] < w[1]));
                for &g in own {
                    assert_eq!(owner[g as usize], usize::MAX, "vertex {g} owned twice");
                    owner[g as usize] = s.rank as usize;
                    assert_eq!(part[g as usize], s.rank);
                }
                // Local mesh geometry matches the global mesh.
                for (l, &g) in s.global_vertices.iter().enumerate() {
                    assert_eq!(s.mesh.coords[l], m.coords[g as usize]);
                    assert_eq!(s.local_of(g), Some(l));
                }
                assert_eq!(s.local_of(u32::MAX), None);
                // Every local element is the global one, remapped.
                for (le, &ge) in s.global_elements.iter().enumerate() {
                    assert_eq!(s.mesh.materials[le], m.materials[ge as usize]);
                    let lv = s.mesh.elem(le);
                    let gv = m.elem(ge as usize);
                    for (a, b) in lv.iter().zip(gv) {
                        assert_eq!(s.global_vertices[*a as usize], *b);
                    }
                }
                assert!(s.mesh.validate_volumes().is_ok());
            }
            assert!(owner.iter().all(|&o| o != usize::MAX));
            // Element closure: an element appears on rank r iff it touches
            // an owned vertex of r.
            for e in 0..m.num_elements() {
                let mut expect: Vec<u32> = m.elem(e).iter().map(|&v| part[v as usize]).collect();
                expect.sort_unstable();
                expect.dedup();
                let got: Vec<u32> = shards
                    .iter()
                    .filter(|s| s.global_elements.binary_search(&(e as u32)).is_ok())
                    .map(|s| s.rank)
                    .collect();
                assert_eq!(got, expect, "element {e} closure");
            }
        }
    }

    #[test]
    fn codec_roundtrips_bitwise() {
        let m = mesh();
        let part = recursive_coordinate_bisection(&m.coords, 3);
        for s in shard_mesh(&m, &part, 3) {
            let bytes = s.encode();
            let back = MeshShard::decode(&bytes).expect("decode");
            assert_eq!(back.rank, s.rank);
            assert_eq!(back.nranks, s.nranks);
            assert_eq!(back.num_owned, s.num_owned);
            assert_eq!(back.num_global_vertices, s.num_global_vertices);
            assert_eq!(back.num_global_elements, s.num_global_elements);
            assert_eq!(back.global_vertices, s.global_vertices);
            assert_eq!(back.global_elements, s.global_elements);
            assert_eq!(back.mesh.kind, s.mesh.kind);
            assert_eq!(back.mesh.elem_verts, s.mesh.elem_verts);
            assert_eq!(back.mesh.materials, s.mesh.materials);
            for (a, b) in back.mesh.coords.iter().zip(&s.mesh.coords) {
                // Bitwise: coordinates ship as raw f64 bits.
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
            }
            // Truncated or corrupted payloads are rejected, not misread.
            assert!(MeshShard::decode(&bytes[..bytes.len() - 1]).is_none());
            let mut corrupt = bytes.clone();
            corrupt[0] ^= 0xFF;
            assert!(MeshShard::decode(&corrupt).is_none());
        }
    }

    #[test]
    fn empty_rank_yields_empty_shard() {
        let m = mesh();
        // Rank 1 owns nothing.
        let part = vec![0u32; m.num_vertices()];
        let shards = shard_mesh(&m, &part, 2);
        assert_eq!(shards[1].num_owned(), 0);
        assert_eq!(shards[1].mesh.num_elements(), 0);
        assert_eq!(shards[1].mesh.num_vertices(), 0);
        let back = MeshShard::decode(&shards[1].encode()).unwrap();
        assert_eq!(back.mesh.num_vertices(), 0);
        assert_eq!(shards[0].mesh.num_elements(), m.num_elements());
    }

    #[test]
    fn element_imbalance_counts_redundant_work() {
        assert_eq!(element_imbalance(&[4, 4, 4, 4]), 1.0);
        assert_eq!(element_imbalance(&[8, 4, 4]), 1.5);
        assert_eq!(element_imbalance(&[]), 1.0);
        assert_eq!(element_imbalance(&[0, 0]), 1.0);
    }
}
