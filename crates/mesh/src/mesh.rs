//! Core mesh data structure.

use pmg_geometry::{Aabb, Vec3};
use pmg_partition::Graph;

/// Element topology. Meshes are homogeneous (all elements the same kind);
/// the paper's fine grids are hexahedral and the solver-internal coarse
/// grids are tetrahedral.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElementKind {
    /// 8-node trilinear hexahedron. Local node order: nodes 0-3 on the
    /// ζ=-1 face counterclockwise (viewed from +ζ), nodes 4-7 above them.
    Hex8,
    /// 4-node linear tetrahedron with positive volume
    /// (`det([v1-v0, v2-v0, v3-v0]) > 0`).
    Tet4,
    /// 20-node serendipity (quadratic) hexahedron: nodes 0-7 as Hex8, then
    /// mid-edge nodes 8-11 on the bottom ring (0-1, 1-2, 2-3, 3-0), 12-15
    /// on the top ring (4-5, 5-6, 6-7, 7-4), 16-19 on the vertical edges
    /// (0-4, 1-5, 2-6, 3-7). The paper lists higher-order elements as
    /// future work; the solver's vertex-cloud coarsening handles them
    /// unchanged.
    Hex20,
}

impl ElementKind {
    /// Nodes per element.
    pub fn nodes(self) -> usize {
        match self {
            ElementKind::Hex8 => 8,
            ElementKind::Tet4 => 4,
            ElementKind::Hex20 => 20,
        }
    }

    /// Length of the corner ring of each face (faces list corners first,
    /// then any mid-edge nodes): 4 for quadrilateral faces, 3 for
    /// triangles. Geometry (normals, volumes) uses the corner ring.
    pub fn face_ring(self) -> usize {
        match self {
            ElementKind::Hex8 | ElementKind::Hex20 => 4,
            ElementKind::Tet4 => 3,
        }
    }

    /// Element faces as local node indices, ordered so face normals point
    /// outward. Quad faces list 4 nodes, triangles 3.
    pub fn faces(self) -> &'static [&'static [usize]] {
        match self {
            ElementKind::Hex8 => &[
                &[0, 3, 2, 1], // ζ = -1
                &[4, 5, 6, 7], // ζ = +1
                &[0, 1, 5, 4], // η = -1
                &[1, 2, 6, 5], // ξ = +1
                &[2, 3, 7, 6], // η = +1
                &[3, 0, 4, 7], // ξ = -1
            ],
            ElementKind::Tet4 => &[&[0, 2, 1], &[0, 3, 2], &[0, 1, 3], &[1, 2, 3]],
            // Corner ring first (outward), then the mid-edge nodes of the
            // ring edges in ring order.
            ElementKind::Hex20 => &[
                &[0, 3, 2, 1, 11, 10, 9, 8],   // ζ = -1
                &[4, 5, 6, 7, 12, 13, 14, 15], // ζ = +1
                &[0, 1, 5, 4, 8, 17, 12, 16],  // η = -1
                &[1, 2, 6, 5, 9, 18, 13, 17],  // ξ = +1
                &[2, 3, 7, 6, 10, 19, 14, 18], // η = +1
                &[3, 0, 4, 7, 11, 16, 15, 19], // ξ = -1
            ],
        }
    }
}

/// An unstructured finite element mesh.
#[derive(Clone, Debug)]
pub struct Mesh {
    /// Vertex coordinates.
    pub coords: Vec<Vec3>,
    /// Element kind (homogeneous).
    pub kind: ElementKind,
    /// Flattened element connectivity, `kind.nodes()` entries per element.
    pub elem_verts: Vec<u32>,
    /// Material id per element. A *domain* in the paper's sense is a
    /// contiguous region of elements with one material.
    pub materials: Vec<u32>,
}

impl Mesh {
    pub fn new(
        coords: Vec<Vec3>,
        kind: ElementKind,
        elem_verts: Vec<u32>,
        materials: Vec<u32>,
    ) -> Mesh {
        assert_eq!(elem_verts.len() % kind.nodes(), 0);
        assert_eq!(materials.len(), elem_verts.len() / kind.nodes());
        debug_assert!(elem_verts.iter().all(|&v| (v as usize) < coords.len()));
        Mesh {
            coords,
            kind,
            elem_verts,
            materials,
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    pub fn num_elements(&self) -> usize {
        self.materials.len()
    }

    /// Degrees of freedom for a 3-dof-per-vertex (displacement) problem.
    pub fn num_dof(&self) -> usize {
        3 * self.num_vertices()
    }

    /// Vertex ids of element `e`.
    #[inline]
    pub fn elem(&self, e: usize) -> &[u32] {
        let nv = self.kind.nodes();
        &self.elem_verts[e * nv..(e + 1) * nv]
    }

    /// Corner coordinates of element `e`.
    pub fn elem_coords(&self, e: usize) -> Vec<Vec3> {
        self.elem(e)
            .iter()
            .map(|&v| self.coords[v as usize])
            .collect()
    }

    pub fn elem_centroid(&self, e: usize) -> Vec3 {
        let verts = self.elem(e);
        let mut c = Vec3::ZERO;
        for &v in verts {
            c += self.coords[v as usize];
        }
        c / verts.len() as f64
    }

    /// Element volume via the divergence theorem (faces fanned into
    /// triangles about their centroid; exact for planar faces, robust for
    /// mildly warped hexahedron faces).
    pub fn elem_volume(&self, e: usize) -> f64 {
        let verts = self.elem(e);
        let ring = self.kind.face_ring();
        let mut vol = 0.0;
        for face in self.kind.faces() {
            let pts: Vec<Vec3> = face[..ring]
                .iter()
                .map(|&l| self.coords[verts[l] as usize])
                .collect();
            let centroid = pts.iter().fold(Vec3::ZERO, |a, &p| a + p) / pts.len() as f64;
            for k in 0..pts.len() {
                let a = pts[k];
                let b = pts[(k + 1) % pts.len()];
                // Tet (origin, centroid, a, b): contributes to ∮ x·n dA / 3.
                vol += centroid.dot(a.cross(b)) / 6.0;
            }
        }
        vol
    }

    pub fn total_volume(&self) -> f64 {
        (0..self.num_elements()).map(|e| self.elem_volume(e)).sum()
    }

    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.coords.iter().copied())
    }

    /// CSR map from vertex to the elements containing it.
    pub fn vertex_to_elements(&self) -> (Vec<usize>, Vec<u32>) {
        let n = self.num_vertices();
        let mut ptr = vec![0usize; n + 1];
        for &v in &self.elem_verts {
            ptr[v as usize + 1] += 1;
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut elems = vec![0u32; self.elem_verts.len()];
        let mut next = ptr.clone();
        for e in 0..self.num_elements() {
            for &v in self.elem(e) {
                elems[next[v as usize]] = e as u32;
                next[v as usize] += 1;
            }
        }
        (ptr, elems)
    }

    /// The element-connectivity vertex graph: vertices are adjacent iff
    /// they share an element. This is the graph `G` used by the MIS
    /// coarsener (§4.1) and it matches the nonzero structure of the
    /// assembled stiffness matrix.
    pub fn vertex_graph(&self) -> Graph {
        let n = self.num_vertices();
        let (ptr, v2e) = self.vertex_to_elements();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut scratch: Vec<u32> = Vec::new();
        for v in 0..n {
            scratch.clear();
            for &e in &v2e[ptr[v]..ptr[v + 1]] {
                scratch.extend(self.elem(e as usize).iter().copied());
            }
            scratch.sort_unstable();
            scratch.dedup();
            lists[v] = scratch
                .iter()
                .copied()
                .filter(|&w| w as usize != v)
                .collect();
        }
        Graph::from_adjacency(&lists)
    }

    /// Indices of vertices satisfying a coordinate predicate (for boundary
    /// conditions).
    pub fn vertices_where(&self, pred: impl Fn(Vec3) -> bool) -> Vec<u32> {
        self.coords
            .iter()
            .enumerate()
            .filter(|(_, &p)| pred(p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Check all element volumes are positive; returns the offending
    /// element if any.
    pub fn validate_volumes(&self) -> Result<(), usize> {
        for e in 0..self.num_elements() {
            if self.elem_volume(e) <= 0.0 {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit cube as a single hex element.
    pub fn unit_hex() -> Mesh {
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        ];
        Mesh::new(coords, ElementKind::Hex8, (0..8).collect(), vec![0])
    }

    fn unit_tet() -> Mesh {
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        Mesh::new(coords, ElementKind::Tet4, vec![0, 1, 2, 3], vec![0])
    }

    #[test]
    fn hex_volume() {
        let m = unit_hex();
        assert!((m.elem_volume(0) - 1.0).abs() < 1e-14);
        assert!((m.total_volume() - 1.0).abs() < 1e-14);
        assert!(m.validate_volumes().is_ok());
    }

    #[test]
    fn tet_volume() {
        let m = unit_tet();
        assert!((m.elem_volume(0) - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn negative_volume_detected() {
        let mut m = unit_tet();
        m.elem_verts.swap(0, 1); // flips orientation
        assert_eq!(m.validate_volumes(), Err(0));
    }

    #[test]
    fn centroid_and_bbox() {
        let m = unit_hex();
        assert_eq!(m.elem_centroid(0), Vec3::splat(0.5));
        let bb = m.bounding_box();
        assert_eq!(bb.min, Vec3::ZERO);
        assert_eq!(bb.max, Vec3::splat(1.0));
    }

    #[test]
    fn vertex_graph_single_hex() {
        let m = unit_hex();
        let g = m.vertex_graph();
        // All 8 vertices share the element: complete graph K8.
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn vertex_to_elements_roundtrip() {
        let m = unit_hex();
        let (ptr, v2e) = m.vertex_to_elements();
        for v in 0..8 {
            assert_eq!(&v2e[ptr[v]..ptr[v + 1]], &[0]);
        }
    }

    #[test]
    fn vertices_where_selects() {
        let m = unit_hex();
        let top = m.vertices_where(|p| p.z > 0.5);
        assert_eq!(top, vec![4, 5, 6, 7]);
    }

    #[test]
    fn outward_faces() {
        // Sum of face-normal areas of a closed element must vanish.
        for m in [unit_hex(), unit_tet()] {
            let verts = m.elem(0);
            let mut sum = Vec3::ZERO;
            for face in m.kind.faces() {
                let pts: Vec<Vec3> = face.iter().map(|&l| m.coords[verts[l] as usize]).collect();
                let c = pts.iter().fold(Vec3::ZERO, |a, &p| a + p) / pts.len() as f64;
                for k in 0..pts.len() {
                    let a = pts[k] - c;
                    let b = pts[(k + 1) % pts.len()] - c;
                    sum += a.cross(b) * 0.5;
                }
            }
            assert!(sum.norm() < 1e-14);
        }
    }
}
