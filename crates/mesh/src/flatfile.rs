//! The "flat" finite element input file and its parallel reader (§5).
//!
//! "Athena reads a large 'flat' finite element mesh input file in parallel
//! (ie, each processor seeks and reads only the part of the input file
//! that it, and it alone, is responsible for)". The format here is a
//! simple self-describing text format with a byte-offset directory, so a
//! rank can seek directly to its contiguous share of the vertex and
//! element sections without touching the rest of the file.
//!
//! Layout:
//! ```text
//! pmgmesh 1
//! kind <hex8|tet4|hex20>
//! counts <num_vertices> <num_elements>
//! offsets <vertex_section_byte> <element_section_byte>
//! <one vertex per line: x y z>
//! <one element per line: material v0 v1 ...>
//! ```
//! Every vertex and element line is padded to a fixed width so the i-th
//! record sits at a computable byte offset.

use crate::mesh::{ElementKind, Mesh};
use pmg_geometry::Vec3;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Fixed record widths (bytes, including the newline).
const VERTEX_RECORD: usize = 72;
const ELEM_RECORD_PER_NODE: usize = 10;
const ELEM_RECORD_BASE: usize = 12;

fn elem_record_len(kind: ElementKind) -> usize {
    ELEM_RECORD_BASE + ELEM_RECORD_PER_NODE * kind.nodes()
}

fn kind_name(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::Hex8 => "hex8",
        ElementKind::Tet4 => "tet4",
        ElementKind::Hex20 => "hex20",
    }
}

fn kind_from_name(s: &str) -> Option<ElementKind> {
    match s {
        "hex8" => Some(ElementKind::Hex8),
        "tet4" => Some(ElementKind::Tet4),
        "hex20" => Some(ElementKind::Hex20),
        _ => None,
    }
}

/// Write `mesh` as a flat file.
pub fn write_flat(mesh: &Mesh, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_flat_to(mesh, &mut f)?;
    f.flush()
}

/// Serialize `mesh` in the flat-file format into a byte buffer (the form
/// the serve `ingest` frame uploads — same bytes as [`write_flat`] puts on
/// disk).
pub fn write_flat_bytes(mesh: &Mesh) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        64 + VERTEX_RECORD * mesh.num_vertices() + elem_record_len(mesh.kind) * mesh.num_elements(),
    );
    write_flat_to(mesh, &mut buf).expect("writing to a Vec cannot fail");
    buf
}

fn write_flat_to<W: Write>(mesh: &Mesh, f: &mut W) -> std::io::Result<()> {
    // Header with a placeholder offsets line of fixed width.
    let header = format!(
        "pmgmesh 1\nkind {}\ncounts {} {}\n",
        kind_name(mesh.kind),
        mesh.num_vertices(),
        mesh.num_elements()
    );
    let offsets_line_len = "offsets ".len() + 20 + 1 + 20 + 1;
    let vertex_off = header.len() + offsets_line_len;
    let elem_off = vertex_off + VERTEX_RECORD * mesh.num_vertices();
    f.write_all(header.as_bytes())?;
    f.write_all(format!("offsets {vertex_off:020} {elem_off:020}\n").as_bytes())?;

    for p in &mesh.coords {
        let line = format!("{:.17e} {:.17e} {:.17e}", p.x, p.y, p.z);
        let mut rec = vec![b' '; VERTEX_RECORD];
        rec[..line.len()].copy_from_slice(line.as_bytes());
        rec[VERTEX_RECORD - 1] = b'\n';
        f.write_all(&rec)?;
    }
    let erl = elem_record_len(mesh.kind);
    for e in 0..mesh.num_elements() {
        let mut line = format!("{:>10}", mesh.materials[e]);
        for &v in mesh.elem(e) {
            line.push_str(&format!(" {v:>9}"));
        }
        let mut rec = vec![b' '; erl];
        assert!(line.len() < erl, "element record overflow");
        rec[..line.len()].copy_from_slice(line.as_bytes());
        rec[erl - 1] = b'\n';
        f.write_all(&rec)?;
    }
    Ok(())
}

/// Parsed header of a flat file.
#[derive(Clone, Copy, Debug)]
pub struct FlatHeader {
    pub kind: ElementKind,
    pub num_vertices: usize,
    pub num_elements: usize,
    vertex_off: u64,
    elem_off: u64,
}

/// Read only the header (cheap).
pub fn read_header(path: &Path) -> std::io::Result<FlatHeader> {
    let f = std::fs::File::open(path)?;
    let mut r = BufReader::new(f);
    parse_header(&mut r)
}

fn parse_header<R: BufRead>(r: &mut R) -> std::io::Result<FlatHeader> {
    let mut line = String::new();
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    r.read_line(&mut line)?;
    if line.trim() != "pmgmesh 1" {
        return Err(bad("not a pmgmesh file"));
    }
    line.clear();
    r.read_line(&mut line)?;
    let kind = kind_from_name(
        line.trim()
            .strip_prefix("kind ")
            .ok_or_else(|| bad("kind"))?,
    )
    .ok_or_else(|| bad("unknown element kind"))?;
    line.clear();
    r.read_line(&mut line)?;
    let rest = line
        .trim()
        .strip_prefix("counts ")
        .ok_or_else(|| bad("counts"))?;
    let mut it = rest.split_whitespace();
    let num_vertices: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("nv"))?;
    let num_elements: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("ne"))?;
    line.clear();
    r.read_line(&mut line)?;
    let rest = line
        .trim()
        .strip_prefix("offsets ")
        .ok_or_else(|| bad("offsets"))?;
    let mut it = rest.split_whitespace();
    let vertex_off: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("voff"))?;
    let elem_off: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("eoff"))?;
    Ok(FlatHeader {
        kind,
        num_vertices,
        num_elements,
        vertex_off,
        elem_off,
    })
}

/// A rank's contiguous share of the file (block distribution, the form in
/// which Athena ingests the mesh before repartitioning with ParMetis).
#[derive(Clone, Debug)]
pub struct FlatSlice {
    pub header: FlatHeader,
    /// Global index of the first vertex in this slice.
    pub vertex_start: usize,
    pub coords: Vec<Vec3>,
    /// Global index of the first element in this slice.
    pub elem_start: usize,
    /// Flattened global vertex ids of the slice's elements.
    pub elem_verts: Vec<u32>,
    pub materials: Vec<u32>,
}

fn block_range(n: usize, rank: usize, nranks: usize) -> (usize, usize) {
    let lo = n * rank / nranks;
    let hi = n * (rank + 1) / nranks;
    (lo, hi)
}

fn bad_data(m: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string())
}

/// Parse `n` fixed-width vertex records from `buf`.
fn parse_vertices(buf: &[u8], n: usize) -> std::io::Result<Vec<Vec3>> {
    if buf.len() < VERTEX_RECORD * n {
        return Err(bad_data("truncated vertex section"));
    }
    let mut coords = Vec::with_capacity(n);
    for rec in buf[..VERTEX_RECORD * n].chunks(VERTEX_RECORD) {
        let s = std::str::from_utf8(rec).map_err(|_| bad_data("utf8"))?;
        let mut it = s.split_whitespace();
        let x: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_data("x"))?;
        let y: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_data("y"))?;
        let z: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_data("z"))?;
        coords.push(Vec3::new(x, y, z));
    }
    Ok(coords)
}

/// Parse `n` fixed-width element records from `buf`.
fn parse_elems(buf: &[u8], kind: ElementKind, n: usize) -> std::io::Result<(Vec<u32>, Vec<u32>)> {
    let erl = elem_record_len(kind);
    if buf.len() < erl * n {
        return Err(bad_data("truncated element section"));
    }
    let mut elem_verts = Vec::with_capacity(n * kind.nodes());
    let mut materials = Vec::with_capacity(n);
    for rec in buf[..erl * n].chunks(erl) {
        let s = std::str::from_utf8(rec).map_err(|_| bad_data("utf8"))?;
        let mut it = s.split_whitespace();
        materials.push(
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_data("mat"))?,
        );
        for _ in 0..kind.nodes() {
            elem_verts.push(
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad_data("v"))?,
            );
        }
    }
    Ok((elem_verts, materials))
}

/// Parse a whole mesh from an in-memory flat-file image (the serve
/// `ingest` path: uploaded bytes, never touching the filesystem).
pub fn read_flat_bytes(bytes: &[u8]) -> std::io::Result<Mesh> {
    let mut cur = std::io::Cursor::new(bytes);
    let header = parse_header(&mut cur)?;
    let voff = header.vertex_off as usize;
    let eoff = header.elem_off as usize;
    if voff > bytes.len() || eoff > bytes.len() {
        return Err(bad_data("section offsets past end of buffer"));
    }
    let coords = parse_vertices(&bytes[voff..], header.num_vertices)?;
    let (elem_verts, materials) = parse_elems(&bytes[eoff..], header.kind, header.num_elements)?;
    if elem_verts.iter().any(|&v| v as usize >= coords.len()) {
        return Err(bad_data("element vertex id out of range"));
    }
    Ok(Mesh::new(coords, header.kind, elem_verts, materials))
}

/// Read only rank `rank`'s share of the file: seeks straight to its vertex
/// and element byte ranges (no other bytes are read).
pub fn read_flat_slice(path: &Path, rank: usize, nranks: usize) -> std::io::Result<FlatSlice> {
    let header = read_header(path)?;
    let mut f = std::fs::File::open(path)?;

    let (v_lo, v_hi) = block_range(header.num_vertices, rank, nranks);
    f.seek(SeekFrom::Start(
        header.vertex_off + (VERTEX_RECORD * v_lo) as u64,
    ))?;
    let mut buf = vec![0u8; VERTEX_RECORD * (v_hi - v_lo)];
    f.read_exact(&mut buf)?;
    let coords = parse_vertices(&buf, v_hi - v_lo)?;

    let erl = elem_record_len(header.kind);
    let (e_lo, e_hi) = block_range(header.num_elements, rank, nranks);
    f.seek(SeekFrom::Start(header.elem_off + (erl * e_lo) as u64))?;
    let mut buf = vec![0u8; erl * (e_hi - e_lo)];
    f.read_exact(&mut buf)?;
    let (elem_verts, materials) = parse_elems(&buf, header.kind, e_hi - e_lo)?;
    Ok(FlatSlice {
        header,
        vertex_start: v_lo,
        coords,
        elem_start: e_lo,
        elem_verts,
        materials,
    })
}

/// Read the whole mesh (assembles the slices of a 1-rank read).
pub fn read_flat(path: &Path) -> std::io::Result<Mesh> {
    let s = read_flat_slice(path, 0, 1)?;
    Ok(Mesh::new(
        s.coords,
        s.header.kind,
        s.elem_verts,
        s.materials,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{block, block20};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pmg_flatfile_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_hex8() {
        let m = block(3, 2, 2, Vec3::new(3.0, 2.0, 2.0), |c| u32::from(c.x > 1.5));
        let path = tmp("hex8");
        write_flat(&m, &path).unwrap();
        let back = read_flat(&path).unwrap();
        assert_eq!(back.kind, m.kind);
        assert_eq!(back.elem_verts, m.elem_verts);
        assert_eq!(back.materials, m.materials);
        for (a, b) in back.coords.iter().zip(&m.coords) {
            assert_eq!(a, b, "coordinates must roundtrip exactly");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_hex20() {
        let m = block20(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |_| 0);
        let path = tmp("hex20");
        write_flat(&m, &path).unwrap();
        let back = read_flat(&path).unwrap();
        assert_eq!(back.kind, ElementKind::Hex20);
        assert_eq!(back.elem_verts, m.elem_verts);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parallel_slices_tile_the_mesh() {
        let m = block(4, 3, 2, Vec3::new(4.0, 3.0, 2.0), |_| 0);
        let path = tmp("slices");
        write_flat(&m, &path).unwrap();
        for nranks in [1, 2, 3, 5] {
            let mut nv = 0;
            let mut ne = 0;
            let mut coords = Vec::new();
            let mut elems = Vec::new();
            for r in 0..nranks {
                let s = read_flat_slice(&path, r, nranks).unwrap();
                assert_eq!(s.vertex_start, nv);
                assert_eq!(s.elem_start, ne);
                nv += s.coords.len();
                ne += s.materials.len();
                coords.extend(s.coords);
                elems.extend(s.elem_verts);
            }
            assert_eq!(nv, m.num_vertices(), "nranks={nranks}");
            assert_eq!(ne, m.num_elements());
            assert_eq!(coords, m.coords);
            assert_eq!(elems, m.elem_verts);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_only_read() {
        let m = block(2, 2, 2, Vec3::splat(1.0), |_| 0);
        let path = tmp("header");
        write_flat(&m, &path).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(h.num_vertices, 27);
        assert_eq!(h.num_elements, 8);
        assert_eq!(h.kind, ElementKind::Hex8);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not a mesh\n").unwrap();
        assert!(read_header(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bytes_roundtrip_matches_file_roundtrip() {
        let m = block(3, 2, 2, Vec3::new(3.0, 2.0, 2.0), |c| u32::from(c.x > 1.5));
        let bytes = write_flat_bytes(&m);
        // The in-memory image is byte-identical to what write_flat puts on
        // disk, so uploaded meshes and file meshes share one format.
        let path = tmp("bytes");
        write_flat(&m, &path).unwrap();
        assert_eq!(bytes, std::fs::read(&path).unwrap());
        std::fs::remove_file(path).ok();

        let back = read_flat_bytes(&bytes).unwrap();
        assert_eq!(back.kind, m.kind);
        assert_eq!(back.elem_verts, m.elem_verts);
        assert_eq!(back.materials, m.materials);
        for (a, b) in back.coords.iter().zip(&m.coords) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bytes_reader_rejects_truncation() {
        let m = block(2, 2, 2, Vec3::splat(1.0), |_| 0);
        let bytes = write_flat_bytes(&m);
        assert!(read_flat_bytes(&bytes[..bytes.len() - 40]).is_err());
        assert!(read_flat_bytes(b"not a mesh\n").is_err());
    }
}
