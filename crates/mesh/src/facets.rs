//! Boundary facet extraction and facet adjacency.
//!
//! §4.4 of the paper: "Assume that a list of facets has been created from
//! all of the element facets that are on a boundary of the problem (these
//! include boundaries between material types)". A facet is an element face
//! that either has no neighboring element or whose neighbor has a different
//! material. Each such (element, face) pair yields one facet, so a material
//! interface produces a facet on *each* side (with opposite normals).

use crate::mesh::Mesh;
use pmg_geometry::Vec3;
use pmg_partition::Graph;
use std::collections::HashMap;

/// A boundary facet (triangle or quadrilateral element face).
#[derive(Clone, Debug)]
pub struct Facet {
    /// Vertex ids, ordered so the normal points out of the owning element.
    pub verts: Vec<u32>,
    /// Owning element.
    pub elem: u32,
    /// Material of the owning element.
    pub material: u32,
    /// Unit outward normal (`f.norm` in the paper's algorithm).
    pub normal: Vec3,
}

impl Facet {
    /// Area-weighted normal of a (possibly warped) polygonal face, fanned
    /// about its centroid.
    fn area_normal(pts: &[Vec3]) -> Vec3 {
        let c = pts.iter().fold(Vec3::ZERO, |a, &p| a + p) / pts.len() as f64;
        let mut n = Vec3::ZERO;
        for k in 0..pts.len() {
            let a = pts[k] - c;
            let b = pts[(k + 1) % pts.len()] - c;
            n += a.cross(b) * 0.5;
        }
        n
    }
}

fn face_key(verts: &[u32]) -> [u32; 8] {
    let mut k = [u32::MAX; 8];
    for (slot, &v) in k.iter_mut().zip(verts.iter()) {
        *slot = v;
    }
    k.sort_unstable();
    k
}

/// Extract the boundary facets of `mesh` (exterior faces and material
/// interfaces).
pub fn boundary_facets(mesh: &Mesh) -> Vec<Facet> {
    // Map face key -> (element, face) occurrences.
    let faces = mesh.kind.faces();
    let mut occurrences: HashMap<[u32; 8], Vec<(u32, u8)>> =
        HashMap::with_capacity(mesh.num_elements() * faces.len() / 2);
    for e in 0..mesh.num_elements() {
        let ev = mesh.elem(e);
        for (fi, face) in faces.iter().enumerate() {
            let verts: Vec<u32> = face.iter().map(|&l| ev[l]).collect();
            occurrences
                .entry(face_key(&verts))
                .or_default()
                .push((e as u32, fi as u8));
        }
    }

    let mut out = Vec::new();
    for occ in occurrences.values() {
        debug_assert!(occ.len() <= 2, "non-manifold face");
        let on_boundary = match occ.as_slice() {
            [_] => true,
            [(e1, _), (e2, _)] => mesh.materials[*e1 as usize] != mesh.materials[*e2 as usize],
            _ => false,
        };
        if !on_boundary {
            continue;
        }
        let ring = mesh.kind.face_ring();
        for &(e, fi) in occ {
            let ev = mesh.elem(e as usize);
            let verts: Vec<u32> = faces[fi as usize].iter().map(|&l| ev[l]).collect();
            // Geometry from the corner ring (mid-edge nodes, if any, sit on
            // the ring edges).
            let pts: Vec<Vec3> = verts[..ring]
                .iter()
                .map(|&v| mesh.coords[v as usize])
                .collect();
            let an = Facet::area_normal(&pts);
            let normal = an.normalized().unwrap_or(Vec3::new(0.0, 0.0, 1.0));
            out.push(Facet {
                verts,
                elem: e,
                material: mesh.materials[e as usize],
                normal,
            });
        }
    }
    // Deterministic order regardless of hash iteration.
    out.sort_by_key(|a| (a.elem, face_key(&a.verts)));
    out
}

/// Facet adjacency graph: facets are adjacent iff they share an edge
/// (`f.adjac` in the paper's face-identification algorithm). Edges are
/// detected from the corner ring of each facet (the first
/// [`crate::mesh::ElementKind::face_ring`] vertices), which is correct for
/// linear and serendipity faces alike.
pub fn facet_adjacency(facets: &[Facet]) -> Graph {
    let mut edge_map: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (fi, f) in facets.iter().enumerate() {
        let n = if f.verts.len() == 8 {
            4
        } else {
            f.verts.len().min(4)
        };
        for k in 0..n {
            let a = f.verts[k];
            let b = f.verts[(k + 1) % n];
            let key = (a.min(b), a.max(b));
            edge_map.entry(key).or_default().push(fi as u32);
        }
    }
    let mut edges = Vec::new();
    for group in edge_map.values() {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                edges.push((group[i], group[j]));
            }
        }
    }
    Graph::from_edges(facets.len(), edges)
}

/// Centroid of each facet (mean of its vertex coordinates, mid-edge nodes
/// included). The §4.5 pipeline partitions facets by RCB over exactly
/// these points, so the serial, simulated-parallel, and transport
/// classification paths must all derive them from this one definition to
/// stay bitwise comparable.
pub fn facet_centroids(mesh: &Mesh, facets: &[Facet]) -> Vec<Vec3> {
    facets
        .iter()
        .map(|f| {
            let mut c = Vec3::ZERO;
            for &v in &f.verts {
                c += mesh.coords[v as usize];
            }
            c / f.verts.len() as f64
        })
        .collect()
}

/// For each vertex, the list of facet ids touching it.
pub fn vertex_to_facets(num_vertices: usize, facets: &[Facet]) -> Vec<Vec<u32>> {
    let mut v2f = vec![Vec::new(); num_vertices];
    for (fi, f) in facets.iter().enumerate() {
        for &v in &f.verts {
            v2f[v as usize].push(fi as u32);
        }
    }
    v2f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::block;
    use crate::mesh::ElementKind;

    #[test]
    fn single_hex_has_six_facets() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let f = boundary_facets(&m);
        assert_eq!(f.len(), 6);
        // Outward normals: sum to zero, each axis-aligned unit.
        let sum = f.iter().fold(Vec3::ZERO, |a, f| a + f.normal);
        assert!(sum.norm() < 1e-14);
        for facet in &f {
            let n = facet.normal;
            assert!((n.norm() - 1.0).abs() < 1e-14);
            assert!(
                n.x.abs() > 0.99 || n.y.abs() > 0.99 || n.z.abs() > 0.99,
                "normal {n:?} not axis aligned"
            );
        }
    }

    #[test]
    fn block_boundary_count() {
        // 3x2x1 block: boundary quads = 2*(3*2) + 2*(3*1) + 2*(2*1) = 22.
        let m = block(3, 2, 1, Vec3::new(3.0, 2.0, 1.0), |_| 0);
        let f = boundary_facets(&m);
        assert_eq!(f.len(), 22);
    }

    #[test]
    fn material_interface_facets() {
        // 2x1x1 block split into two materials: interface produces one
        // facet per side -> 10 exterior + 2 interface.
        let m = block(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |c| {
            if c.x < 1.0 {
                0
            } else {
                1
            }
        });
        let f = boundary_facets(&m);
        assert_eq!(f.len(), 12);
        let interface: Vec<_> = f
            .iter()
            .filter(|f| {
                f.verts
                    .iter()
                    .all(|&v| (m.coords[v as usize].x - 1.0).abs() < 1e-12)
            })
            .collect();
        assert_eq!(interface.len(), 2);
        assert_ne!(interface[0].material, interface[1].material);
        // Opposite normals.
        assert!((interface[0].normal + interface[1].normal).norm() < 1e-12);
    }

    #[test]
    fn adjacency_shares_edges() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let f = boundary_facets(&m);
        let g = facet_adjacency(&f);
        // On a cube, every face is adjacent to 4 others.
        for i in 0..6 {
            assert_eq!(g.degree(i), 4);
        }
    }

    #[test]
    fn centroids_sit_on_face_planes() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let f = boundary_facets(&m);
        let c = facet_centroids(&m, &f);
        assert_eq!(c.len(), f.len());
        // Each unit-cube face centroid is the face center: two coordinates
        // at 0.5, one at 0 or 1 (along the facet normal).
        for (facet, ctr) in f.iter().zip(&c) {
            let comps = [ctr.x, ctr.y, ctr.z];
            assert_eq!(
                comps.iter().filter(|&&v| (v - 0.5).abs() < 1e-14).count(),
                2
            );
            let n = facet.normal;
            let along = ctr.x * n.x.abs() + ctr.y * n.y.abs() + ctr.z * n.z.abs();
            assert!(along.abs() < 1e-14 || (along - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn vertex_facet_incidence() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let f = boundary_facets(&m);
        let v2f = vertex_to_facets(m.num_vertices(), &f);
        // Every cube corner touches exactly 3 faces.
        for lists in &v2f {
            assert_eq!(lists.len(), 3);
        }
    }

    #[test]
    fn tet_mesh_facets() {
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let m = Mesh::new(coords, ElementKind::Tet4, vec![0, 1, 2, 3], vec![0]);
        let f = boundary_facets(&m);
        assert_eq!(f.len(), 4);
        let sum = f.iter().fold(Vec3::ZERO, |a, f| a + f.normal * 1.0);
        // Normals don't cancel exactly (different areas) but the
        // area-weighted sum must.
        let mut area_sum = Vec3::ZERO;
        for facet in &f {
            let pts: Vec<Vec3> = facet.verts.iter().map(|&v| m.coords[v as usize]).collect();
            area_sum += Facet::area_normal(&pts);
        }
        assert!(area_sum.norm() < 1e-14);
        assert!(sum.norm() > 0.0); // sanity: normals exist
    }
}
