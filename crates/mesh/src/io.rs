//! Legacy-VTK export of meshes and nodal fields (for visualizing grids,
//! displacements, and material layouts in ParaView and friends).

use crate::mesh::{ElementKind, Mesh};
use std::fmt::Write as _;

/// VTK cell type ids.
fn vtk_cell_type(kind: ElementKind) -> u8 {
    match kind {
        ElementKind::Hex8 => 12,  // VTK_HEXAHEDRON
        ElementKind::Tet4 => 10,  // VTK_TETRA
        ElementKind::Hex20 => 25, // VTK_QUADRATIC_HEXAHEDRON
    }
}

/// Serialize `mesh` as an ASCII legacy VTK unstructured grid. Optional
/// per-vertex vector field (`point_data`, 3 components per vertex, e.g. a
/// displacement) and the per-element material id are included.
pub fn to_vtk(mesh: &Mesh, point_data: Option<(&str, &[f64])>) -> String {
    let nv = mesh.num_vertices();
    let ne = mesh.num_elements();
    let npe = mesh.kind.nodes();
    let mut s = String::new();
    s.push_str(
        "# vtk DataFile Version 3.0\nprometheus-rs mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n",
    );
    let _ = writeln!(s, "POINTS {nv} double");
    for p in &mesh.coords {
        let _ = writeln!(s, "{} {} {}", p.x, p.y, p.z);
    }
    let _ = writeln!(s, "CELLS {ne} {}", ne * (npe + 1));
    for e in 0..ne {
        let _ = write!(s, "{npe}");
        for &v in mesh.elem(e) {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
    }
    let _ = writeln!(s, "CELL_TYPES {ne}");
    let ct = vtk_cell_type(mesh.kind);
    for _ in 0..ne {
        let _ = writeln!(s, "{ct}");
    }
    let _ = writeln!(s, "CELL_DATA {ne}");
    s.push_str("SCALARS material int 1\nLOOKUP_TABLE default\n");
    for &m in &mesh.materials {
        let _ = writeln!(s, "{m}");
    }
    if let Some((name, data)) = point_data {
        assert_eq!(data.len(), 3 * nv, "vector point data must be 3 per vertex");
        let _ = writeln!(s, "POINT_DATA {nv}");
        let _ = writeln!(s, "VECTORS {name} double");
        for v in 0..nv {
            let _ = writeln!(s, "{} {} {}", data[3 * v], data[3 * v + 1], data[3 * v + 2]);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::block;
    use pmg_geometry::Vec3;

    #[test]
    fn vtk_structure() {
        let m = block(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |c| {
            if c.x < 1.0 {
                0
            } else {
                1
            }
        });
        let u = vec![0.5; 3 * m.num_vertices()];
        let vtk = to_vtk(&m, Some(("displacement", &u)));
        assert!(vtk.starts_with("# vtk DataFile"));
        assert!(vtk.contains("POINTS 12 double"));
        assert!(vtk.contains("CELLS 2 18"));
        assert!(vtk.contains("CELL_TYPES 2"));
        assert!(vtk.contains("SCALARS material int 1"));
        assert!(vtk.contains("VECTORS displacement double"));
        // Hex cell type.
        assert!(vtk.lines().filter(|l| *l == "12").count() >= 2);
    }

    #[test]
    fn vtk_without_point_data() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let vtk = to_vtk(&m, None);
        assert!(!vtk.contains("POINT_DATA"));
        assert!(vtk.contains("CELL_DATA 1"));
    }

    #[test]
    #[should_panic]
    fn vtk_rejects_bad_field_length() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let u = vec![0.0; 5];
        let _ = to_vtk(&m, Some(("u", &u)));
    }
}
