//! The paper's scalability workload (§7): a sphere of seventeen alternating
//! "hard" and "soft" spherical shells embedded in a soft cube — "a spherical
//! steel-belted radial inside a rubber cube" — modeled as one octant with
//! symmetry boundary conditions and crushed from the top.
//!
//! The hexahedral mesh is an o-grid: a structured core cube at the center,
//! blended through a transition zone to the innermost shell radius; then
//! spherical shell layers (cubed-sphere surface grid of three patches per
//! octant); then an outer zone blending from the sphere surface to the cube
//! boundary. The discretization is parameterized exactly as in the paper:
//! "each successive problem has one more layer of elements through each of
//! the seventeen shell layers, with an appropriate (ie, similar) refinement
//! in the other two directions".

use crate::mesh::{ElementKind, Mesh};
use pmg_geometry::Vec3;
use std::collections::HashMap;

/// Material id of the soft (Neo-Hookean rubber) regions.
pub const SOFT: u32 = 0;
/// Material id of the hard (J2 plasticity steel) shells.
pub const HARD: u32 = 1;

/// Geometry and refinement parameters for [`sphere_in_cube`].
#[derive(Clone, Copy, Debug)]
pub struct SpheresParams {
    /// Surface quads per cubed-sphere patch edge (also the core cube grid).
    pub n_surf: usize,
    /// Inner radius of the layered sphere.
    pub core_radius: f64,
    /// Outer radius of the layered sphere.
    pub sphere_radius: f64,
    /// Octant cube side (12.5 in the paper).
    pub cube_side: f64,
    /// Number of alternating shell layers (17 in the paper).
    pub n_layers: usize,
    /// Radial element layers per shell layer (the paper's refinement knob).
    pub elems_per_layer: usize,
    /// Radial element layers between the core cube and `core_radius`.
    pub n_core_zone: usize,
    /// Radial element layers between `sphere_radius` and the cube boundary.
    pub n_outer_zone: usize,
}

impl SpheresParams {
    /// The weak-scaling ladder: refinement `k` adds one element layer per
    /// shell and refines the other directions proportionally (mirrors the
    /// paper's 80 K .. 39,161 K dof ladder at reduced absolute size).
    pub fn ladder(k: usize) -> SpheresParams {
        assert!(k >= 1);
        SpheresParams {
            n_surf: 8 * k,
            core_radius: 2.5,
            sphere_radius: 7.5,
            cube_side: 12.5,
            n_layers: 17,
            elems_per_layer: k,
            n_core_zone: 2 * k,
            n_outer_zone: 4 * k,
        }
    }

    /// A small variant for unit tests (few layers, coarse surface).
    pub fn tiny() -> SpheresParams {
        SpheresParams {
            n_surf: 4,
            core_radius: 2.5,
            sphere_radius: 7.5,
            cube_side: 12.5,
            n_layers: 5,
            elems_per_layer: 1,
            n_core_zone: 1,
            n_outer_zone: 2,
        }
    }

    /// Total radial element layers outside the core cube.
    pub fn radial_layers(&self) -> usize {
        self.n_core_zone + self.n_layers * self.elems_per_layer + self.n_outer_zone
    }

    /// Half-size of the central core cube (kept well inside `core_radius`).
    pub fn core_half(&self) -> f64 {
        0.55 * self.core_radius
    }
}

/// Unique integer points on the three outer faces of the `[0, n]^3`
/// parameter cube (the cubed-sphere octant surface grid).
struct SurfaceGrid {
    n: usize,
    ids: HashMap<(u16, u16, u16), u32>,
    points: Vec<(u16, u16, u16)>,
}

impl SurfaceGrid {
    fn new(n: usize) -> SurfaceGrid {
        let mut g = SurfaceGrid {
            n,
            ids: HashMap::new(),
            points: Vec::new(),
        };
        for i in 0..=n as u16 {
            for j in 0..=n as u16 {
                g.intern((n as u16, i, j));
                g.intern((i, n as u16, j));
                g.intern((i, j, n as u16));
            }
        }
        g
    }

    fn intern(&mut self, p: (u16, u16, u16)) -> u32 {
        let next = self.points.len() as u32;
        *self.ids.entry(p).or_insert_with(|| {
            self.points.push(p);
            next
        })
    }

    fn id(&self, p: (u16, u16, u16)) -> u32 {
        self.ids[&p]
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    /// Surface quads of all three patches, each ordered counterclockwise
    /// viewed from outside the octant.
    fn quads(&self) -> Vec<[u32; 4]> {
        let n = self.n as u16;
        let mut quads = Vec::with_capacity(3 * self.n * self.n);
        for i in 0..n {
            for j in 0..n {
                // Patch x = n: +y then +z is CCW from +x.
                quads.push([
                    self.id((n, i, j)),
                    self.id((n, i + 1, j)),
                    self.id((n, i + 1, j + 1)),
                    self.id((n, i, j + 1)),
                ]);
                // Patch y = n: +z then +x is CCW from +y.
                quads.push([
                    self.id((i, n, j)),
                    self.id((i, n, j + 1)),
                    self.id((i + 1, n, j + 1)),
                    self.id((i + 1, n, j)),
                ]);
                // Patch z = n: +x then +y is CCW from +z.
                quads.push([
                    self.id((i, j, n)),
                    self.id((i + 1, j, n)),
                    self.id((i + 1, j + 1, n)),
                    self.id((i, j + 1, n)),
                ]);
            }
        }
        quads
    }
}

/// Generate the octant sphere-in-cube mesh.
pub fn sphere_in_cube(p: &SpheresParams) -> Mesh {
    let n = p.n_surf;
    let c = p.core_half();
    let surf = SurfaceGrid::new(n);
    let nsurf = surf.len();
    let ncore = (n + 1) * (n + 1) * (n + 1);
    let stations = p.radial_layers(); // hex layers; node stations 0..=stations
    let core_id = |i: usize, j: usize, k: usize| (i * (n + 1) * (n + 1) + j * (n + 1) + k) as u32;

    let mut coords = Vec::with_capacity(ncore + stations * nsurf);
    // Core cube grid.
    for i in 0..=n {
        for j in 0..=n {
            for k in 0..=n {
                coords.push(Vec3::new(
                    c * i as f64 / n as f64,
                    c * j as f64 / n as f64,
                    c * k as f64 / n as f64,
                ));
            }
        }
    }
    // Radial stations 1..=stations for each surface point.
    let station_pos = |q: (u16, u16, u16), t: usize| -> Vec3 {
        let s = Vec3::new(
            q.0 as f64 / n as f64,
            q.1 as f64 / n as f64,
            q.2 as f64 / n as f64,
        );
        let d = s.normalized().expect("surface point at origin");
        let ncz = p.n_core_zone;
        let nsh = p.n_layers * p.elems_per_layer;
        if t <= ncz {
            let f = t as f64 / ncz as f64;
            (1.0 - f) * (s * c) + f * (d * p.core_radius)
        } else if t <= ncz + nsh {
            let rho =
                p.core_radius + (t - ncz) as f64 / nsh as f64 * (p.sphere_radius - p.core_radius);
            d * rho
        } else {
            let f = (t - ncz - nsh) as f64 / p.n_outer_zone as f64;
            (1.0 - f) * (d * p.sphere_radius) + f * (s * p.cube_side)
        }
    };
    for t in 1..=stations {
        for &q in &surf.points {
            coords.push(station_pos(q, t));
        }
    }

    // Node id at station t (0 = core surface) for surface point q.
    let node_at = |q: (u16, u16, u16), t: usize| -> u32 {
        if t == 0 {
            core_id(q.0 as usize, q.1 as usize, q.2 as usize)
        } else {
            (ncore + (t - 1) * nsurf) as u32 + surf.id(q)
        }
    };

    let mut elem_verts: Vec<u32> = Vec::new();
    let mut materials: Vec<u32> = Vec::new();

    // Core interior hexes (soft).
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                elem_verts.extend_from_slice(&[
                    core_id(i, j, k),
                    core_id(i + 1, j, k),
                    core_id(i + 1, j + 1, k),
                    core_id(i, j + 1, k),
                    core_id(i, j, k + 1),
                    core_id(i + 1, j, k + 1),
                    core_id(i + 1, j + 1, k + 1),
                    core_id(i, j + 1, k + 1),
                ]);
                materials.push(SOFT);
            }
        }
    }

    // Radial hexes between consecutive stations.
    let layer_material = |t: usize| -> u32 {
        let ncz = p.n_core_zone;
        let nsh = p.n_layers * p.elems_per_layer;
        if t < ncz || t >= ncz + nsh {
            SOFT
        } else {
            let layer = (t - ncz) / p.elems_per_layer;
            if layer.is_multiple_of(2) {
                HARD
            } else {
                SOFT
            }
        }
    };
    let quad_points: Vec<[(u16, u16, u16); 4]> = {
        // Rebuild quads as raw surface points so node_at can address any
        // station.
        let id_to_point = &surf.points;
        surf.quads()
            .into_iter()
            .map(|q| {
                [
                    id_to_point[q[0] as usize],
                    id_to_point[q[1] as usize],
                    id_to_point[q[2] as usize],
                    id_to_point[q[3] as usize],
                ]
            })
            .collect()
    };
    for t in 0..stations {
        let mat = layer_material(t);
        for quad in &quad_points {
            // Bottom (station t) is the CCW-from-outside quad, top is the
            // same quad one station out: positive Jacobian.
            for &q in quad {
                elem_verts.push(node_at(q, t));
            }
            for &q in quad {
                elem_verts.push(node_at(q, t + 1));
            }
            materials.push(mat);
        }
    }

    Mesh::new(coords, ElementKind::Hex8, elem_verts, materials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_mesh_is_valid() {
        let p = SpheresParams::tiny();
        let m = sphere_in_cube(&p);
        assert!(m.num_vertices() > 0);
        // All hexes positively oriented.
        assert_eq!(m.validate_volumes(), Ok(()));
        // Volume equals the octant cube: (L^3)/?? — the octant is the full
        // [0,L]^3 box here (one octant of the symmetric problem).
        let l = p.cube_side;
        assert!(
            (m.total_volume() - l * l * l).abs() < 1e-6 * l * l * l,
            "volume {} vs {}",
            m.total_volume(),
            l * l * l
        );
    }

    #[test]
    fn node_and_element_counts() {
        let p = SpheresParams::tiny();
        let m = sphere_in_cube(&p);
        let n = p.n_surf;
        let nsurf = 3 * n * n + 3 * n + 1;
        let expect_nodes = (n + 1).pow(3) + p.radial_layers() * nsurf;
        let expect_elems = n.pow(3) + p.radial_layers() * 3 * n * n;
        assert_eq!(m.num_vertices(), expect_nodes);
        assert_eq!(m.num_elements(), expect_elems);
    }

    #[test]
    fn materials_alternate() {
        let p = SpheresParams::tiny();
        let m = sphere_in_cube(&p);
        // Some hard and some soft elements exist; hard fraction is
        // consistent with ceil(5/2)=3 of 5 shell layers.
        let hard = m.materials.iter().filter(|&&x| x == HARD).count();
        assert!(hard > 0);
        let shell_elems = p.n_layers * p.elems_per_layer * 3 * p.n_surf * p.n_surf;
        assert_eq!(hard, shell_elems / 5 * 3);
        // Hard elements sit between core_radius and sphere_radius.
        for e in 0..m.num_elements() {
            if m.materials[e] == HARD {
                let r = m.elem_centroid(e).norm();
                assert!(r > p.core_radius * 0.99 && r < p.sphere_radius * 1.01);
            }
        }
    }

    #[test]
    fn symmetry_plane_nodes_stay_on_planes() {
        let p = SpheresParams::tiny();
        let m = sphere_in_cube(&p);
        // The mesh fills [0,L]^3: nodes with min coordinate 0 exist on all
        // three symmetry planes, and the top face z=L is populated.
        let l = p.cube_side;
        for axis in 0..3 {
            let on_plane = m.vertices_where(|pt| pt[axis].abs() < 1e-12);
            assert!(
                on_plane.len() > 10,
                "too few nodes on symmetry plane {axis}"
            );
        }
        let top = m.vertices_where(|pt| (pt.z - l).abs() < 1e-9);
        assert!(top.len() >= (p.n_surf + 1) * (p.n_surf + 1));
    }

    #[test]
    fn ladder_scales() {
        let m1 = sphere_in_cube(&SpheresParams::ladder(1));
        assert!(
            m1.num_dof() > 10_000 && m1.num_dof() < 25_000,
            "{}",
            m1.num_dof()
        );
        assert_eq!(m1.validate_volumes(), Ok(()));
        // Ladder refinement multiplies dof by roughly 8.
        let p2 = SpheresParams::ladder(2);
        let n2_estimate = (p2.n_surf + 1).pow(3)
            + p2.radial_layers() * (3 * p2.n_surf * p2.n_surf + 3 * p2.n_surf + 1);
        assert!(n2_estimate > 5 * m1.num_vertices());
    }

    #[test]
    fn shells_are_spherical() {
        let p = SpheresParams::tiny();
        let m = sphere_in_cube(&p);
        // Nodes at the sphere surface station have |x| = sphere_radius.
        let on_sphere = m.vertices_where(|pt| (pt.norm() - p.sphere_radius).abs() < 1e-9);
        let nsurf = 3 * p.n_surf * p.n_surf + 3 * p.n_surf + 1;
        assert_eq!(on_sphere.len(), nsurf);
    }
}
