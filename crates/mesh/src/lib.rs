//! Unstructured 3D finite element meshes and problem generators.
//!
//! The paper's solver consumes "data that is easily available in most finite
//! element applications": vertex coordinates, element connectivity, and
//! material ids. [`mesh::Mesh`] carries exactly that. On top of it we build:
//!
//! * boundary facet extraction including material-interface boundaries
//!   ([`facets`]) — the input to the face-identification algorithm (§4.4),
//! * the element-connectivity vertex graph used by the MIS coarsener,
//! * structured generators for test problems ([`generators`]) and the
//!   paper's concentric-spheres workload ([`spheres`], §7: seventeen
//!   alternating hard/soft spherical shells embedded in a soft cube,
//!   meshed with hexahedra as one octant).

pub mod facets;
pub mod flatfile;
pub mod generators;
pub mod io;
pub mod mesh;
pub mod shard;
pub mod spheres;

pub use facets::{boundary_facets, facet_adjacency, facet_centroids, Facet};
pub use flatfile::{read_flat, read_flat_bytes, read_flat_slice, write_flat, write_flat_bytes};
pub use io::to_vtk;
pub use mesh::{ElementKind, Mesh};
pub use shard::{element_imbalance, shard_mesh, MeshShard};
pub use spheres::{sphere_in_cube, SpheresParams};
