//! Property tests of the virtual-rank runtime: layouts, distributed
//! vectors, and the ghost-exchange SpMV against arbitrary ownership maps —
//! including the overlapped (interior/boundary row-split) SpMV, which must
//! be bitwise identical to the blocking path for every ownership map.

use pmg_comm::{LocalTransport, Transport};
use pmg_parallel::matfree::test_kernel::ChainKernel;
use pmg_parallel::{DistMatFree, DistMatrix, DistVec, Layout, MachineModel, Sim, SimOperator};
use pmg_sparse::{CooBuilder, CsrMatrix, MatrixFreeKernel};
use proptest::prelude::*;
use std::sync::Arc;

/// Run both the blocking and the overlapped SpMV for every rank of `l`
/// inside one lockstep `run_ranks` call and return, per rank, the two
/// local products plus the overlap accounting.
fn run_both_spmvs(
    a: &CsrMatrix,
    l: &Arc<Layout>,
    p: usize,
    x: &[f64],
) -> Vec<(Vec<f64>, Vec<f64>, pmg_parallel::OverlapInfo)> {
    let da = DistMatrix::from_global(a, l.clone(), l.clone());
    let da = &da;
    LocalTransport::run_ranks(p, move |mut t| {
        let r = t.rank();
        let op = da.rank_op(r, 11);
        let xl: Vec<f64> = l.owned(r).iter().map(|&g| x[g as usize]).collect();
        let mut y1 = vec![0.0; op.local_rows()];
        op.spmv(&mut t, &xl, &mut y1).unwrap();
        let mut y2 = vec![0.0; op.local_rows()];
        let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
        (y1, y2, info)
    })
}

/// A matrix-free chain-ring operator distributed per `owner` over `p`
/// ranks, plus its conventionally assembled reference matrix.
fn chain_matfree(owner: &[u32], p: usize) -> (DistMatFree, CsrMatrix) {
    let n = owner.len();
    let scales: Vec<f64> = (0..n).map(|e| 1.0 + 0.1 * e as f64).collect();
    let l = Layout::from_part(owner.to_vec(), p);
    let kernels: Vec<Box<dyn MatrixFreeKernel>> = (0..p)
        .map(|r| {
            Box::new(ChainKernel::build(
                n,
                true,
                scales.clone(),
                l.owned(r).to_vec(),
            )) as Box<dyn MatrixFreeKernel>
        })
        .collect();
    let a = ChainKernel::global_matrix(n, true, &scales);
    (DistMatFree::new(l, kernels), a)
}

/// Blocking and overlapped matrix-free SpMV for every rank inside one
/// lockstep `run_ranks` call (mirror of [`run_both_spmvs`]).
fn run_both_mf_spmvs(
    da: &DistMatFree,
    p: usize,
    x: &[f64],
) -> Vec<(Vec<f64>, Vec<f64>, pmg_parallel::OverlapInfo)> {
    let l = da.row_layout().clone();
    let l = &l;
    LocalTransport::run_ranks(p, move |mut t| {
        let r = t.rank();
        let op = da.rank_op(r, 11);
        let xl: Vec<f64> = l.owned(r).iter().map(|&g| x[g as usize]).collect();
        let mut y1 = vec![0.0; op.local_rows()];
        op.spmv(&mut t, &xl, &mut y1).unwrap();
        let mut y2 = vec![0.0; op.local_rows()];
        let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
        (y1, y2, info)
    })
}

proptest! {
    #[test]
    fn layout_roundtrip(owner in proptest::collection::vec(0u32..5, 1..60)) {
        let n = owner.len();
        let l = Layout::from_part(owner.clone(), 5);
        prop_assert_eq!(l.num_global(), n);
        // Every global index appears exactly once across ranks.
        let mut seen = vec![false; n];
        for r in 0..5 {
            for &g in l.owned(r) {
                prop_assert!(!seen[g as usize]);
                seen[g as usize] = true;
                prop_assert_eq!(l.owner(g as usize), r as u32);
                prop_assert_eq!(l.owned(r)[l.local_index(g as usize) as usize], g);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn layout_with_empty_ranks_roundtrip(owner in proptest::collection::vec(0u32..3, 1..50)) {
        // Map owners onto the even ranks of a 6-rank layout, so ranks 1, 3,
        // and 5 are always empty — owner/local_index/owned must still
        // round-trip, and halo plans must build (with nothing to exchange
        // for the empty ranks).
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        let l = Layout::from_part(owner.clone(), 6);
        prop_assert_eq!(l.num_global(), n);
        let mut seen = 0usize;
        for r in 0..6 {
            if r % 2 == 1 {
                prop_assert_eq!(l.local_len(r), 0);
                prop_assert!(l.owned(r).is_empty());
            }
            for (li, &g) in l.owned(r).iter().enumerate() {
                seen += 1;
                prop_assert_eq!(l.owner(g as usize), r as u32);
                prop_assert_eq!(l.local_index(g as usize) as usize, li);
                prop_assert_eq!(owner[g as usize], r as u32);
            }
        }
        prop_assert_eq!(seen, n);
        let plan = l.halo_plan(&vec![Vec::new(); 6]);
        for rh in &plan.ranks {
            prop_assert!(rh.recv.is_empty() && rh.send.is_empty());
        }
    }

    #[test]
    fn scatter_gather_identity(
        owner in proptest::collection::vec(0u32..4, 1..50),
        vals in proptest::collection::vec(-100.0f64..100.0, 50),
    ) {
        let n = owner.len();
        let l = Layout::from_part(owner, 4);
        let g: Vec<f64> = vals[..n].to_vec();
        let d = DistVec::from_global(l, &g);
        prop_assert_eq!(d.to_global(), g);
    }

    #[test]
    fn spmv_any_ownership_matches_serial(
        owner in proptest::collection::vec(0u32..4, 10..40),
        entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 0..80),
    ) {
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        let l = Layout::from_part(owner, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let yg = dy.to_global();
        for (u, v) in yg.iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
        // Reassembly fidelity.
        prop_assert_eq!(da.to_global(), a);
    }

    #[test]
    fn dot_and_axpy_match_serial(
        owner in proptest::collection::vec(0u32..3, 1..40),
        alpha in -3.0f64..3.0,
    ) {
        let n = owner.len();
        let xg: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let yg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        let l = Layout::from_part(owner, 3);
        let mut sim = Sim::new(3, MachineModel::default());
        let x = DistVec::from_global(l.clone(), &xg);
        let mut y = DistVec::from_global(l, &yg);
        y.axpy(&mut sim, alpha, &x);
        let expect: Vec<f64> = xg.iter().zip(&yg).map(|(a, b)| b + alpha * a).collect();
        let got = y.to_global();
        for (u, v) in got.iter().zip(&expect) {
            prop_assert!((u - v).abs() < 1e-12);
        }
        let d = y.dot(&mut sim, &x);
        let expect_dot: f64 = expect.iter().zip(&xg).map(|(a, b)| a * b).sum();
        prop_assert!((d - expect_dot).abs() < 1e-9 * (1.0 + expect_dot.abs()));
    }

    #[test]
    fn overlapped_spmv_matches_blocking_any_ownership(
        owner in proptest::collection::vec(0u32..4, 10..40),
        entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 0..80),
    ) {
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin()).collect();
        let l = Layout::from_part(owner, 4);
        for (y1, y2, info) in run_both_spmvs(&a, &l, 4, &x).iter() {
            prop_assert_eq!(
                info.interior_rows + info.boundary_rows,
                y1.len() as u64
            );
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn overlapped_spmv_matches_blocking_with_empty_ranks(
        owner in proptest::collection::vec(0u32..3, 5..30),
        entries in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..60),
    ) {
        // Odd ranks of a 6-rank layout own nothing: the overlapped path
        // must handle zero-row ranks (empty interior and boundary classes)
        // without deadlocking the lockstep exchange.
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos()).collect();
        let l = Layout::from_part(owner, 6);
        for (r, (y1, y2, info)) in run_both_spmvs(&a, &l, 6, &x).iter().enumerate() {
            if r % 2 == 1 {
                prop_assert_eq!(info.interior_rows + info.boundary_rows, 0u64);
                prop_assert!(y1.is_empty());
            }
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn overlapped_spmv_matches_blocking_all_boundary(
        k in 1usize..12,
        diag in 1.0f64..5.0,
    ) {
        // Alternating ownership of a cyclic bidiagonal matrix (n even):
        // every row references a column on the other rank, so the interior
        // class is empty everywhere and the whole product runs after
        // finish() — the degenerate worst case for overlap.
        let n = 2 * k;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, diag);
            b.push(i, (i + 1) % n, -1.0);
        }
        let a = b.build();
        let owner: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin()).collect();
        let l = Layout::from_part(owner, 2);
        for (y1, y2, info) in run_both_spmvs(&a, &l, 2, &x).iter() {
            prop_assert_eq!(info.interior_rows, 0u64);
            prop_assert_eq!(info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_and_sim_any_ownership(
        owner in proptest::collection::vec(0u32..4, 10..40),
    ) {
        // The matrix-free two-phase kernel under an arbitrary ownership
        // map: blocking and overlapped transport schedules and the
        // simulated spmv must all agree bitwise, the interior/boundary
        // split must partition the owned rows, and the result must match
        // the assembled reference to rounding.
        let n = owner.len();
        let p = 4;
        let (da, a) = chain_matfree(&owner, p);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.43).sin()).collect();

        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        let l = da.row_layout().clone();
        let mut sim = Sim::new(p, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l.clone());
        da.spmv(&mut sim, &dx, &mut dy);

        for (r, (y1, y2, info)) in run_both_mf_spmvs(&da, p, &x).iter().enumerate() {
            prop_assert_eq!(info.interior_rows + info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
            // Transport == sim, bitwise, rank by rank.
            for (u, v) in y1.iter().zip(dy.part(r)) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        for (g, (u, v)) in dy.to_global().iter().zip(&y_serial).enumerate() {
            prop_assert!((u - v).abs() < 1e-10, "row {}: {} vs {}", g, u, v);
        }
        // diag_global sums the per-rank element contributions into the
        // assembled diagonal.
        for (u, v) in da.diag_global().iter().zip(&a.diag()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_with_empty_ranks(
        owner in proptest::collection::vec(0u32..3, 5..30),
    ) {
        // Odd ranks of a 6-rank layout own nothing: empty kernels must
        // produce empty products without deadlocking the lockstep
        // exchange, on both schedules.
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        if n < 3 {
            return Ok(()); // a 2-ring degenerates to a double edge
        }
        let p = 6;
        let (da, a) = chain_matfree(&owner, p);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let l = da.row_layout().clone();
        for (r, (y1, y2, info)) in run_both_mf_spmvs(&da, p, &x).iter().enumerate() {
            if r % 2 == 1 {
                prop_assert_eq!(info.interior_rows + info.boundary_rows, 0u64);
                prop_assert!(y1.is_empty());
            }
            prop_assert_eq!(y1.len(), l.local_len(r));
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        let mut sim = Sim::new(p, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        for (u, v) in dy.to_global().iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_all_boundary(
        k in 2usize..12,
    ) {
        // Alternating ownership of the ring: every element straddles the
        // rank boundary, so the interior class is empty everywhere and the
        // whole element loop runs after finish() — the degenerate worst
        // case for overlap, which must still be bitwise.
        let n = 2 * k;
        let owner: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let (da, a) = chain_matfree(&owner, 2);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.67).sin()).collect();
        for (y1, y2, info) in run_both_mf_spmvs(&da, 2, &x).iter() {
            prop_assert_eq!(info.interior_rows, 0u64);
            prop_assert_eq!(info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        let l = da.row_layout().clone();
        let mut sim = Sim::new(2, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        for (u, v) in dy.to_global().iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }
}
