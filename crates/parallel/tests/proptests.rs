//! Property tests of the virtual-rank runtime: layouts, distributed
//! vectors, and the ghost-exchange SpMV against arbitrary ownership maps —
//! including the overlapped (interior/boundary row-split) SpMV, which must
//! be bitwise identical to the blocking path for every ownership map.

use pmg_comm::{LocalTransport, Transport};
use pmg_parallel::matfree::test_kernel::ChainKernel;
use pmg_parallel::{DistMatFree, DistMatrix, DistVec, Layout, MachineModel, Sim, SimOperator};
use pmg_sparse::{CooBuilder, CsrMatrix, MatrixFreeKernel};
use proptest::prelude::*;
use std::sync::Arc;

/// Run both the blocking and the overlapped SpMV for every rank of `l`
/// inside one lockstep `run_ranks` call and return, per rank, the two
/// local products plus the overlap accounting.
fn run_both_spmvs(
    a: &CsrMatrix,
    l: &Arc<Layout>,
    p: usize,
    x: &[f64],
) -> Vec<(Vec<f64>, Vec<f64>, pmg_parallel::OverlapInfo)> {
    let da = DistMatrix::from_global(a, l.clone(), l.clone());
    let da = &da;
    LocalTransport::run_ranks(p, move |mut t| {
        let r = t.rank();
        let op = da.rank_op(r, 11);
        let xl: Vec<f64> = l.owned(r).iter().map(|&g| x[g as usize]).collect();
        let mut y1 = vec![0.0; op.local_rows()];
        op.spmv(&mut t, &xl, &mut y1).unwrap();
        let mut y2 = vec![0.0; op.local_rows()];
        let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
        (y1, y2, info)
    })
}

/// A matrix-free chain-ring operator distributed per `owner` over `p`
/// ranks, plus its conventionally assembled reference matrix.
fn chain_matfree(owner: &[u32], p: usize) -> (DistMatFree, CsrMatrix) {
    let n = owner.len();
    let scales: Vec<f64> = (0..n).map(|e| 1.0 + 0.1 * e as f64).collect();
    let l = Layout::from_part(owner.to_vec(), p);
    let kernels: Vec<Box<dyn MatrixFreeKernel>> = (0..p)
        .map(|r| {
            Box::new(ChainKernel::build(
                n,
                true,
                scales.clone(),
                l.owned(r).to_vec(),
            )) as Box<dyn MatrixFreeKernel>
        })
        .collect();
    let a = ChainKernel::global_matrix(n, true, &scales);
    (DistMatFree::new(l, kernels), a)
}

/// Blocking and overlapped matrix-free SpMV for every rank inside one
/// lockstep `run_ranks` call (mirror of [`run_both_spmvs`]).
fn run_both_mf_spmvs(
    da: &DistMatFree,
    p: usize,
    x: &[f64],
) -> Vec<(Vec<f64>, Vec<f64>, pmg_parallel::OverlapInfo)> {
    let l = da.row_layout().clone();
    let l = &l;
    LocalTransport::run_ranks(p, move |mut t| {
        let r = t.rank();
        let op = da.rank_op(r, 11);
        let xl: Vec<f64> = l.owned(r).iter().map(|&g| x[g as usize]).collect();
        let mut y1 = vec![0.0; op.local_rows()];
        op.spmv(&mut t, &xl, &mut y1).unwrap();
        let mut y2 = vec![0.0; op.local_rows()];
        let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
        (y1, y2, info)
    })
}

/// Per rank: the k-column batched transport product (blocking and
/// overlapped, interleaved storage) plus k single-column products, all in
/// one lockstep `run_ranks` call.
#[allow(clippy::type_complexity)]
fn run_mf_multi(
    da: &DistMatFree,
    p: usize,
    xs: &[Vec<f64>],
) -> Vec<(Vec<f64>, Vec<f64>, Vec<Vec<f64>>)> {
    let l = da.row_layout().clone();
    let l = &l;
    let k = xs.len();
    LocalTransport::run_ranks(p, move |mut t| {
        let r = t.rank();
        let op = da.rank_op(r, 11);
        let nl = op.local_rows();
        let mut xi = vec![0.0; nl * k];
        for (c, x) in xs.iter().enumerate() {
            for (s, &g) in l.owned(r).iter().enumerate() {
                xi[s * k + c] = x[g as usize];
            }
        }
        let mut ym = vec![0.0; nl * k];
        op.spmv_multi(&mut t, &xi, &mut ym, k).unwrap();
        let mut yo = vec![0.0; nl * k];
        op.spmv_multi_overlapped(&mut t, &xi, &mut yo, k).unwrap();
        let singles: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                let xl: Vec<f64> = l.owned(r).iter().map(|&g| x[g as usize]).collect();
                let mut y = vec![0.0; nl];
                op.spmv(&mut t, &xl, &mut y).unwrap();
                y
            })
            .collect();
        (ym, yo, singles)
    })
}

/// Assert the batched sim product and both batched transport schedules are
/// bitwise-per-column what k single applies produce, for every rank of `da`.
fn check_mf_multi_bitwise(
    da: &DistMatFree,
    p: usize,
    xs: &[Vec<f64>],
) -> Result<(), TestCaseError> {
    let k = xs.len();
    let l = da.row_layout().clone();
    let mut sim = Sim::new(p, MachineModel::default());
    let dxs: Vec<DistVec> = xs
        .iter()
        .map(|x| DistVec::from_global(l.clone(), x))
        .collect();
    let mut dys: Vec<DistVec> = (0..k).map(|_| DistVec::zeros(l.clone())).collect();
    da.spmv_multi(&mut sim, &dxs, &mut dys);
    for (c, dx) in dxs.iter().enumerate() {
        let mut dy = DistVec::zeros(l.clone());
        da.spmv(&mut sim, dx, &mut dy);
        for (u, v) in dys[c].to_global().iter().zip(dy.to_global()) {
            prop_assert_eq!(u.to_bits(), v.to_bits());
        }
    }
    for (r, (ym, yo, singles)) in run_mf_multi(da, p, xs).iter().enumerate() {
        for (c, y1) in singles.iter().enumerate() {
            prop_assert_eq!(y1.len(), l.local_len(r));
            for (s, v) in y1.iter().enumerate() {
                prop_assert_eq!(ym[s * k + c].to_bits(), v.to_bits());
                prop_assert_eq!(yo[s * k + c].to_bits(), v.to_bits());
            }
            // Transport == sim, bitwise, per rank and column.
            for (u, v) in y1.iter().zip(dys[c].part(r)) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }
    Ok(())
}

fn multi_columns(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|c| {
            (0..n)
                .map(|i| ((i + 5 * c) as f64 * 0.41).sin() - 0.2 * c as f64)
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn layout_roundtrip(owner in proptest::collection::vec(0u32..5, 1..60)) {
        let n = owner.len();
        let l = Layout::from_part(owner.clone(), 5);
        prop_assert_eq!(l.num_global(), n);
        // Every global index appears exactly once across ranks.
        let mut seen = vec![false; n];
        for r in 0..5 {
            for &g in l.owned(r) {
                prop_assert!(!seen[g as usize]);
                seen[g as usize] = true;
                prop_assert_eq!(l.owner(g as usize), r as u32);
                prop_assert_eq!(l.owned(r)[l.local_index(g as usize) as usize], g);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn layout_with_empty_ranks_roundtrip(owner in proptest::collection::vec(0u32..3, 1..50)) {
        // Map owners onto the even ranks of a 6-rank layout, so ranks 1, 3,
        // and 5 are always empty — owner/local_index/owned must still
        // round-trip, and halo plans must build (with nothing to exchange
        // for the empty ranks).
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        let l = Layout::from_part(owner.clone(), 6);
        prop_assert_eq!(l.num_global(), n);
        let mut seen = 0usize;
        for r in 0..6 {
            if r % 2 == 1 {
                prop_assert_eq!(l.local_len(r), 0);
                prop_assert!(l.owned(r).is_empty());
            }
            for (li, &g) in l.owned(r).iter().enumerate() {
                seen += 1;
                prop_assert_eq!(l.owner(g as usize), r as u32);
                prop_assert_eq!(l.local_index(g as usize) as usize, li);
                prop_assert_eq!(owner[g as usize], r as u32);
            }
        }
        prop_assert_eq!(seen, n);
        let plan = l.halo_plan(&vec![Vec::new(); 6]);
        for rh in &plan.ranks {
            prop_assert!(rh.recv.is_empty() && rh.send.is_empty());
        }
    }

    #[test]
    fn scatter_gather_identity(
        owner in proptest::collection::vec(0u32..4, 1..50),
        vals in proptest::collection::vec(-100.0f64..100.0, 50),
    ) {
        let n = owner.len();
        let l = Layout::from_part(owner, 4);
        let g: Vec<f64> = vals[..n].to_vec();
        let d = DistVec::from_global(l, &g);
        prop_assert_eq!(d.to_global(), g);
    }

    #[test]
    fn spmv_any_ownership_matches_serial(
        owner in proptest::collection::vec(0u32..4, 10..40),
        entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 0..80),
    ) {
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        let l = Layout::from_part(owner, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let yg = dy.to_global();
        for (u, v) in yg.iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
        // Reassembly fidelity.
        prop_assert_eq!(da.to_global(), a);
    }

    #[test]
    fn dot_and_axpy_match_serial(
        owner in proptest::collection::vec(0u32..3, 1..40),
        alpha in -3.0f64..3.0,
    ) {
        let n = owner.len();
        let xg: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let yg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        let l = Layout::from_part(owner, 3);
        let mut sim = Sim::new(3, MachineModel::default());
        let x = DistVec::from_global(l.clone(), &xg);
        let mut y = DistVec::from_global(l, &yg);
        y.axpy(&mut sim, alpha, &x);
        let expect: Vec<f64> = xg.iter().zip(&yg).map(|(a, b)| b + alpha * a).collect();
        let got = y.to_global();
        for (u, v) in got.iter().zip(&expect) {
            prop_assert!((u - v).abs() < 1e-12);
        }
        let d = y.dot(&mut sim, &x);
        let expect_dot: f64 = expect.iter().zip(&xg).map(|(a, b)| a * b).sum();
        prop_assert!((d - expect_dot).abs() < 1e-9 * (1.0 + expect_dot.abs()));
    }

    #[test]
    fn overlapped_spmv_matches_blocking_any_ownership(
        owner in proptest::collection::vec(0u32..4, 10..40),
        entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 0..80),
    ) {
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin()).collect();
        let l = Layout::from_part(owner, 4);
        for (y1, y2, info) in run_both_spmvs(&a, &l, 4, &x).iter() {
            prop_assert_eq!(
                info.interior_rows + info.boundary_rows,
                y1.len() as u64
            );
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn overlapped_spmv_matches_blocking_with_empty_ranks(
        owner in proptest::collection::vec(0u32..3, 5..30),
        entries in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..60),
    ) {
        // Odd ranks of a 6-rank layout own nothing: the overlapped path
        // must handle zero-row ranks (empty interior and boundary classes)
        // without deadlocking the lockstep exchange.
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos()).collect();
        let l = Layout::from_part(owner, 6);
        for (r, (y1, y2, info)) in run_both_spmvs(&a, &l, 6, &x).iter().enumerate() {
            if r % 2 == 1 {
                prop_assert_eq!(info.interior_rows + info.boundary_rows, 0u64);
                prop_assert!(y1.is_empty());
            }
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn overlapped_spmv_matches_blocking_all_boundary(
        k in 1usize..12,
        diag in 1.0f64..5.0,
    ) {
        // Alternating ownership of a cyclic bidiagonal matrix (n even):
        // every row references a column on the other rank, so the interior
        // class is empty everywhere and the whole product runs after
        // finish() — the degenerate worst case for overlap.
        let n = 2 * k;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, diag);
            b.push(i, (i + 1) % n, -1.0);
        }
        let a = b.build();
        let owner: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin()).collect();
        let l = Layout::from_part(owner, 2);
        for (y1, y2, info) in run_both_spmvs(&a, &l, 2, &x).iter() {
            prop_assert_eq!(info.interior_rows, 0u64);
            prop_assert_eq!(info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_and_sim_any_ownership(
        owner in proptest::collection::vec(0u32..4, 10..40),
    ) {
        // The matrix-free two-phase kernel under an arbitrary ownership
        // map: blocking and overlapped transport schedules and the
        // simulated spmv must all agree bitwise, the interior/boundary
        // split must partition the owned rows, and the result must match
        // the assembled reference to rounding.
        let n = owner.len();
        let p = 4;
        let (da, a) = chain_matfree(&owner, p);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.43).sin()).collect();

        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        let l = da.row_layout().clone();
        let mut sim = Sim::new(p, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l.clone());
        da.spmv(&mut sim, &dx, &mut dy);

        for (r, (y1, y2, info)) in run_both_mf_spmvs(&da, p, &x).iter().enumerate() {
            prop_assert_eq!(info.interior_rows + info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
            // Transport == sim, bitwise, rank by rank.
            for (u, v) in y1.iter().zip(dy.part(r)) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        for (g, (u, v)) in dy.to_global().iter().zip(&y_serial).enumerate() {
            prop_assert!((u - v).abs() < 1e-10, "row {}: {} vs {}", g, u, v);
        }
        // diag_global sums the per-rank element contributions into the
        // assembled diagonal.
        for (u, v) in da.diag_global().iter().zip(&a.diag()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_with_empty_ranks(
        owner in proptest::collection::vec(0u32..3, 5..30),
    ) {
        // Odd ranks of a 6-rank layout own nothing: empty kernels must
        // produce empty products without deadlocking the lockstep
        // exchange, on both schedules.
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        let n = owner.len();
        if n < 3 {
            return Ok(()); // a 2-ring degenerates to a double edge
        }
        let p = 6;
        let (da, a) = chain_matfree(&owner, p);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let l = da.row_layout().clone();
        for (r, (y1, y2, info)) in run_both_mf_spmvs(&da, p, &x).iter().enumerate() {
            if r % 2 == 1 {
                prop_assert_eq!(info.interior_rows + info.boundary_rows, 0u64);
                prop_assert!(y1.is_empty());
            }
            prop_assert_eq!(y1.len(), l.local_len(r));
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        let mut sim = Sim::new(p, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        for (u, v) in dy.to_global().iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn matfree_overlapped_matches_blocking_all_boundary(
        k in 2usize..12,
    ) {
        // Alternating ownership of the ring: every element straddles the
        // rank boundary, so the interior class is empty everywhere and the
        // whole element loop runs after finish() — the degenerate worst
        // case for overlap, which must still be bitwise.
        let n = 2 * k;
        let owner: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let (da, a) = chain_matfree(&owner, 2);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.67).sin()).collect();
        for (y1, y2, info) in run_both_mf_spmvs(&da, 2, &x).iter() {
            prop_assert_eq!(info.interior_rows, 0u64);
            prop_assert_eq!(info.boundary_rows, y1.len() as u64);
            for (u, v) in y1.iter().zip(y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        let l = da.row_layout().clone();
        let mut sim = Sim::new(2, MachineModel::default());
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        for (u, v) in dy.to_global().iter().zip(&y_serial) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_bsr3_apply_multi_bitwise_per_column(
        entries in proptest::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 1..100),
        nb in 2usize..5,
        k in 1usize..6,
    ) {
        // Arbitrary sparsity: apply_multi on interleaved storage must be
        // bitwise, column for column, what k single applies produce — for
        // scalar CSR rows and 3x3-blocked BSR3 rows alike.
        let n = 3 * nb;
        let mut b = CooBuilder::new(n, n);
        for (i, j, v) in entries {
            if i < n && j < n {
                b.push(i, j, v);
            }
        }
        let a = b.build();
        let bsr = pmg_sparse::Bsr3Matrix::from_csr(&a);
        let ops: [&dyn pmg_sparse::Operator; 2] = [&a, &bsr];
        let x: Vec<f64> = (0..n * k).map(|i| ((i * 11 % 17) as f64 - 8.0) * 0.23).collect();
        for op in ops {
            let mut ym = vec![0.0; n * k];
            op.apply_multi(&x, &mut ym, k);
            for c in 0..k {
                let xc: Vec<f64> = (0..n).map(|i| x[i * k + c]).collect();
                let mut yc = vec![0.0; n];
                op.apply(&xc, &mut yc);
                for (s, v) in yc.iter().enumerate() {
                    prop_assert_eq!(ym[s * k + c].to_bits(), v.to_bits());
                }
            }
        }
    }

    #[test]
    fn matfree_multi_bitwise_per_column_any_ownership(
        owner in proptest::collection::vec(0u32..4, 10..40),
        k in 1usize..6,
    ) {
        // The batched matrix-free product under an arbitrary ownership
        // map: sim routing and both transport schedules must each be
        // bitwise-per-column equal to k single applies.
        let (da, _) = chain_matfree(&owner, 4);
        let xs = multi_columns(owner.len(), k);
        check_mf_multi_bitwise(&da, 4, &xs)?;
    }

    #[test]
    fn matfree_multi_bitwise_with_empty_ranks(
        owner in proptest::collection::vec(0u32..3, 5..30),
        k in 1usize..5,
    ) {
        // Odd ranks of a 6-rank layout own nothing: the k-wide exchange
        // and empty batched kernels must stay lockstep and bitwise.
        let owner: Vec<u32> = owner.into_iter().map(|r| 2 * r).collect();
        if owner.len() < 3 {
            return Ok(()); // a 2-ring degenerates to a double edge
        }
        let (da, _) = chain_matfree(&owner, 6);
        let xs = multi_columns(owner.len(), k);
        check_mf_multi_bitwise(&da, 6, &xs)?;
    }

    #[test]
    fn matfree_multi_bitwise_all_boundary(
        h in 2usize..12,
        k in 1usize..5,
    ) {
        // Alternating ownership of the ring: every element straddles the
        // rank boundary, the interior class is empty everywhere, and the
        // whole batched element loop runs after finish_multi().
        let n = 2 * h;
        let owner: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let (da, _) = chain_matfree(&owner, 2);
        let xs = multi_columns(n, k);
        check_mf_multi_bitwise(&da, 2, &xs)?;
    }
}
