//! Rank-partitioned sparse matrices with ghost-column exchange plans.
//!
//! Each rank owns the matrix rows of its owned indices (the paper's Athena
//! builds processor sub-domains so that "each processor can compute all
//! rows of the stiffness matrix associated with vertices that have been
//! partitioned to the processor"). Columns referencing other ranks' indices
//! are *ghosts*: before a product, ghost values are fetched from their
//! owners — one message per neighbor rank, 8 bytes per ghost value — which
//! is exactly what the BSP machine model charges.

use crate::halo::HaloPlan;
use crate::layout::Layout;
use crate::rank::RankOp;
use crate::sim::Sim;
use crate::vec::DistVec;
use pmg_sparse::{Bsr3Matrix, CooBuilder, CsrMatrix};
use rayon::prelude::*;
use std::sync::Arc;

/// One rank's share of a distributed matrix.
#[derive(Clone, Debug)]
struct RankMat {
    /// Local rows × owned columns.
    diag: CsrMatrix,
    /// Local rows × ghost columns.
    off: CsrMatrix,
    /// 3x3-blocked copies of `diag`/`off`, present when the operator was
    /// promoted via [`DistMatrix::try_block3`]. The scalar matrices are
    /// kept: block-Jacobi factors `diag` directly ([`DistMatrix::local_block`]).
    diag_bsr: Option<Bsr3Matrix>,
    off_bsr: Option<Bsr3Matrix>,
    /// Padded ghost column of each ghost (`off_bsr` works on whole vertex
    /// blocks; ghost columns missing from a block — e.g. dropped by
    /// Dirichlet constraints — become explicit zero columns).
    ghost_pad: Vec<u32>,
    /// Global ids of ghost columns, ascending.
    ghosts: Vec<u32>,
    /// Row classes for communication/computation overlap, fixed at
    /// distribution time: *interior* rows reference no ghost column (their
    /// product needs nothing from the wire), *boundary* rows do. Ascending
    /// local row ids; together they partition `0..diag.nrows()`.
    interior: Vec<u32>,
    boundary: Vec<u32>,
    /// Block-row classes for the BSR3 path (a block row is boundary when
    /// any of its three scalar rows is), filled by `try_block3`.
    interior_b: Vec<u32>,
    boundary_b: Vec<u32>,
}

/// A sparse matrix distributed by rows over `row_layout`, whose columns are
/// distributed by `col_layout` (square operators share one layout;
/// restriction operators use coarse rows × fine columns).
#[derive(Clone, Debug)]
pub struct DistMatrix {
    row_layout: Arc<Layout>,
    col_layout: Arc<Layout>,
    ranks: Vec<RankMat>,
    /// Persistent coalesced ghost-exchange plan over `col_layout` (built
    /// once at distribution time, cached on the layout).
    plan: Arc<HaloPlan>,
    spmv_flops: Vec<u64>,
    spmv_traffic: Vec<(u64, u64)>,
}

/// Build rank `r`'s share of a row-distributed matrix: split its owned
/// rows into the diagonal (owned-column) and off-diagonal (ghost-column)
/// blocks and classify rows for the communication/computation overlap.
///
/// This is the one construction path for per-rank operator blocks — both
/// the orchestrated [`DistMatrix::from_global`] and the SPMD distributed
/// setup ([`RankMatrix::from_owned_rows`]) call it, which is what makes
/// the two bitwise identical by construction: only the owned rows of `a`
/// are ever read.
fn build_rank_mat(a: &CsrMatrix, row_layout: &Layout, col_layout: &Layout, r: usize) -> RankMat {
    let rows = row_layout.owned(r);
    // Collect ghost columns.
    let mut ghosts: Vec<u32> = Vec::new();
    for &g in rows {
        let (cols, _) = a.row(g as usize);
        for &j in cols {
            if col_layout.owner(j) as usize != r {
                ghosts.push(j as u32);
            }
        }
    }
    ghosts.sort_unstable();
    ghosts.dedup();
    let ghost_local: std::collections::HashMap<u32, usize> =
        ghosts.iter().enumerate().map(|(l, &g)| (g, l)).collect();

    let nlocal = rows.len();
    let mut diag = CooBuilder::new(nlocal, col_layout.local_len(r));
    let mut off = CooBuilder::new(nlocal, ghosts.len());
    for (li, &g) in rows.iter().enumerate() {
        let (cols, vals) = a.row(g as usize);
        for (&j, &v) in cols.iter().zip(vals) {
            if col_layout.owner(j) as usize == r {
                diag.push(li, col_layout.local_index(j) as usize, v);
            } else {
                off.push(li, ghost_local[&(j as u32)], v);
            }
        }
    }
    let off = off.build();
    // Classify rows once: a row with any ghost-column entry is
    // boundary, the rest are interior and can be computed while
    // the halo messages are in flight.
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    for li in 0..nlocal {
        if off.row(li).0.is_empty() {
            interior.push(li as u32);
        } else {
            boundary.push(li as u32);
        }
    }
    RankMat {
        diag: diag.build(),
        off,
        diag_bsr: None,
        off_bsr: None,
        ghost_pad: Vec::new(),
        ghosts,
        interior,
        boundary,
        interior_b: Vec::new(),
        boundary_b: Vec::new(),
    }
}

/// Twin of [`build_rank_mat`] reading an **owned-rows** CSR instead of a
/// global one: `a_local` has one row per owned global row (row `li` is
/// global row `row_layout.owned(r)[li]`, column ids global). The iteration
/// order — ghost collection, then the diag/off split — is identical to
/// [`build_rank_mat`] on a global matrix whose owned rows equal
/// `a_local`'s, so the resulting blocks are **bitwise identical**; this is
/// what lets the sharded ingest path build rank shares without any rank
/// materializing a global CSR.
fn build_rank_mat_local(
    a_local: &CsrMatrix,
    row_layout: &Layout,
    col_layout: &Layout,
    r: usize,
) -> RankMat {
    let rows = row_layout.owned(r);
    assert_eq!(a_local.nrows(), rows.len(), "one local row per owned row");
    // Collect ghost columns.
    let mut ghosts: Vec<u32> = Vec::new();
    for li in 0..rows.len() {
        let (cols, _) = a_local.row(li);
        for &j in cols {
            if col_layout.owner(j) as usize != r {
                ghosts.push(j as u32);
            }
        }
    }
    ghosts.sort_unstable();
    ghosts.dedup();
    let ghost_local: std::collections::HashMap<u32, usize> =
        ghosts.iter().enumerate().map(|(l, &g)| (g, l)).collect();

    let nlocal = rows.len();
    let mut diag = CooBuilder::new(nlocal, col_layout.local_len(r));
    let mut off = CooBuilder::new(nlocal, ghosts.len());
    for li in 0..nlocal {
        let (cols, vals) = a_local.row(li);
        for (&j, &v) in cols.iter().zip(vals) {
            if col_layout.owner(j) as usize == r {
                diag.push(li, col_layout.local_index(j) as usize, v);
            } else {
                off.push(li, ghost_local[&(j as u32)], v);
            }
        }
    }
    let off = off.build();
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    for li in 0..nlocal {
        if off.row(li).0.is_empty() {
            interior.push(li as u32);
        } else {
            boundary.push(li as u32);
        }
    }
    RankMat {
        diag: diag.build(),
        off,
        diag_bsr: None,
        off_bsr: None,
        ghost_pad: Vec::new(),
        ghosts,
        interior,
        boundary,
        interior_b: Vec::new(),
        boundary_b: Vec::new(),
    }
}

/// Structural BSR3 eligibility — computable from the (replicated) layouts
/// alone, with no communication: global dimensions are multiples of 3 and
/// every rank's owned rows/columns come in vertex-aligned triples.
fn block3_eligible(row_layout: &Layout, col_layout: &Layout) -> bool {
    let nranks = row_layout.num_ranks();
    row_layout.num_global().is_multiple_of(3)
        && col_layout.num_global().is_multiple_of(3)
        && (0..nranks)
            .all(|r| aligned_triples(row_layout.owned(r)) && aligned_triples(col_layout.owned(r)))
}

/// Promote one rank's blocks to BSR3 storage (shared by
/// [`DistMatrix::try_block3`] and [`RankMatrix::try_block3`]; the caller
/// has already checked [`block3_eligible`]).
fn promote_block3(m: &mut RankMat) {
    m.diag_bsr = Some(Bsr3Matrix::from_csr(&m.diag));
    // Remap ghost columns onto whole vertex blocks, then block the
    // padded off-diagonal part. Ghosts are ascending, so padded
    // columns are ascending too and the scalar accumulation order
    // is preserved.
    let mut blocks: Vec<u32> = m.ghosts.iter().map(|&g| g / 3).collect();
    blocks.dedup();
    m.ghost_pad = m
        .ghosts
        .iter()
        .map(|&g| {
            let b = blocks.partition_point(|&w| w < g / 3) as u32;
            3 * b + g % 3
        })
        .collect();
    let mut pad = CooBuilder::new(m.off.nrows(), 3 * blocks.len());
    for (i, j, v) in m.off.iter() {
        pad.push(i, m.ghost_pad[j] as usize, v);
    }
    m.off_bsr = Some(Bsr3Matrix::from_csr(&pad.build()));
    // Block-row classes: a block row is boundary when any of its
    // three scalar rows references a ghost. `boundary` is
    // ascending, so mapping to block ids and deduplicating keeps
    // the ascending order.
    let mut bb: Vec<u32> = m.boundary.iter().map(|&r| r / 3).collect();
    bb.dedup();
    m.interior_b = (0..(m.diag.nrows() / 3) as u32)
        .filter(|br| bb.binary_search(br).is_err())
        .collect();
    m.boundary_b = bb;
}

impl DistMatrix {
    /// Distribute a global CSR matrix.
    pub fn from_global(
        a: &CsrMatrix,
        row_layout: Arc<Layout>,
        col_layout: Arc<Layout>,
    ) -> DistMatrix {
        assert_eq!(a.nrows(), row_layout.num_global());
        assert_eq!(a.ncols(), col_layout.num_global());
        let nranks = row_layout.num_ranks();
        assert_eq!(nranks, col_layout.num_ranks());

        let ranks: Vec<RankMat> = (0..nranks)
            .into_par_iter()
            .map(|r| build_rank_mat(a, &row_layout, &col_layout, r))
            .collect();

        // Persistent exchange plan: the Sim charges exactly the plan's
        // messages, the transports send exactly the plan's messages.
        let ghost_lists: Vec<Vec<u32>> = ranks.iter().map(|m| m.ghosts.clone()).collect();
        let plan = col_layout.halo_plan(&ghost_lists);

        let spmv_flops = ranks
            .iter()
            .map(|m| 2 * (m.diag.nnz() + m.off.nnz()) as u64)
            .collect();
        let spmv_traffic = plan
            .ranks
            .iter()
            .map(|rh| (rh.recv.len() as u64, 8 * rh.recv_len() as u64))
            .collect();
        DistMatrix {
            row_layout,
            col_layout,
            ranks,
            plan,
            spmv_flops,
            spmv_traffic,
        }
    }

    /// Distribute a global CSR matrix and promote it to the 3x3-blocked
    /// storage when the partition is vertex-aligned (see
    /// [`DistMatrix::try_block3`]); falls back to scalar CSR otherwise.
    pub fn from_global_blocked(
        a: &CsrMatrix,
        row_layout: Arc<Layout>,
        col_layout: Arc<Layout>,
    ) -> DistMatrix {
        let mut m = DistMatrix::from_global(a, row_layout, col_layout);
        m.try_block3();
        m
    }

    /// Promote the per-rank `diag`/`off` blocks to [`Bsr3Matrix`] storage so
    /// `spmv` runs on contiguous 3x3 tiles (PETSc's BAIJ optimization for
    /// 3-dof displacement operators).
    ///
    /// Structural eligibility — all of:
    /// - global dimensions are multiples of 3,
    /// - every rank's owned rows and owned columns come in vertex-aligned
    ///   triples `(3v, 3v+1, 3v+2)` (the layout produced by
    ///   `Layout::expand_dofs(vertex_layout, 3)`).
    ///
    /// Ghost columns need not form whole blocks: the off-diagonal part is
    /// padded up to whole vertex blocks (missing columns — e.g. dropped by
    /// Dirichlet constraints — become explicit zero columns).
    ///
    /// Returns whether promotion happened; ineligible operators are left
    /// untouched (scalar CSR path). The blocked product is numerically
    /// identical to the scalar one: blocks materialize explicit zeros and
    /// preserve the per-row accumulation order.
    pub fn try_block3(&mut self) -> bool {
        if !block3_eligible(&self.row_layout, &self.col_layout) {
            return false;
        }
        self.ranks.par_iter_mut().for_each(promote_block3);
        pmg_telemetry::counter_add("spmv/bsr3_promoted", 1);
        true
    }

    /// Whether products run through the 3x3-blocked path.
    pub fn bsr3_routed(&self) -> bool {
        !self.ranks.is_empty() && self.ranks.iter().all(|m| m.diag_bsr.is_some())
    }

    pub fn row_layout(&self) -> &Arc<Layout> {
        &self.row_layout
    }

    pub fn col_layout(&self) -> &Arc<Layout> {
        &self.col_layout
    }

    pub fn num_global_rows(&self) -> usize {
        self.row_layout.num_global()
    }

    pub fn nnz(&self) -> usize {
        self.ranks.iter().map(|m| m.diag.nnz() + m.off.nnz()).sum()
    }

    /// The local (owned-rows × owned-columns) block of rank `r` — the
    /// sub-domain matrix the block-Jacobi smoother factors.
    pub fn local_block(&self, r: usize) -> &CsrMatrix {
        &self.ranks[r].diag
    }

    /// Per-rank ghost counts (diagnostics).
    pub fn ghost_counts(&self) -> Vec<usize> {
        self.ranks.iter().map(|m| m.ghosts.len()).collect()
    }

    /// The persistent ghost-exchange plan this operator replays.
    pub fn halo_plan(&self) -> &Arc<HaloPlan> {
        &self.plan
    }

    /// Rank `r`'s borrowed view for SPMD execution over a real transport,
    /// bound to message tag `tag`. The view computes bitwise the same
    /// product as [`DistMatrix::spmv`] (including the BSR3 branch).
    pub fn rank_op(&self, r: usize, tag: u32) -> RankOp<'_> {
        let m = &self.ranks[r];
        RankOp {
            diag: &m.diag,
            off: &m.off,
            diag_bsr: m.diag_bsr.as_ref(),
            off_bsr: m.off_bsr.as_ref(),
            ghost_pad: &m.ghost_pad,
            nghosts: m.ghosts.len(),
            interior: &m.interior,
            boundary: &m.boundary,
            interior_b: &m.interior_b,
            boundary_b: &m.boundary_b,
            halo: &self.plan.ranks[r],
            tag,
        }
    }

    /// Per-rank `(interior, boundary)` row counts of the overlap row split
    /// (diagnostics; boundary rows are the ones whose product must wait for
    /// the halo).
    pub fn overlap_row_counts(&self) -> Vec<(usize, usize)> {
        self.ranks
            .iter()
            .map(|m| (m.interior.len(), m.boundary.len()))
            .collect()
    }

    /// `y = A x`, charging one ghost exchange plus one compute superstep.
    pub fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec) {
        assert!(
            Arc::ptr_eq(x.layout(), &self.col_layout),
            "x layout mismatch"
        );
        assert!(
            Arc::ptr_eq(y.layout(), &self.row_layout),
            "y layout mismatch"
        );
        sim.exchange(&self.spmv_traffic);
        if self.bsr3_routed() {
            pmg_telemetry::counter_add("spmv/bsr3_routed", 1);
        }

        // Replay the persistent plan: each rank's ghost buffer is filled
        // from its peers' send lists (reads other ranks' parts — the
        // simulated message payloads), then compute rank-locally in
        // parallel. Same pack order as the real transports.
        let plan = &self.plan;
        let ghost_vals: Vec<Vec<f64>> = self
            .ranks
            .par_iter()
            .enumerate()
            .map(|(r, m)| {
                let mut gv = vec![0.0; m.ghosts.len()];
                for msg in &plan.ranks[r].recv {
                    let peer = msg.peer as usize;
                    let send = plan.ranks[peer].send_to(r);
                    for (&slot, &li) in msg.idx.iter().zip(&send.idx) {
                        gv[slot as usize] = x.part(peer)[li as usize];
                    }
                }
                gv
            })
            .collect();

        let parts: Vec<Vec<f64>> = self
            .ranks
            .par_iter()
            .enumerate()
            .map(|(r, m)| {
                let xl = x.part(r);
                let mut yl = vec![0.0; m.diag.nrows()];
                match &m.diag_bsr {
                    Some(db) => db.spmv(xl, &mut yl),
                    None => m.diag.spmv(xl, &mut yl),
                }
                if m.off.nnz() > 0 {
                    let mut tmp = vec![0.0; m.off.nrows()];
                    match &m.off_bsr {
                        Some(ob) => {
                            let mut padded = vec![0.0; ob.ncols()];
                            for (l, &p) in m.ghost_pad.iter().enumerate() {
                                padded[p as usize] = ghost_vals[r][l];
                            }
                            ob.spmv(&padded, &mut tmp);
                        }
                        None => m.off.spmv(&ghost_vals[r], &mut tmp),
                    }
                    for (a, b) in yl.iter_mut().zip(&tmp) {
                        *a += b;
                    }
                }
                yl
            })
            .collect();
        for (r, p) in parts.into_iter().enumerate() {
            y.part_mut(r).copy_from_slice(&p);
        }
        sim.compute(&self.spmv_flops);
    }

    /// Reassemble the global matrix (testing / coarse-grid gather).
    pub fn to_global(&self) -> CsrMatrix {
        let n = self.row_layout.num_global();
        let m = self.col_layout.num_global();
        let mut b = CooBuilder::new(n, m);
        for (r, mat) in self.ranks.iter().enumerate() {
            let rows = self.row_layout.owned(r);
            let cols_owned = self.col_layout.owned(r);
            for (li, &g) in rows.iter().enumerate() {
                let (cols, vals) = mat.diag.row(li);
                for (&lj, &v) in cols.iter().zip(vals) {
                    b.push(g as usize, cols_owned[lj] as usize, v);
                }
                let (gcols, gvals) = mat.off.row(li);
                for (&lj, &v) in gcols.iter().zip(gvals) {
                    b.push(g as usize, mat.ghosts[lj] as usize, v);
                }
            }
        }
        b.build()
    }
}

/// **One** rank's owned share of a distributed matrix — the SPMD-setup
/// counterpart of [`DistMatrix`], which holds *all* ranks' shares.
///
/// Built by the distributed setup pipeline, where each rank constructs
/// only its own operator blocks from the rows it owns (reading nothing of
/// other ranks' rows beyond the replicated layout). The construction goes
/// through the same `build_rank_mat` path as [`DistMatrix::from_global`],
/// so for the same layouts and the same global values the per-rank blocks
/// are **bitwise identical** to the orchestrated distribution — the parity
/// the `RankHierarchy::extract` oracle tests pin.
///
/// Construction is two-phase because the halo-exchange plan needs every
/// rank's ghost list: build locally ([`RankMatrix::from_owned_rows`]),
/// exchange [`RankMatrix::ghosts`] over a transport collective, then
/// [`RankMatrix::install_plan`] with all ranks' lists (each rank builds the
/// identical plan from the identical inputs, cached on the layout).
#[derive(Clone, Debug)]
pub struct RankMatrix {
    rank: usize,
    row_layout: Arc<Layout>,
    col_layout: Arc<Layout>,
    mat: RankMat,
    plan: Option<Arc<HaloPlan>>,
}

impl RankMatrix {
    /// Build this rank's diagonal/off-diagonal blocks from its owned rows
    /// of `a`. Only `row_layout.owned(rank)` rows of `a` are read.
    pub fn from_owned_rows(
        a: &CsrMatrix,
        row_layout: Arc<Layout>,
        col_layout: Arc<Layout>,
        rank: usize,
    ) -> RankMatrix {
        assert_eq!(a.nrows(), row_layout.num_global());
        assert_eq!(a.ncols(), col_layout.num_global());
        let mat = build_rank_mat(a, &row_layout, &col_layout, rank);
        RankMatrix {
            rank,
            row_layout,
            col_layout,
            mat,
            plan: None,
        }
    }

    /// Build this rank's blocks from an **owned-rows** CSR: one row per
    /// owned global row (row `li` = global row `row_layout.owned(rank)[li]`,
    /// columns global), as produced by per-rank assembly or the sharded
    /// Galerkin kernel. Bitwise identical to [`RankMatrix::from_owned_rows`]
    /// on a global matrix with the same owned rows — but no rank ever holds
    /// that global matrix.
    pub fn from_local_rows(
        a_local: &CsrMatrix,
        row_layout: Arc<Layout>,
        col_layout: Arc<Layout>,
        rank: usize,
    ) -> RankMatrix {
        assert_eq!(a_local.ncols(), col_layout.num_global());
        let mat = build_rank_mat_local(a_local, &row_layout, &col_layout, rank);
        RankMatrix {
            rank,
            row_layout,
            col_layout,
            mat,
            plan: None,
        }
    }

    /// Resident bytes of this rank's share: scalar diag/off CSR blocks plus
    /// any promoted BSR3 copies (which keep the scalar blocks alive — the
    /// block-Jacobi smoother factors `diag` directly) and the ghost-column
    /// map. Feeds the `mem/level{N}/operator_bytes` gauges of the sharded
    /// setup path.
    pub fn memory_bytes(&self) -> u64 {
        use pmg_sparse::Operator;
        let m = &self.mat;
        let mut bytes = m.diag.memory_bytes() + m.off.memory_bytes();
        if let Some(b) = &m.diag_bsr {
            bytes += b.memory_bytes();
        }
        if let Some(b) = &m.off_bsr {
            bytes += b.memory_bytes();
        }
        bytes += (m.ghosts.len() * 4 + m.ghost_pad.len() * 4) as u64;
        bytes += ((m.interior.len() + m.boundary.len()) * 4) as u64;
        bytes
    }

    /// This rank's ghost-column global ids (ascending) — the payload each
    /// rank contributes to the setup's ghost-list allgather.
    pub fn ghosts(&self) -> &[u32] {
        &self.mat.ghosts
    }

    /// Install the halo-exchange plan from **all** ranks' ghost lists (as
    /// returned by the allgather of [`RankMatrix::ghosts`]). Every rank
    /// derives the identical plan from the identical replicated inputs;
    /// the layout's fingerprint cache dedupes plan construction.
    pub fn install_plan(&mut self, ghost_lists: &[Vec<u32>]) {
        assert_eq!(ghost_lists.len(), self.col_layout.num_ranks());
        assert_eq!(ghost_lists[self.rank], self.mat.ghosts);
        self.plan = Some(self.col_layout.halo_plan(ghost_lists));
    }

    /// Promote this rank's blocks to BSR3 storage when the layouts are
    /// vertex-aligned (same structural test as [`DistMatrix::try_block3`],
    /// evaluated on the replicated layouts — no communication). Returns
    /// whether promotion happened.
    pub fn try_block3(&mut self) -> bool {
        if !block3_eligible(&self.row_layout, &self.col_layout) {
            return false;
        }
        promote_block3(&mut self.mat);
        if self.rank == 0 {
            pmg_telemetry::counter_add("spmv/bsr3_promoted", 1);
        }
        true
    }

    /// Whether products run through the 3x3-blocked path.
    pub fn bsr3_routed(&self) -> bool {
        self.mat.diag_bsr.is_some()
    }

    /// The rank this share belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Row ownership layout (replicated).
    pub fn row_layout(&self) -> &Arc<Layout> {
        &self.row_layout
    }

    /// Column ownership layout (replicated).
    pub fn col_layout(&self) -> &Arc<Layout> {
        &self.col_layout
    }

    /// The local (owned-rows × owned-columns) block — what the block-Jacobi
    /// smoother factors.
    pub fn local_block(&self) -> &CsrMatrix {
        &self.mat.diag
    }

    /// Stored nonzeros of this rank's share (diag + off).
    pub fn nnz_local(&self) -> usize {
        self.mat.diag.nnz() + self.mat.off.nnz()
    }

    /// This rank's operator view for SPMD execution, bound to message tag
    /// `tag`. Panics if [`RankMatrix::install_plan`] has not run.
    pub fn rank_op(&self, tag: u32) -> RankOp<'_> {
        let plan = self
            .plan
            .as_ref()
            .expect("RankMatrix::rank_op before install_plan (halo plan missing)");
        let m = &self.mat;
        RankOp {
            diag: &m.diag,
            off: &m.off,
            diag_bsr: m.diag_bsr.as_ref(),
            off_bsr: m.off_bsr.as_ref(),
            ghost_pad: &m.ghost_pad,
            nghosts: m.ghosts.len(),
            interior: &m.interior,
            boundary: &m.boundary,
            interior_b: &m.interior_b,
            boundary_b: &m.boundary_b,
            halo: &plan.ranks[self.rank],
            tag,
        }
    }
}

/// Do the (ascending) global ids form whole vertex blocks `(3v, 3v+1, 3v+2)`?
fn aligned_triples(ids: &[u32]) -> bool {
    ids.len().is_multiple_of(3)
        && ids
            .chunks_exact(3)
            .all(|t| t[0].is_multiple_of(3) && t[1] == t[0] + 1 && t[2] == t[0] + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::MachineModel;
    use rand::{Rng, SeedableRng};

    /// 1D Laplacian.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let n = 23;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        for p in [1, 2, 3, 5, 8] {
            let l = Layout::block(n, p);
            let mut sim = Sim::new(p, MachineModel::default());
            let da = DistMatrix::from_global(&a, l.clone(), l.clone());
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l);
            da.spmv(&mut sim, &dx, &mut dy);
            let yg = dy.to_global();
            for (u, v) in yg.iter().zip(&y_serial) {
                assert!((u - v).abs() < 1e-13, "p={p}");
            }
        }
    }

    #[test]
    fn spmv_with_scattered_layout() {
        // Round-robin ownership maximizes ghosts; result must not change.
        let n = 17;
        let a = laplacian(n);
        let owner: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let l = Layout::from_part(owner, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let mut expect = vec![0.0; n];
        a.spmv(&x, &mut expect);
        assert_eq!(dy.to_global(), expect);
    }

    #[test]
    fn to_global_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut b = CooBuilder::new(12, 12);
        for _ in 0..40 {
            b.push(
                rng.gen_range(0..12),
                rng.gen_range(0..12),
                rng.gen_range(-5.0..5.0),
            );
        }
        let a = b.build();
        let l = Layout::block(12, 3);
        let da = DistMatrix::from_global(&a, l.clone(), l);
        assert_eq!(da.to_global(), a);
    }

    #[test]
    fn rectangular_restriction() {
        // R: 3x6, coarse rows on 2 ranks, fine cols on 2 ranks.
        let mut b = CooBuilder::new(3, 6);
        for c in 0..3 {
            b.push(c, 2 * c, 1.0);
            b.push(c, 2 * c + 1, 0.5);
        }
        let r = b.build();
        let lc = Layout::block(3, 2);
        let lf = Layout::block(6, 2);
        let mut sim = Sim::new(2, MachineModel::default());
        let dr = DistMatrix::from_global(&r, lc.clone(), lf.clone());
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let dx = DistVec::from_global(lf, &x);
        let mut dy = DistVec::zeros(lc);
        dr.spmv(&mut sim, &dx, &mut dy);
        let mut expect = vec![0.0; 3];
        r.spmv(&x, &mut expect);
        assert_eq!(dy.to_global(), expect);
    }

    /// Vertex-block tridiagonal operator with dense 3x3 blocks.
    fn block_laplacian(nb: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(3 * nb, 3 * nb);
        for v in 0..nb {
            for i in 0..3 {
                for j in 0..3 {
                    b.push(3 * v + i, 3 * v + j, if i == j { 4.0 } else { -0.5 });
                    if v > 0 {
                        b.push(3 * v + i, 3 * (v - 1) + j, -0.25);
                    }
                    if v + 1 < nb {
                        b.push(3 * v + i, 3 * (v + 1) + j, -0.25);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn blocked_spmv_bitwise_matches_scalar() {
        let nb = 11;
        let a = block_laplacian(nb);
        // Vertex-aligned round-robin partition: maximizes ghosts while
        // keeping every rank's rows/ghosts in whole vertex triples.
        let p = 3;
        let mut owner = vec![0u32; 3 * nb];
        for v in 0..nb {
            for c in 0..3 {
                owner[3 * v + c] = (v % p) as u32;
            }
        }
        let l = Layout::from_part(owner, p);
        let scalar = DistMatrix::from_global(&a, l.clone(), l.clone());
        let blocked = DistMatrix::from_global_blocked(&a, l.clone(), l.clone());
        assert!(!scalar.bsr3_routed());
        assert!(blocked.bsr3_routed());

        let x: Vec<f64> = (0..3 * nb).map(|i| (i as f64 * 0.7).sin()).collect();
        let dx = DistVec::from_global(l.clone(), &x);
        let mut y1 = DistVec::zeros(l.clone());
        let mut y2 = DistVec::zeros(l);
        let mut sim = Sim::new(p, MachineModel::default());
        scalar.spmv(&mut sim, &dx, &mut y1);
        blocked.spmv(&mut sim, &dx, &mut y2);
        // Bitwise equal: blocks preserve per-row accumulation order and
        // explicit zeros only add 0.0.
        assert_eq!(y1.to_global(), y2.to_global());
    }

    #[test]
    fn from_local_rows_is_bitwise_from_owned_rows() {
        // The sharded-ingest construction contract: building from an
        // owned-rows CSR (no global matrix in sight) reproduces the
        // global-matrix construction bit for bit, including the BSR3
        // promotion decision.
        let nb = 9;
        let a = block_laplacian(nb);
        let n = 3 * nb;
        for p in [1usize, 2, 4] {
            let l = Layout::block(n, p);
            for rank in 0..p {
                let mut global = RankMatrix::from_owned_rows(&a, l.clone(), l.clone(), rank);
                let local_rows = a.extract_rows(l.owned(rank));
                let mut sharded =
                    RankMatrix::from_local_rows(&local_rows, l.clone(), l.clone(), rank);
                assert_eq!(sharded.ghosts(), global.ghosts(), "p={p} rank={rank}");
                assert_eq!(sharded.nnz_local(), global.nnz_local());
                let (gd, sd) = (global.local_block(), sharded.local_block());
                assert_eq!(sd.row_ptr(), gd.row_ptr());
                assert_eq!(sd.col_idx(), gd.col_idx());
                for (x, y) in sd.vals().iter().zip(gd.vals()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                // Same structural promotion decision (layouts only), same
                // resident accounting afterward.
                assert_eq!(sharded.try_block3(), global.try_block3());
                assert_eq!(sharded.memory_bytes(), global.memory_bytes());
                if rank < p.min(l.local_len(rank)) {
                    assert!(sharded.memory_bytes() > 0);
                }
            }
        }
    }

    #[test]
    fn blocked_spmv_pads_partial_ghost_blocks() {
        // Inter-vertex coupling through a single scalar column, so ghost
        // columns do NOT form whole vertex blocks (as after Dirichlet
        // column elimination). The off part must be padded, not rejected.
        let nb = 6;
        let mut b = CooBuilder::new(3 * nb, 3 * nb);
        for v in 0..nb {
            for i in 0..3 {
                for j in 0..3 {
                    b.push(3 * v + i, 3 * v + j, if i == j { 4.0 } else { -0.5 });
                }
                if v + 1 < nb {
                    b.push(3 * v + i, 3 * (v + 1) + 1, -0.25);
                }
                if v > 0 {
                    b.push(3 * v + i, 3 * (v - 1) + 2, -0.125);
                }
            }
        }
        let a = b.build();
        let mut owner = vec![0u32; 3 * nb];
        for v in 0..nb {
            for c in 0..3 {
                owner[3 * v + c] = (v / 3) as u32;
            }
        }
        let l = Layout::from_part(owner, 2);
        let scalar = DistMatrix::from_global(&a, l.clone(), l.clone());
        let blocked = DistMatrix::from_global_blocked(&a, l.clone(), l.clone());
        assert!(blocked.bsr3_routed());
        // Each rank sees exactly one partial ghost block column.
        assert_eq!(blocked.ghost_counts(), vec![1, 1]);

        let x: Vec<f64> = (0..3 * nb).map(|i| (i as f64 * 1.3).cos()).collect();
        let dx = DistVec::from_global(l.clone(), &x);
        let mut y1 = DistVec::zeros(l.clone());
        let mut y2 = DistVec::zeros(l);
        let mut sim = Sim::new(2, MachineModel::default());
        scalar.spmv(&mut sim, &dx, &mut y1);
        blocked.spmv(&mut sim, &dx, &mut y2);
        assert_eq!(y1.to_global(), y2.to_global());
    }

    #[test]
    fn block3_rejects_misaligned_partitions() {
        // Scalar round-robin ownership splits vertex triples across ranks.
        let nb = 6;
        let a = block_laplacian(nb);
        let owner: Vec<u32> = (0..3 * nb).map(|i| (i % 2) as u32).collect();
        let l = Layout::from_part(owner, 2);
        let mut m = DistMatrix::from_global(&a, l.clone(), l.clone());
        assert!(!m.try_block3());
        assert!(!m.bsr3_routed());
        // Dimensions not a multiple of 3.
        let a17 = laplacian(17);
        let l17 = Layout::block(17, 2);
        let mut m17 = DistMatrix::from_global(&a17, l17.clone(), l17);
        assert!(!m17.try_block3());
    }

    #[test]
    fn rank_matrix_matches_dist_matrix_shares() {
        // The SPMD-setup path (each rank builds only its own share) must
        // produce exactly the orchestrated distribution's per-rank blocks,
        // plans, and BSR3 promotion — the bitwise-parity foundation of
        // RankHierarchy::build_distributed.
        let nb = 9;
        let a = block_laplacian(nb);
        let p = 3;
        let mut owner = vec![0u32; 3 * nb];
        for v in 0..nb {
            for c in 0..3 {
                owner[3 * v + c] = (v % p) as u32;
            }
        }
        let l = Layout::from_part(owner, p);
        let dist = DistMatrix::from_global_blocked(&a, l.clone(), l.clone());
        assert!(dist.bsr3_routed());

        // Each "rank" builds locally, then the ghost lists are exchanged
        // (here: collected in a plain Vec, standing in for the allgather).
        let mut shares: Vec<RankMatrix> = (0..p)
            .map(|r| RankMatrix::from_owned_rows(&a, l.clone(), l.clone(), r))
            .collect();
        let ghost_lists: Vec<Vec<u32>> = shares.iter().map(|s| s.ghosts().to_vec()).collect();
        for s in &mut shares {
            s.install_plan(&ghost_lists);
            assert!(s.try_block3());
        }

        for (r, s) in shares.iter().enumerate() {
            let m = &dist.ranks[r];
            assert_eq!(s.mat.diag, m.diag, "rank {r} diag");
            assert_eq!(s.mat.off, m.off, "rank {r} off");
            assert_eq!(s.mat.ghosts, m.ghosts, "rank {r} ghosts");
            assert_eq!(s.mat.ghost_pad, m.ghost_pad, "rank {r} ghost_pad");
            assert_eq!(s.mat.interior, m.interior, "rank {r} interior");
            assert_eq!(s.mat.boundary, m.boundary, "rank {r} boundary");
            assert_eq!(s.mat.interior_b, m.interior_b, "rank {r} interior_b");
            assert_eq!(s.mat.boundary_b, m.boundary_b, "rank {r} boundary_b");
            // The plan is structurally the same object contents.
            let sp = s.plan.as_ref().unwrap();
            assert_eq!(sp.ranks.len(), dist.plan.ranks.len());
            assert_eq!(
                sp.ranks[r].recv.len(),
                dist.plan.ranks[r].recv.len(),
                "rank {r} recv manifest"
            );
        }
    }

    #[test]
    fn ghosts_and_traffic_counted() {
        let n = 16;
        let a = laplacian(n);
        let l = Layout::block(n, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        // Interior ranks of a block-partitioned 1D Laplacian have 2 ghosts.
        let ghosts = da.ghost_counts();
        assert_eq!(ghosts, vec![1, 2, 2, 1]);
        let dx = DistVec::zeros(l.clone());
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let phases = sim.finish();
        let p = &phases["default"];
        assert_eq!(p.ranks[1].msgs, 2);
        assert_eq!(p.ranks[1].bytes, 16);
        assert!(p.modeled_comm_time > 0.0);
    }
}
