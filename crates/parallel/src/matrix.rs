//! Rank-partitioned sparse matrices with ghost-column exchange plans.
//!
//! Each rank owns the matrix rows of its owned indices (the paper's Athena
//! builds processor sub-domains so that "each processor can compute all
//! rows of the stiffness matrix associated with vertices that have been
//! partitioned to the processor"). Columns referencing other ranks' indices
//! are *ghosts*: before a product, ghost values are fetched from their
//! owners — one message per neighbor rank, 8 bytes per ghost value — which
//! is exactly what the BSP machine model charges.

use crate::layout::Layout;
use crate::sim::Sim;
use crate::vec::DistVec;
use pmg_sparse::{CooBuilder, CsrMatrix};
use rayon::prelude::*;
use std::sync::Arc;

/// One rank's share of a distributed matrix.
#[derive(Clone, Debug)]
struct RankMat {
    /// Local rows × owned columns.
    diag: CsrMatrix,
    /// Local rows × ghost columns.
    off: CsrMatrix,
    /// Global ids of ghost columns, ascending.
    ghosts: Vec<u32>,
    /// Distinct ranks that own our ghosts (message count per exchange).
    neighbors: u64,
}

/// A sparse matrix distributed by rows over `row_layout`, whose columns are
/// distributed by `col_layout` (square operators share one layout;
/// restriction operators use coarse rows × fine columns).
#[derive(Clone, Debug)]
pub struct DistMatrix {
    row_layout: Arc<Layout>,
    col_layout: Arc<Layout>,
    ranks: Vec<RankMat>,
    spmv_flops: Vec<u64>,
    spmv_traffic: Vec<(u64, u64)>,
}

impl DistMatrix {
    /// Distribute a global CSR matrix.
    pub fn from_global(
        a: &CsrMatrix,
        row_layout: Arc<Layout>,
        col_layout: Arc<Layout>,
    ) -> DistMatrix {
        assert_eq!(a.nrows(), row_layout.num_global());
        assert_eq!(a.ncols(), col_layout.num_global());
        let nranks = row_layout.num_ranks();
        assert_eq!(nranks, col_layout.num_ranks());

        let ranks: Vec<RankMat> = (0..nranks)
            .into_par_iter()
            .map(|r| {
                let rows = row_layout.owned(r);
                // Collect ghost columns.
                let mut ghosts: Vec<u32> = Vec::new();
                for &g in rows {
                    let (cols, _) = a.row(g as usize);
                    for &j in cols {
                        if col_layout.owner(j) as usize != r {
                            ghosts.push(j as u32);
                        }
                    }
                }
                ghosts.sort_unstable();
                ghosts.dedup();
                let ghost_local: std::collections::HashMap<u32, usize> =
                    ghosts.iter().enumerate().map(|(l, &g)| (g, l)).collect();

                let nlocal = rows.len();
                let mut diag = CooBuilder::new(nlocal, col_layout.local_len(r));
                let mut off = CooBuilder::new(nlocal, ghosts.len());
                for (li, &g) in rows.iter().enumerate() {
                    let (cols, vals) = a.row(g as usize);
                    for (&j, &v) in cols.iter().zip(vals) {
                        if col_layout.owner(j) as usize == r {
                            diag.push(li, col_layout.local_index(j) as usize, v);
                        } else {
                            off.push(li, ghost_local[&(j as u32)], v);
                        }
                    }
                }
                let mut owners: Vec<u32> = ghosts
                    .iter()
                    .map(|&g| col_layout.owner(g as usize))
                    .collect();
                owners.sort_unstable();
                owners.dedup();
                RankMat {
                    diag: diag.build(),
                    off: off.build(),
                    ghosts,
                    neighbors: owners.len() as u64,
                }
            })
            .collect();

        let spmv_flops = ranks
            .iter()
            .map(|m| 2 * (m.diag.nnz() + m.off.nnz()) as u64)
            .collect();
        let spmv_traffic = ranks
            .iter()
            .map(|m| (m.neighbors, 8 * m.ghosts.len() as u64))
            .collect();
        DistMatrix {
            row_layout,
            col_layout,
            ranks,
            spmv_flops,
            spmv_traffic,
        }
    }

    pub fn row_layout(&self) -> &Arc<Layout> {
        &self.row_layout
    }

    pub fn col_layout(&self) -> &Arc<Layout> {
        &self.col_layout
    }

    pub fn num_global_rows(&self) -> usize {
        self.row_layout.num_global()
    }

    pub fn nnz(&self) -> usize {
        self.ranks.iter().map(|m| m.diag.nnz() + m.off.nnz()).sum()
    }

    /// The local (owned-rows × owned-columns) block of rank `r` — the
    /// sub-domain matrix the block-Jacobi smoother factors.
    pub fn local_block(&self, r: usize) -> &CsrMatrix {
        &self.ranks[r].diag
    }

    /// Per-rank ghost counts (diagnostics).
    pub fn ghost_counts(&self) -> Vec<usize> {
        self.ranks.iter().map(|m| m.ghosts.len()).collect()
    }

    /// `y = A x`, charging one ghost exchange plus one compute superstep.
    pub fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec) {
        assert!(
            Arc::ptr_eq(x.layout(), &self.col_layout),
            "x layout mismatch"
        );
        assert!(
            Arc::ptr_eq(y.layout(), &self.row_layout),
            "y layout mismatch"
        );
        sim.exchange(&self.spmv_traffic);

        // Gather all ghost values (reads other ranks' parts — the simulated
        // message payloads), then compute rank-locally in parallel.
        let ghost_vals: Vec<Vec<f64>> = self
            .ranks
            .par_iter()
            .map(|m| {
                m.ghosts
                    .iter()
                    .map(|&g| {
                        let owner = self.col_layout.owner(g as usize) as usize;
                        x.part(owner)[self.col_layout.local_index(g as usize) as usize]
                    })
                    .collect()
            })
            .collect();

        let parts: Vec<Vec<f64>> = self
            .ranks
            .par_iter()
            .enumerate()
            .map(|(r, m)| {
                let xl = x.part(r);
                let mut yl = vec![0.0; m.diag.nrows()];
                m.diag.spmv(xl, &mut yl);
                if m.off.nnz() > 0 {
                    let mut tmp = vec![0.0; m.off.nrows()];
                    m.off.spmv(&ghost_vals[r], &mut tmp);
                    for (a, b) in yl.iter_mut().zip(&tmp) {
                        *a += b;
                    }
                }
                yl
            })
            .collect();
        for (r, p) in parts.into_iter().enumerate() {
            y.part_mut(r).copy_from_slice(&p);
        }
        sim.compute(&self.spmv_flops);
    }

    /// Reassemble the global matrix (testing / coarse-grid gather).
    pub fn to_global(&self) -> CsrMatrix {
        let n = self.row_layout.num_global();
        let m = self.col_layout.num_global();
        let mut b = CooBuilder::new(n, m);
        for (r, mat) in self.ranks.iter().enumerate() {
            let rows = self.row_layout.owned(r);
            let cols_owned = self.col_layout.owned(r);
            for (li, &g) in rows.iter().enumerate() {
                let (cols, vals) = mat.diag.row(li);
                for (&lj, &v) in cols.iter().zip(vals) {
                    b.push(g as usize, cols_owned[lj] as usize, v);
                }
                let (gcols, gvals) = mat.off.row(li);
                for (&lj, &v) in gcols.iter().zip(gvals) {
                    b.push(g as usize, mat.ghosts[lj] as usize, v);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::MachineModel;
    use rand::{Rng, SeedableRng};

    /// 1D Laplacian.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let n = 23;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);

        for p in [1, 2, 3, 5, 8] {
            let l = Layout::block(n, p);
            let mut sim = Sim::new(p, MachineModel::default());
            let da = DistMatrix::from_global(&a, l.clone(), l.clone());
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l);
            da.spmv(&mut sim, &dx, &mut dy);
            let yg = dy.to_global();
            for (u, v) in yg.iter().zip(&y_serial) {
                assert!((u - v).abs() < 1e-13, "p={p}");
            }
        }
    }

    #[test]
    fn spmv_with_scattered_layout() {
        // Round-robin ownership maximizes ghosts; result must not change.
        let n = 17;
        let a = laplacian(n);
        let owner: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let l = Layout::from_part(owner, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let mut expect = vec![0.0; n];
        a.spmv(&x, &mut expect);
        assert_eq!(dy.to_global(), expect);
    }

    #[test]
    fn to_global_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut b = CooBuilder::new(12, 12);
        for _ in 0..40 {
            b.push(
                rng.gen_range(0..12),
                rng.gen_range(0..12),
                rng.gen_range(-5.0..5.0),
            );
        }
        let a = b.build();
        let l = Layout::block(12, 3);
        let da = DistMatrix::from_global(&a, l.clone(), l);
        assert_eq!(da.to_global(), a);
    }

    #[test]
    fn rectangular_restriction() {
        // R: 3x6, coarse rows on 2 ranks, fine cols on 2 ranks.
        let mut b = CooBuilder::new(3, 6);
        for c in 0..3 {
            b.push(c, 2 * c, 1.0);
            b.push(c, 2 * c + 1, 0.5);
        }
        let r = b.build();
        let lc = Layout::block(3, 2);
        let lf = Layout::block(6, 2);
        let mut sim = Sim::new(2, MachineModel::default());
        let dr = DistMatrix::from_global(&r, lc.clone(), lf.clone());
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let dx = DistVec::from_global(lf, &x);
        let mut dy = DistVec::zeros(lc);
        dr.spmv(&mut sim, &dx, &mut dy);
        let mut expect = vec![0.0; 3];
        r.spmv(&x, &mut expect);
        assert_eq!(dy.to_global(), expect);
    }

    #[test]
    fn ghosts_and_traffic_counted() {
        let n = 16;
        let a = laplacian(n);
        let l = Layout::block(n, 4);
        let mut sim = Sim::new(4, MachineModel::default());
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        // Interior ranks of a block-partitioned 1D Laplacian have 2 ghosts.
        let ghosts = da.ghost_counts();
        assert_eq!(ghosts, vec![1, 2, 2, 1]);
        let dx = DistVec::zeros(l.clone());
        let mut dy = DistVec::zeros(l);
        da.spmv(&mut sim, &dx, &mut dy);
        let phases = sim.finish();
        let p = &phases["default"];
        assert_eq!(p.ranks[1].msgs, 2);
        assert_eq!(p.ranks[1].bytes, 16);
        assert!(p.modeled_comm_time > 0.0);
    }
}
