//! Simulated distributed-memory runtime ("MPI on the 960-processor IBM
//! cluster" stand-in).
//!
//! The paper runs flat-MPI PETSc kernels over up to 960 processors. We
//! reproduce the *algorithmic* parallel structure exactly — a partition of
//! every vector and matrix over `P` virtual ranks, ghost exchanges before
//! off-rank matrix columns are touched, allreduce for inner products — while
//! executing on one address space (virtual ranks run data-parallel under
//! rayon). Every superstep is charged to per-rank performance counters and
//! to a BSP machine model (latency `α`, inverse bandwidth `β`, per-rank flop
//! rate), from which the paper's efficiency metrics (§6: work efficiency
//! `e_w`, flop scale efficiency `e_s^F`, communication efficiency `e_c`,
//! load balance) are recomputed. Absolute seconds differ from the 1999
//! hardware; the efficiency *shapes* are machine-model driven and documented
//! in EXPERIMENTS.md.
//!
//! * [`layout::Layout`] — ownership map of global indices over ranks,
//! * [`sim::Sim`] — superstep accounting and the machine model,
//! * [`vec::DistVec`] — rank-partitioned vectors,
//! * [`matrix::DistMatrix`] — rank-partitioned CSR with ghost-column plans.

pub mod halo;
pub mod layout;
pub mod matfree;
pub mod matrix;
pub mod rank;
pub mod sim;
pub mod vec;

pub use halo::{HaloMsg, HaloPlan, RankHalo};
pub use layout::Layout;
pub use matfree::{DistMatFree, MfRankOp, SimOperator};
pub use matrix::{DistMatrix, RankMatrix};
pub use rank::{OverlapInfo, RankOp};
pub use sim::{MachineModel, PhaseStats, RankCounters, Sim};
pub use vec::DistVec;
