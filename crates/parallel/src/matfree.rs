//! Distributed matrix-free operator application.
//!
//! [`DistMatFree`] is the matrix-free sibling of
//! [`DistMatrix`]: the same row partition, the same
//! persistent coalesced [`HaloPlan`](crate::halo::HaloPlan) (requested
//! through the layout's fingerprint cache, so a matrix-free operator whose
//! ghost sets match an assembled one *reuses its plan*), the same BSP
//! charges — but each rank's product runs an element-loop kernel
//! ([`pmg_sparse::MatrixFreeKernel`]) instead of stored CSR/BSR3 values.
//!
//! The kernel contract splits the product in two phases. `apply_interior`
//! needs only owned values (interior elements plus Dirichlet rows);
//! `apply_boundary` accumulates the ghost-touching elements. Running
//! interior-then-boundary in that fixed order makes the blocking and
//! overlapped schedules bitwise identical — the same argument as the
//! assembled row-split, except rows may receive contributions from *both*
//! phases (an owned row shared by interior and boundary elements).
//!
//! [`SimOperator`] abstracts "something `spmv`-shaped under the Sim" so the
//! Krylov loop and the multigrid cycle can hold either representation.

use crate::halo::RankHalo;
use crate::layout::Layout;
use crate::rank::OverlapInfo;
use crate::sim::Sim;
use crate::vec::DistVec;
use crate::DistMatrix;
use pmg_comm::{CommError, HaloExchange, Transport};
use pmg_sparse::MatrixFreeKernel;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// A distributed operator the orchestrated (Sim) solve can apply: either an
/// assembled [`DistMatrix`] or a matrix-free [`DistMatFree`]. Square
/// operators only — row and column layouts coincide.
pub trait SimOperator: Send + Sync {
    /// The row (= column) partition of the operator.
    fn row_layout(&self) -> &Arc<Layout>;
    /// `y = A x`, charging one ghost exchange plus one compute superstep.
    fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec);
    /// `ys[c] = A xs[c]` for `k = xs.len()` vectors in one pass. Column `c`
    /// of the result must be **bitwise identical** to
    /// [`SimOperator::spmv`] on `xs[c]` — blocked smoothing/Krylov relies
    /// on this to keep per-column histories exactly equal to k independent
    /// solves. The default applies one vector at a time; batched backends
    /// override it to read the operator once for all k vectors (one wider
    /// ghost exchange, one compute superstep).
    fn spmv_multi(&self, sim: &mut Sim, xs: &[DistVec], ys: &mut [DistVec]) {
        assert_eq!(xs.len(), ys.len(), "spmv_multi needs matching x/y counts");
        for (x, y) in xs.iter().zip(ys) {
            self.spmv(sim, x, y);
        }
    }
    /// Global diagonal (Jacobi-type setup and diagnostics).
    fn diag_global(&self) -> Vec<f64>;
}

impl SimOperator for DistMatrix {
    fn row_layout(&self) -> &Arc<Layout> {
        DistMatrix::row_layout(self)
    }

    fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec) {
        DistMatrix::spmv(self, sim, x, y)
    }

    fn diag_global(&self) -> Vec<f64> {
        self.to_global().diag()
    }
}

/// A matrix-free operator distributed by rows over a [`Layout`]: one
/// two-phase element-loop kernel per rank plus the persistent ghost
/// exchange plan over the kernels' ghost sets.
pub struct DistMatFree {
    layout: Arc<Layout>,
    kernels: Vec<Box<dyn MatrixFreeKernel>>,
    plan: Arc<crate::halo::HaloPlan>,
    spmv_flops: Vec<u64>,
    spmv_traffic: Vec<(u64, u64)>,
}

impl DistMatFree {
    /// Wrap per-rank kernels (one per layout rank, rows matching the
    /// layout's owned counts). The exchange plan is requested from the
    /// layout's fingerprint cache: kernels whose ghost sets equal an
    /// assembled operator's get a `comm/plan_reuse` hit, not a rebuild.
    pub fn new(layout: Arc<Layout>, kernels: Vec<Box<dyn MatrixFreeKernel>>) -> DistMatFree {
        assert_eq!(kernels.len(), layout.num_ranks(), "one kernel per rank");
        for (r, k) in kernels.iter().enumerate() {
            assert_eq!(
                k.local_rows(),
                layout.local_len(r),
                "kernel rows must match layout rank {r}"
            );
        }
        let ghost_lists: Vec<Vec<u32>> = kernels.iter().map(|k| k.ghosts().to_vec()).collect();
        let plan = layout.halo_plan(&ghost_lists);
        let spmv_flops = kernels.iter().map(|k| k.flops_per_apply()).collect();
        let spmv_traffic = plan
            .ranks
            .iter()
            .map(|rh| (rh.recv.len() as u64, 8 * rh.recv_len() as u64))
            .collect();
        DistMatFree {
            layout,
            kernels,
            plan,
            spmv_flops,
            spmv_traffic,
        }
    }

    /// Build the kernels from a [`MatrixFreeFactory`](pmg_sparse::MatrixFreeFactory)
    /// over the layout's owned index lists.
    pub fn from_factory(
        layout: Arc<Layout>,
        factory: &dyn pmg_sparse::MatrixFreeFactory,
    ) -> DistMatFree {
        let owned: Vec<&[u32]> = (0..layout.num_ranks()).map(|r| layout.owned(r)).collect();
        let kernels = factory.build_kernels(&owned);
        DistMatFree::new(layout, kernels)
    }

    /// The row (= column) partition.
    pub fn row_layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// The persistent ghost-exchange plan this operator replays.
    pub fn halo_plan(&self) -> &Arc<crate::halo::HaloPlan> {
        &self.plan
    }

    /// Per-rank ghost counts (diagnostics).
    pub fn ghost_counts(&self) -> Vec<usize> {
        self.kernels.iter().map(|k| k.ghosts().len()).collect()
    }

    /// Per-rank `(interior, boundary)` row counts of the overlap split.
    pub fn overlap_row_counts(&self) -> Vec<(usize, usize)> {
        self.kernels
            .iter()
            .map(|k| (k.interior_rows() as usize, k.boundary_rows() as usize))
            .collect()
    }

    /// Estimated resident bytes of rank `r`'s kernel (shared element data
    /// plus its maps; ranks sharing `Arc`ed element data each report it).
    pub fn kernel_memory_bytes(&self, r: usize) -> u64 {
        self.kernels[r].memory_bytes()
    }

    /// Rank `r`'s borrowed view for SPMD execution over a real transport,
    /// bound to message tag `tag`. Computes bitwise the same product as
    /// [`DistMatFree::spmv`].
    pub fn rank_op(&self, r: usize, tag: u32) -> MfRankOp<'_> {
        MfRankOp {
            kernel: self.kernels[r].as_ref(),
            halo: &self.plan.ranks[r],
            tag,
        }
    }

    /// `y = A x`, charging one ghost exchange plus one compute superstep.
    /// Same plan replay and ghost pack order as the real transports, so the
    /// simulated and SPMD paths agree bitwise at a fixed layout.
    pub fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec) {
        assert!(Arc::ptr_eq(x.layout(), &self.layout), "x layout mismatch");
        assert!(Arc::ptr_eq(y.layout(), &self.layout), "y layout mismatch");
        sim.exchange(&self.spmv_traffic);
        pmg_telemetry::counter_add("spmv/matfree_routed", 1);

        let plan = &self.plan;
        let ghost_vals: Vec<Vec<f64>> = self
            .kernels
            .par_iter()
            .enumerate()
            .map(|(r, k)| {
                let mut gv = vec![0.0; k.ghosts().len()];
                for msg in &plan.ranks[r].recv {
                    let peer = msg.peer as usize;
                    let send = plan.ranks[peer].send_to(r);
                    for (&slot, &li) in msg.idx.iter().zip(&send.idx) {
                        gv[slot as usize] = x.part(peer)[li as usize];
                    }
                }
                gv
            })
            .collect();

        let parts: Vec<Vec<f64>> = self
            .kernels
            .par_iter()
            .enumerate()
            .map(|(r, k)| {
                let xl = x.part(r);
                let mut yl = vec![0.0; k.local_rows()];
                k.apply_interior(xl, &mut yl);
                k.apply_boundary(xl, &ghost_vals[r], &mut yl);
                yl
            })
            .collect();
        for (r, p) in parts.into_iter().enumerate() {
            y.part_mut(r).copy_from_slice(&p);
        }
        sim.compute(&self.spmv_flops);
    }

    /// `ys[c] = A xs[c]` for all k vectors through the batched kernels:
    /// one ghost exchange carrying k values per plan slot, one element
    /// sweep reading the folded element data once. Bitwise identical per
    /// column to [`DistMatFree::spmv`] (the batched kernels guarantee it).
    pub fn spmv_multi(&self, sim: &mut Sim, xs: &[DistVec], ys: &mut [DistVec]) {
        let k = xs.len();
        assert_eq!(ys.len(), k, "spmv_multi needs matching x/y counts");
        if k == 0 {
            return;
        }
        for v in xs.iter().chain(ys.iter()) {
            assert!(Arc::ptr_eq(v.layout(), &self.layout), "layout mismatch");
        }
        let traffic: Vec<(u64, u64)> = self
            .spmv_traffic
            .iter()
            .map(|&(m, b)| (m, b * k as u64))
            .collect();
        sim.exchange(&traffic);
        pmg_telemetry::counter_add("spmv/multi_mf_routed", 1);
        pmg_telemetry::counter_add("spmv/multi_cols", k as u64);

        let plan = &self.plan;
        let ghost_vals: Vec<Vec<f64>> = self
            .kernels
            .par_iter()
            .enumerate()
            .map(|(r, kn)| {
                let mut gv = vec![0.0; kn.ghosts().len() * k];
                for msg in &plan.ranks[r].recv {
                    let peer = msg.peer as usize;
                    let send = plan.ranks[peer].send_to(r);
                    for (&slot, &li) in msg.idx.iter().zip(&send.idx) {
                        for (c, x) in xs.iter().enumerate() {
                            gv[slot as usize * k + c] = x.part(peer)[li as usize];
                        }
                    }
                }
                gv
            })
            .collect();

        let parts: Vec<Vec<f64>> = self
            .kernels
            .par_iter()
            .enumerate()
            .map(|(r, kn)| {
                let nl = kn.local_rows();
                let mut xl = vec![0.0; nl * k];
                for (c, x) in xs.iter().enumerate() {
                    for (s, &v) in x.part(r).iter().enumerate() {
                        xl[s * k + c] = v;
                    }
                }
                let mut yl = vec![0.0; nl * k];
                kn.apply_interior_multi(&xl, &mut yl, k);
                kn.apply_boundary_multi(&xl, &ghost_vals[r], &mut yl, k);
                yl
            })
            .collect();
        for (r, p) in parts.into_iter().enumerate() {
            for (c, y) in ys.iter_mut().enumerate() {
                for (s, v) in y.part_mut(r).iter_mut().enumerate() {
                    *v = p[s * k + c];
                }
            }
        }
        let flops: Vec<u64> = self.spmv_flops.iter().map(|f| f * k as u64).collect();
        sim.compute(&flops);
    }
}

impl SimOperator for DistMatFree {
    fn row_layout(&self) -> &Arc<Layout> {
        DistMatFree::row_layout(self)
    }

    fn spmv(&self, sim: &mut Sim, x: &DistVec, y: &mut DistVec) {
        DistMatFree::spmv(self, sim, x, y)
    }

    fn spmv_multi(&self, sim: &mut Sim, xs: &[DistVec], ys: &mut [DistVec]) {
        DistMatFree::spmv_multi(self, sim, xs, ys)
    }

    fn diag_global(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.layout.num_global()];
        for (r, k) in self.kernels.iter().enumerate() {
            for (slot, &g) in self.layout.owned(r).iter().enumerate() {
                d[g as usize] = k.diag_local()[slot];
            }
        }
        d
    }
}

/// One rank's borrowed matrix-free view, bound to a message tag — the
/// element-loop analogue of [`RankOp`](crate::rank::RankOp).
pub struct MfRankOp<'a> {
    kernel: &'a dyn MatrixFreeKernel,
    halo: &'a RankHalo,
    tag: u32,
}

impl<'a> MfRankOp<'a> {
    /// Rows (= owned columns) of this rank's share.
    pub fn local_rows(&self) -> usize {
        self.kernel.local_rows()
    }

    /// Post this operator's halo sends (packing `x_local` per the plan)
    /// and return the in-flight exchange.
    fn start_exchange<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
    ) -> Result<HaloExchange<'a>, CommError> {
        let sends = self.halo.send.iter().map(|msg| {
            let packed: Vec<f64> = msg.idx.iter().map(|&li| x_local[li as usize]).collect();
            (msg.peer as usize, packed)
        });
        let recvs = self
            .halo
            .recv
            .iter()
            .map(|msg| (msg.peer as usize, msg.idx.as_slice()))
            .collect();
        HaloExchange::start(t, self.tag, sends, recvs)
    }

    /// Post the k-vector halo sends: each plan index packs its k
    /// interleaved values contiguously, in the same index order as the
    /// single exchange.
    fn start_exchange_multi<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        k: usize,
    ) -> Result<HaloExchange<'a>, CommError> {
        let sends = self.halo.send.iter().map(|msg| {
            let mut packed = Vec::with_capacity(msg.idx.len() * k);
            for &li in &msg.idx {
                packed.extend_from_slice(&x_local[li as usize * k..li as usize * k + k]);
            }
            (msg.peer as usize, packed)
        });
        let recvs = self
            .halo
            .recv
            .iter()
            .map(|msg| (msg.peer as usize, msg.idx.as_slice()))
            .collect();
        HaloExchange::start(t, self.tag, sends, recvs)
    }

    /// `y_local = A_rank · x` with a blocking halo exchange. The interior
    /// phase runs only after the exchange drains, but in the *same*
    /// interior-then-boundary order as the overlapped schedule, so the two
    /// are bitwise identical. Lockstep across ranks.
    pub fn spmv<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
    ) -> Result<(), CommError> {
        assert_eq!(x_local.len(), self.kernel.local_rows(), "x_local length");
        assert_eq!(y_local.len(), self.kernel.local_rows(), "y_local length");
        let hx = self.start_exchange(t, x_local)?;
        let mut ghost_vals = vec![0.0; self.kernel.ghosts().len()];
        hx.finish(t, &mut ghost_vals)?;
        self.kernel.apply_interior(x_local, y_local);
        self.kernel.apply_boundary(x_local, &ghost_vals, y_local);
        Ok(())
    }

    /// `y_local = A_rank · x` with communication/computation overlap: the
    /// interior phase (elements with no ghost dof, plus Dirichlet rows)
    /// runs while the halo messages are in flight; the boundary elements
    /// accumulate after the ghosts arrive. Bitwise identical to
    /// [`spmv`](MfRankOp::spmv) — only the schedule differs.
    pub fn spmv_overlapped<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
    ) -> Result<OverlapInfo, CommError> {
        assert_eq!(x_local.len(), self.kernel.local_rows(), "x_local length");
        assert_eq!(y_local.len(), self.kernel.local_rows(), "y_local length");
        let hx = self.start_exchange(t, x_local)?;
        let window = Instant::now();
        self.kernel.apply_interior(x_local, y_local);
        let hidden_s = window.elapsed().as_secs_f64();
        let mut ghost_vals = vec![0.0; self.kernel.ghosts().len()];
        hx.finish(t, &mut ghost_vals)?;
        self.kernel.apply_boundary(x_local, &ghost_vals, y_local);
        Ok(OverlapInfo {
            hidden_s,
            interior_rows: self.kernel.interior_rows(),
            boundary_rows: self.kernel.boundary_rows(),
        })
    }

    /// k-vector product on interleaved local storage (`x_local[slot*k+c]`
    /// holds column `c`), blocking exchange. One message per peer carrying
    /// k values per plan index; column `c` of the result is bitwise
    /// [`spmv`](MfRankOp::spmv) on that column.
    pub fn spmv_multi<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
        k: usize,
    ) -> Result<(), CommError> {
        assert!(k > 0, "spmv_multi needs at least one column");
        assert_eq!(
            x_local.len(),
            self.kernel.local_rows() * k,
            "x_local length"
        );
        assert_eq!(
            y_local.len(),
            self.kernel.local_rows() * k,
            "y_local length"
        );
        let hx = self.start_exchange_multi(t, x_local, k)?;
        let mut ghost_vals = vec![0.0; self.kernel.ghosts().len() * k];
        hx.finish_multi(t, &mut ghost_vals, k)?;
        self.kernel.apply_interior_multi(x_local, y_local, k);
        self.kernel
            .apply_boundary_multi(x_local, &ghost_vals, y_local, k);
        Ok(())
    }

    /// k-vector product with communication/computation overlap: the
    /// batched interior sweep runs inside the halo window. Bitwise
    /// identical to [`spmv_multi`](MfRankOp::spmv_multi) — only the
    /// schedule differs.
    pub fn spmv_multi_overlapped<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
        k: usize,
    ) -> Result<OverlapInfo, CommError> {
        assert!(k > 0, "spmv_multi needs at least one column");
        assert_eq!(
            x_local.len(),
            self.kernel.local_rows() * k,
            "x_local length"
        );
        assert_eq!(
            y_local.len(),
            self.kernel.local_rows() * k,
            "y_local length"
        );
        let hx = self.start_exchange_multi(t, x_local, k)?;
        let window = Instant::now();
        self.kernel.apply_interior_multi(x_local, y_local, k);
        let hidden_s = window.elapsed().as_secs_f64();
        let mut ghost_vals = vec![0.0; self.kernel.ghosts().len() * k];
        hx.finish_multi(t, &mut ghost_vals, k)?;
        self.kernel
            .apply_boundary_multi(x_local, &ghost_vals, y_local, k);
        Ok(OverlapInfo {
            hidden_s,
            interior_rows: self.kernel.interior_rows(),
            boundary_rows: self.kernel.boundary_rows(),
        })
    }
}

#[doc(hidden)]
pub mod test_kernel {
    //! A miniature element-loop kernel over 1D two-node "elements", used by
    //! the unit tests here and the property suite (this crate's and the
    //! workspace's): enough structure to exercise ghosts, the two-phase
    //! split, and rows fed by both phases. Hidden from docs — it is test
    //! scaffolding, not API.

    use pmg_sparse::{CooBuilder, CsrMatrix, MatrixFreeKernel};

    /// Elements are index pairs `(i, i+1 mod n)` with the 2x2 stencil
    /// `[[2, -1], [-1, 2]]` scaled per element.
    pub struct ChainKernel {
        pub owned: Vec<u32>,
        /// Per global dof: owned slot (`>= 0`), ghost slot (`-(s+2)`), or
        /// `-1` (untouched by this rank).
        pub code: Vec<i32>,
        pub ghosts: Vec<u32>,
        pub elems_int: Vec<u32>,
        pub elems_bnd: Vec<u32>,
        pub scales: Vec<f64>,
        pub n: usize,
        pub wrap: bool,
        pub diag: Vec<f64>,
        pub interior_rows: u64,
        pub boundary_rows: u64,
    }

    impl ChainKernel {
        /// One rank's kernel for the chain of `n` dofs (`wrap` closes the
        /// ring) with per-element `scales`, owning `owned`.
        pub fn build(n: usize, wrap: bool, scales: Vec<f64>, owned: Vec<u32>) -> ChainKernel {
            let ne = if wrap { n } else { n.saturating_sub(1) };
            assert_eq!(scales.len(), ne);
            let mut code = vec![-1i32; n];
            for (slot, &g) in owned.iter().enumerate() {
                code[g as usize] = slot as i32;
            }
            let ends = |e: usize| [e as u32, ((e + 1) % n) as u32];
            let mut listed = Vec::new();
            let mut is_ghost = vec![false; n];
            for e in 0..ne {
                let vs = ends(e);
                if vs.iter().any(|&v| code[v as usize] >= 0) {
                    listed.push(e as u32);
                    for &v in &vs {
                        if code[v as usize] < 0 {
                            is_ghost[v as usize] = true;
                        }
                    }
                }
            }
            let ghosts: Vec<u32> = (0..n as u32).filter(|&g| is_ghost[g as usize]).collect();
            for (s, &g) in ghosts.iter().enumerate() {
                code[g as usize] = -(s as i32 + 2);
            }
            let mut elems_int = Vec::new();
            let mut elems_bnd = Vec::new();
            let mut row_bnd = vec![false; owned.len()];
            for &e in &listed {
                let vs = ends(e as usize);
                if vs.iter().any(|&v| code[v as usize] < -1) {
                    elems_bnd.push(e);
                    for &v in &vs {
                        if code[v as usize] >= 0 {
                            row_bnd[code[v as usize] as usize] = true;
                        }
                    }
                } else {
                    elems_int.push(e);
                }
            }
            let boundary_rows = row_bnd.iter().filter(|&&b| b).count() as u64;
            let mut diag = vec![0.0; owned.len()];
            for &e in listed.iter() {
                for &v in &ends(e as usize) {
                    let c = code[v as usize];
                    if c >= 0 {
                        diag[c as usize] += 2.0 * scales[e as usize];
                    }
                }
            }
            ChainKernel {
                interior_rows: owned.len() as u64 - boundary_rows,
                boundary_rows,
                owned,
                code,
                ghosts,
                elems_int,
                elems_bnd,
                scales,
                n,
                wrap,
                diag,
            }
        }

        /// The matching global matrix, assembled conventionally.
        pub fn global_matrix(n: usize, wrap: bool, scales: &[f64]) -> CsrMatrix {
            let ne = if wrap { n } else { n.saturating_sub(1) };
            let mut b = CooBuilder::new(n, n);
            for (e, &s) in scales.iter().enumerate().take(ne) {
                let i = e;
                let j = (e + 1) % n;
                b.push(i, i, 2.0 * s);
                b.push(j, j, 2.0 * s);
                b.push(i, j, -s);
                b.push(j, i, -s);
            }
            b.build()
        }

        fn run(&self, elems: &[u32], xo: &[f64], xg: &[f64], y: &mut [f64]) {
            for &e in elems {
                let s = self.scales[e as usize];
                let vs = [e as usize, (e as usize + 1) % self.n];
                let xv = vs.map(|v| match self.code[v] {
                    c if c >= 0 => xo[c as usize],
                    c if c < -1 => xg[(-c - 2) as usize],
                    _ => 0.0,
                });
                let ye = [s * (2.0 * xv[0] - xv[1]), s * (2.0 * xv[1] - xv[0])];
                for (k, &v) in vs.iter().enumerate() {
                    let c = self.code[v];
                    if c >= 0 {
                        y[c as usize] += ye[k];
                    }
                }
            }
        }

        /// Interleaved k-column element loop: per column the operation
        /// sequence is exactly [`ChainKernel::run`]'s, so each column is
        /// bitwise the single apply.
        fn run_multi(&self, elems: &[u32], xo: &[f64], xg: &[f64], y: &mut [f64], k: usize) {
            for &e in elems {
                let s = self.scales[e as usize];
                let vs = [e as usize, (e as usize + 1) % self.n];
                for c in 0..k {
                    let xv = vs.map(|v| match self.code[v] {
                        cc if cc >= 0 => xo[cc as usize * k + c],
                        cc if cc < -1 => xg[(-cc - 2) as usize * k + c],
                        _ => 0.0,
                    });
                    let ye = [s * (2.0 * xv[0] - xv[1]), s * (2.0 * xv[1] - xv[0])];
                    for (i, &v) in vs.iter().enumerate() {
                        let cc = self.code[v];
                        if cc >= 0 {
                            y[cc as usize * k + c] += ye[i];
                        }
                    }
                }
            }
        }
    }

    impl MatrixFreeKernel for ChainKernel {
        fn local_rows(&self) -> usize {
            self.owned.len()
        }

        fn ghosts(&self) -> &[u32] {
            &self.ghosts
        }

        fn apply_interior(&self, x_owned: &[f64], y: &mut [f64]) {
            y.fill(0.0);
            self.run(&self.elems_int, x_owned, &[], y);
        }

        fn apply_boundary(&self, x_owned: &[f64], x_ghost: &[f64], y: &mut [f64]) {
            self.run(&self.elems_bnd, x_owned, x_ghost, y);
        }

        fn apply_interior_multi(&self, x_owned: &[f64], y: &mut [f64], k: usize) {
            assert!(k > 0, "apply_interior_multi needs at least one column");
            y.fill(0.0);
            self.run_multi(&self.elems_int, x_owned, &[], y, k);
        }

        fn apply_boundary_multi(&self, x_owned: &[f64], x_ghost: &[f64], y: &mut [f64], k: usize) {
            assert!(k > 0, "apply_boundary_multi needs at least one column");
            self.run_multi(&self.elems_bnd, x_owned, x_ghost, y, k);
        }

        fn interior_rows(&self) -> u64 {
            self.interior_rows
        }

        fn boundary_rows(&self) -> u64 {
            self.boundary_rows
        }

        fn diag_local(&self) -> &[f64] {
            &self.diag
        }

        fn flops_per_apply(&self) -> u64 {
            6 * (self.elems_int.len() + self.elems_bnd.len()) as u64
        }

        fn memory_bytes(&self) -> u64 {
            (self.scales.len() * 8 + self.code.len() * 4 + self.diag.len() * 8) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_kernel::ChainKernel;
    use super::*;
    use crate::sim::MachineModel;
    use pmg_comm::LocalTransport;
    use pmg_sparse::MatrixFreeFactory;

    fn chain_matfree(n: usize, wrap: bool, layout: &Arc<Layout>) -> DistMatFree {
        let scales: Vec<f64> = (0..if wrap { n } else { n - 1 })
            .map(|e| 1.0 + 0.1 * e as f64)
            .collect();
        let kernels: Vec<Box<dyn MatrixFreeKernel>> = (0..layout.num_ranks())
            .map(|r| {
                Box::new(ChainKernel::build(
                    n,
                    wrap,
                    scales.clone(),
                    layout.owned(r).to_vec(),
                )) as Box<dyn MatrixFreeKernel>
            })
            .collect();
        DistMatFree::new(layout.clone(), kernels)
    }

    #[test]
    fn matfree_spmv_matches_assembled_reference() {
        let n = 19;
        let scales: Vec<f64> = (0..n - 1).map(|e| 1.0 + 0.1 * e as f64).collect();
        let a = ChainKernel::global_matrix(n, false, &scales);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut expect = vec![0.0; n];
        a.spmv(&x, &mut expect);
        for p in [1, 2, 3, 5] {
            let l = Layout::block(n, p);
            let mf = chain_matfree(n, false, &l);
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l.clone());
            let mut sim = Sim::new(p, MachineModel::default());
            SimOperator::spmv(&mf, &mut sim, &dx, &mut dy);
            let got = dy.to_global();
            for (u, v) in got.iter().zip(&expect) {
                assert!((u - v).abs() < 1e-13, "p={p}");
            }
        }
    }

    #[test]
    fn diag_global_matches_assembled() {
        let n = 12;
        // Same per-element scales as `chain_matfree` builds.
        let scales: Vec<f64> = (0..n).map(|e| 1.0 + 0.1 * e as f64).collect();
        let a = ChainKernel::global_matrix(n, true, &scales);
        let l = Layout::block(n, 3);
        let mf = chain_matfree(n, true, &l);
        assert_eq!(mf.diag_global(), a.diag());
    }

    #[test]
    fn transport_spmv_bitwise_matches_sim() {
        let n = 17;
        for p in [1, 2, 4] {
            let l = Layout::block(n, p);
            let mf = chain_matfree(n, true, &l);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).cos()).collect();
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l.clone());
            let mut sim = Sim::new(p, MachineModel::default());
            SimOperator::spmv(&mf, &mut sim, &dx, &mut dy);
            let expect = dy.to_global();

            let mfr = &mf;
            let l2 = &l;
            let x2 = &x;
            let parts = LocalTransport::run_ranks(p, move |mut t| {
                let r = t.rank();
                let op = mfr.rank_op(r, 3);
                let xl: Vec<f64> = l2.owned(r).iter().map(|&g| x2[g as usize]).collect();
                let mut y1 = vec![0.0; op.local_rows()];
                op.spmv(&mut t, &xl, &mut y1).unwrap();
                let mut y2 = vec![0.0; op.local_rows()];
                let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
                (y1, y2, info)
            });
            let mut got = vec![0.0; n];
            for (r, (y1, y2, info)) in parts.iter().enumerate() {
                assert_eq!(
                    info.interior_rows + info.boundary_rows,
                    y1.len() as u64,
                    "row accounting partitions the local rows"
                );
                // Blocking and overlapped schedules agree bitwise.
                for (a, b) in y1.iter().zip(y2) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p} r={r}");
                }
                for (&g, &v) in l.owned(r).iter().zip(y1) {
                    got[g as usize] = v;
                }
            }
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "p={p} transport vs sim");
            }
        }
    }

    #[test]
    fn sim_spmv_multi_bitwise_matches_singles() {
        let n = 21;
        let k = 4usize;
        for p in [1, 3] {
            let l = Layout::block(n, p);
            let mf = chain_matfree(n, true, &l);
            let xs: Vec<DistVec> = (0..k)
                .map(|c| {
                    let x: Vec<f64> = (0..n).map(|i| ((i * (c + 2)) as f64 * 0.3).sin()).collect();
                    DistVec::from_global(l.clone(), &x)
                })
                .collect();
            let mut ys: Vec<DistVec> = (0..k).map(|_| DistVec::zeros(l.clone())).collect();
            let mut sim = Sim::new(p, MachineModel::default());
            mf.spmv_multi(&mut sim, &xs, &mut ys);
            for c in 0..k {
                let mut y1 = DistVec::zeros(l.clone());
                SimOperator::spmv(&mf, &mut sim, &xs[c], &mut y1);
                for (a, b) in ys[c].to_global().iter().zip(y1.to_global()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p} c={c}");
                }
            }
            // The SimOperator default (loop of singles) agrees too.
            let da_like: &dyn SimOperator = &mf;
            let mut yd: Vec<DistVec> = (0..k).map(|_| DistVec::zeros(l.clone())).collect();
            da_like.spmv_multi(&mut sim, &xs, &mut yd);
            for c in 0..k {
                for (a, b) in ys[c].to_global().iter().zip(yd[c].to_global()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn transport_spmv_multi_bitwise_matches_sim_and_overlap() {
        let n = 17;
        let k = 3usize;
        for p in [1, 2, 4] {
            let l = Layout::block(n, p);
            let mf = chain_matfree(n, true, &l);
            let xs: Vec<Vec<f64>> = (0..k)
                .map(|c| (0..n).map(|i| ((i + 3 * c) as f64 * 0.41).cos()).collect())
                .collect();
            let dxs: Vec<DistVec> = xs
                .iter()
                .map(|x| DistVec::from_global(l.clone(), x))
                .collect();
            let mut dys: Vec<DistVec> = (0..k).map(|_| DistVec::zeros(l.clone())).collect();
            let mut sim = Sim::new(p, MachineModel::default());
            mf.spmv_multi(&mut sim, &dxs, &mut dys);
            let expect: Vec<Vec<f64>> = dys.iter().map(|y| y.to_global()).collect();

            let mfr = &mf;
            let l2 = &l;
            let xs2 = &xs;
            let parts = LocalTransport::run_ranks(p, move |mut t| {
                let r = t.rank();
                let op = mfr.rank_op(r, 7);
                let nl = op.local_rows();
                let mut xl = vec![0.0; nl * k];
                for (c, x) in xs2.iter().enumerate() {
                    for (s, &g) in l2.owned(r).iter().enumerate() {
                        xl[s * k + c] = x[g as usize];
                    }
                }
                let mut y1 = vec![0.0; nl * k];
                op.spmv_multi(&mut t, &xl, &mut y1, k).unwrap();
                let mut y2 = vec![0.0; nl * k];
                op.spmv_multi_overlapped(&mut t, &xl, &mut y2, k).unwrap();
                (y1, y2)
            });
            for (r, (y1, y2)) in parts.iter().enumerate() {
                for (a, b) in y1.iter().zip(y2) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "blocking vs overlapped p={p} r={r}"
                    );
                }
                for (s, &g) in l.owned(r).iter().enumerate() {
                    for c in 0..k {
                        assert_eq!(
                            y1[s * k + c].to_bits(),
                            expect[c][g as usize].to_bits(),
                            "transport vs sim p={p} r={r} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_shared_with_assembled_operator() {
        // A matrix-free operator whose ghost sets equal the assembled
        // operator's hits the layout's plan cache instead of rebuilding.
        let n = 15;
        let scales: Vec<f64> = (0..n - 1).map(|e| 1.0 + 0.2 * e as f64).collect();
        let a = ChainKernel::global_matrix(n, false, &scales);
        let l = Layout::block(n, 3);
        let da = DistMatrix::from_global(&a, l.clone(), l.clone());
        let mf = chain_matfree(n, false, &l);
        assert!(Arc::ptr_eq(da.halo_plan(), mf.halo_plan()));
        assert_eq!(da.ghost_counts(), mf.ghost_counts());
    }

    #[test]
    fn factory_construction_roundtrip() {
        struct ChainFactory {
            n: usize,
            scales: Vec<f64>,
        }
        impl MatrixFreeFactory for ChainFactory {
            fn build_kernels(&self, owned: &[&[u32]]) -> Vec<Box<dyn MatrixFreeKernel>> {
                owned
                    .iter()
                    .map(|rows| {
                        Box::new(ChainKernel::build(
                            self.n,
                            false,
                            self.scales.clone(),
                            rows.to_vec(),
                        )) as Box<dyn MatrixFreeKernel>
                    })
                    .collect()
            }
        }
        let n = 11;
        let scales: Vec<f64> = (0..n - 1).map(|e| 2.0 - 0.1 * e as f64).collect();
        let l = Layout::block(n, 2);
        let mf = DistMatFree::from_factory(
            l.clone(),
            &ChainFactory {
                n,
                scales: scales.clone(),
            },
        );
        let a = ChainKernel::global_matrix(n, false, &scales);
        let x: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let dx = DistVec::from_global(l.clone(), &x);
        let mut dy = DistVec::zeros(l);
        let mut sim = Sim::new(2, MachineModel::default());
        SimOperator::spmv(&mf, &mut sim, &dx, &mut dy);
        let mut expect = vec![0.0; n];
        a.spmv(&x, &mut expect);
        for (u, v) in dy.to_global().iter().zip(&expect) {
            assert!((u - v).abs() < 1e-13);
        }
    }
}
