//! Coalesced persistent halo-exchange plans.
//!
//! A [`HaloPlan`] is built once per ([`Layout`], ghost-set) pair and reused
//! for every subsequent exchange (MPI's persistent-request idiom: the
//! paper's PETSc `VecScatter`s are created at setup and replayed each
//! product). For each rank the plan coalesces all ghost values needed from
//! one peer into a single message:
//!
//! * `recv` — one [`HaloMsg`] per owning peer; `idx` are slots into the
//!   rank's ghost buffer,
//! * `send` — one [`HaloMsg`] per requesting peer; `idx` are indices into
//!   the rank's owned-value array.
//!
//! Wire order is canonical — peers ascending, values within a message in
//! ascending global id — so the BSP `Sim` (which *counts* the plan's
//! messages) and the real transports (which *send* them) describe the same
//! exchange, byte for byte.

use crate::layout::Layout;
use std::collections::BTreeMap;

/// One coalesced message of a halo exchange: all values one peer exchanges
/// with this rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloMsg {
    /// The peer rank.
    pub peer: u32,
    /// For a receive: ghost-buffer slots to fill, in wire order.
    /// For a send: owned-local indices to pack, in wire order.
    pub idx: Vec<u32>,
}

/// One rank's half of a [`HaloPlan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankHalo {
    /// Messages this rank receives, peers ascending.
    pub recv: Vec<HaloMsg>,
    /// Messages this rank sends, peers ascending.
    pub send: Vec<HaloMsg>,
}

impl RankHalo {
    /// The send message addressed to `peer` (panics if the plan has none —
    /// callers pair recv/send lists the builder produced together).
    pub fn send_to(&self, peer: usize) -> &HaloMsg {
        let i = self
            .send
            .binary_search_by_key(&(peer as u32), |m| m.peer)
            .expect("no send message for peer");
        &self.send[i]
    }

    /// Number of values this rank receives (its ghost count).
    pub fn recv_len(&self) -> usize {
        self.recv.iter().map(|m| m.idx.len()).sum()
    }
}

/// A persistent, coalesced exchange plan for every rank of a layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HaloPlan {
    /// Indexed by rank.
    pub ranks: Vec<RankHalo>,
}

impl HaloPlan {
    /// Build a plan from each rank's (ascending, deduplicated) ghost
    /// global ids under `layout`'s ownership.
    pub fn build(layout: &Layout, ghosts: &[Vec<u32>]) -> HaloPlan {
        assert_eq!(ghosts.len(), layout.num_ranks());
        let nranks = layout.num_ranks();
        let mut ranks: Vec<RankHalo> = vec![RankHalo::default(); nranks];
        // send[owner] collects, per requesting rank, the owned-local
        // indices to pack — BTreeMap keeps peers ascending; ghost lists
        // are ascending so wire order is ascending global id.
        let mut sends: Vec<BTreeMap<u32, Vec<u32>>> = vec![BTreeMap::new(); nranks];
        for (r, glist) in ghosts.iter().enumerate() {
            let mut recv: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for (slot, &g) in glist.iter().enumerate() {
                let owner = layout.owner(g as usize);
                assert_ne!(owner as usize, r, "ghost {g} owned by its own rank {r}");
                recv.entry(owner).or_default().push(slot as u32);
                sends[owner as usize]
                    .entry(r as u32)
                    .or_default()
                    .push(layout.local_index(g as usize));
            }
            ranks[r].recv = recv
                .into_iter()
                .map(|(peer, idx)| HaloMsg { peer, idx })
                .collect();
        }
        for (r, send) in sends.into_iter().enumerate() {
            ranks[r].send = send
                .into_iter()
                .map(|(peer, idx)| HaloMsg { peer, idx })
                .collect();
        }
        HaloPlan { ranks }
    }
}

/// FNV-1a fingerprint of a ghost-set, used as the plan-cache key.
pub(crate) fn ghosts_fingerprint(ghosts: &[Vec<u32>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(ghosts.len() as u64);
    for list in ghosts {
        eat(0xffff_ffff_ffff_fffe); // rank separator
        eat(list.len() as u64);
        for &g in list {
            eat(g as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_send_lists_pair_up() {
        // 8 indices over 3 ranks, block layout: [0..3]=r0, [3..6]=r1, [6..8]=r2.
        let l = Layout::block(8, 3);
        // r0 needs {3,6}, r1 needs {2,6}, r2 needs {5}.
        let ghosts = vec![vec![3, 6], vec![2, 6], vec![5]];
        let plan = HaloPlan::build(&l, &ghosts);

        // r0 receives one value from r1 (g=3 -> slot 0) and one from r2
        // (g=6 -> slot 1).
        assert_eq!(plan.ranks[0].recv.len(), 2);
        assert_eq!(plan.ranks[0].recv[0].peer, 1);
        assert_eq!(plan.ranks[0].recv[0].idx, vec![0]);
        assert_eq!(plan.ranks[0].recv[1].peer, 2);
        assert_eq!(plan.ranks[0].recv[1].idx, vec![1]);
        assert_eq!(plan.ranks[0].recv_len(), 2);

        // r1 sends g=3 (local 0) to r0 and g=5 (local 2) to r2.
        assert_eq!(plan.ranks[1].send.len(), 2);
        assert_eq!(plan.ranks[1].send_to(0).idx, vec![0]);
        assert_eq!(plan.ranks[1].send_to(2).idx, vec![2]);

        // r2 sends g=6 (local 0) to both r0 and r1, peers ascending.
        let peers: Vec<u32> = plan.ranks[2].send.iter().map(|m| m.peer).collect();
        assert_eq!(peers, vec![0, 1]);

        // Every recv message has a matching send of equal length.
        for (r, rh) in plan.ranks.iter().enumerate() {
            for m in &rh.recv {
                let s = plan.ranks[m.peer as usize].send_to(r);
                assert_eq!(s.idx.len(), m.idx.len());
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_rank_boundaries() {
        let a = vec![vec![1, 2], vec![3]];
        let b = vec![vec![1], vec![2, 3]];
        let c = vec![vec![1, 2], vec![3]];
        assert_ne!(ghosts_fingerprint(&a), ghosts_fingerprint(&b));
        assert_eq!(ghosts_fingerprint(&a), ghosts_fingerprint(&c));
    }
}
