//! Rank-partitioned vectors and their BLAS-1 operations.

use crate::layout::Layout;
use crate::sim::Sim;
use std::sync::Arc;

/// A vector distributed over the ranks of a [`Layout`]: rank `r` stores the
/// entries of the global indices in `layout.owned(r)`, in that order.
#[derive(Clone, Debug)]
pub struct DistVec {
    layout: Arc<Layout>,
    parts: Vec<Vec<f64>>,
}

impl DistVec {
    pub fn zeros(layout: Arc<Layout>) -> DistVec {
        let parts = (0..layout.num_ranks())
            .map(|r| vec![0.0; layout.local_len(r)])
            .collect();
        DistVec { layout, parts }
    }

    /// Scatter a global vector.
    pub fn from_global(layout: Arc<Layout>, global: &[f64]) -> DistVec {
        assert_eq!(global.len(), layout.num_global());
        let parts = (0..layout.num_ranks())
            .map(|r| {
                layout
                    .owned(r)
                    .iter()
                    .map(|&g| global[g as usize])
                    .collect()
            })
            .collect();
        DistVec { layout, parts }
    }

    /// Gather to a global vector.
    pub fn to_global(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.layout.num_global()];
        for (r, part) in self.parts.iter().enumerate() {
            for (&g, &v) in self.layout.owned(r).iter().zip(part) {
                out[g as usize] = v;
            }
        }
        out
    }

    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    pub fn part(&self, r: usize) -> &[f64] {
        &self.parts[r]
    }

    pub fn part_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.parts[r]
    }

    pub fn num_global(&self) -> usize {
        self.layout.num_global()
    }

    fn same_layout(&self, o: &DistVec) {
        assert!(
            Arc::ptr_eq(&self.layout, &o.layout),
            "DistVec layout mismatch"
        );
    }

    fn local_flops(&self, per_entry: u64) -> Vec<u64> {
        self.parts
            .iter()
            .map(|p| per_entry * p.len() as u64)
            .collect()
    }

    /// `self += alpha * x` (embarrassingly parallel).
    pub fn axpy(&mut self, sim: &mut Sim, alpha: f64, x: &DistVec) {
        self.same_layout(x);
        for (yp, xp) in self.parts.iter_mut().zip(&x.parts) {
            pmg_sparse::vector::axpy(alpha, xp, yp);
        }
        sim.compute(&self.local_flops(2));
    }

    /// `self = x + beta * self`.
    pub fn aypx(&mut self, sim: &mut Sim, beta: f64, x: &DistVec) {
        self.same_layout(x);
        for (yp, xp) in self.parts.iter_mut().zip(&x.parts) {
            pmg_sparse::vector::aypx(beta, xp, yp);
        }
        sim.compute(&self.local_flops(2));
    }

    /// Inner product: per-rank partials then an allreduce.
    ///
    /// Partials combine in the fixed binomial-tree order of
    /// [`pmg_comm::tree_combine`], matching the deterministic allreduce the
    /// real transports run — so the result is bitwise identical whether the
    /// ranks are simulated, threads, or processes.
    pub fn dot(&self, sim: &mut Sim, x: &DistVec) -> f64 {
        self.same_layout(x);
        let partials: Vec<f64> = self
            .parts
            .iter()
            .zip(&x.parts)
            .map(|(yp, xp)| pmg_sparse::vector::dot(yp, xp))
            .collect();
        sim.compute(&self.local_flops(2));
        sim.allreduce(1);
        pmg_comm::tree_combine(&partials)
    }

    pub fn norm2(&self, sim: &mut Sim) -> f64 {
        self.dot(sim, &self.clone()).sqrt()
    }

    /// `self *= s`.
    pub fn scale(&mut self, sim: &mut Sim, s: f64) {
        for p in self.parts.iter_mut() {
            pmg_sparse::vector::scale(p, s);
        }
        sim.compute(&self.local_flops(1));
    }

    /// Copy values from `x`.
    pub fn copy_from(&mut self, x: &DistVec) {
        self.same_layout(x);
        for (yp, xp) in self.parts.iter_mut().zip(&x.parts) {
            yp.copy_from_slice(xp);
        }
    }

    /// Set to zero.
    pub fn set_zero(&mut self) {
        for p in self.parts.iter_mut() {
            p.iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::MachineModel;

    fn setup(n: usize, p: usize) -> (Arc<Layout>, Sim) {
        (Layout::block(n, p), Sim::new(p, MachineModel::default()))
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (l, _) = setup(7, 3);
        let g: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let d = DistVec::from_global(l, &g);
        assert_eq!(d.to_global(), g);
    }

    #[test]
    fn distributed_matches_serial_blas() {
        let (l, mut sim) = setup(10, 4);
        let xg: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let yg: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let x = DistVec::from_global(l.clone(), &xg);
        let mut y = DistVec::from_global(l.clone(), &yg);
        y.axpy(&mut sim, 2.0, &x);
        let expect: Vec<f64> = xg.iter().zip(&yg).map(|(a, b)| b + 2.0 * a).collect();
        assert_eq!(y.to_global(), expect);
        let d = y.dot(&mut sim, &x);
        let expect_dot: f64 = expect.iter().zip(&xg).map(|(a, b)| a * b).sum();
        assert!((d - expect_dot).abs() < 1e-9);
        y.scale(&mut sim, 0.5);
        let n = y.norm2(&mut sim);
        let expect_norm = expect.iter().map(|v| 0.25 * v * v).sum::<f64>().sqrt();
        assert!((n - expect_norm).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate() {
        let (l, mut sim) = setup(8, 2);
        let x = DistVec::zeros(l.clone());
        let mut y = DistVec::zeros(l);
        y.axpy(&mut sim, 1.0, &x);
        let _ = y.dot(&mut sim, &x);
        let phases = sim.finish();
        let p = &phases["default"];
        // 2 flops/entry axpy + 2 flops/entry dot, 4 entries per rank.
        assert_eq!(p.ranks[0].flops, 16);
        assert!(p.ranks[0].msgs > 0); // allreduce
    }

    #[test]
    #[should_panic]
    fn layout_mismatch_panics() {
        let (l1, mut sim) = setup(4, 2);
        let l2 = Layout::block(4, 2);
        let x = DistVec::zeros(l1);
        let mut y = DistVec::zeros(l2);
        y.axpy(&mut sim, 1.0, &x);
    }
}
