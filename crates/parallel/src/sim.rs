//! Superstep accounting and the BSP machine model.

use std::collections::BTreeMap;
use std::time::Instant;

/// Machine model used to convert counted work and communication into
/// modeled time. Defaults approximate the paper's platform: 332 MHz
/// PowerPC 604e sustaining ~36 Mflop/s in sparse matrix-vector products,
/// with classical MPI latency/bandwidth of the era.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Per-message latency α (seconds).
    pub latency: f64,
    /// Per-byte transfer time β (seconds/byte).
    pub inv_bandwidth: f64,
    /// Sustained per-rank flop rate in the sparse kernels (flops/second).
    pub flop_rate: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            latency: 30e-6,             // 30 µs MPI latency
            inv_bandwidth: 1.0 / 100e6, // 100 MB/s per link
            flop_rate: 36e6,            // paper: 36 Mflop/s SpMV per CPU
        }
    }
}

/// Per-rank counters for one phase (or the whole run).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankCounters {
    pub flops: u64,
    pub msgs: u64,
    pub bytes: u64,
}

impl RankCounters {
    pub fn accumulate(&mut self, o: &RankCounters) {
        self.flops += o.flops;
        self.msgs += o.msgs;
        self.bytes += o.bytes;
    }
}

/// Aggregated statistics for a named phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Modeled time under the machine model (seconds).
    pub modeled_time: f64,
    /// Modeled time spent in communication terms only.
    pub modeled_comm_time: f64,
    /// Wall-clock seconds actually spent (real execution on this machine).
    pub wall_time: f64,
    /// Per-rank counters.
    pub ranks: Vec<RankCounters>,
    /// Number of supersteps charged.
    pub supersteps: u64,
}

impl PhaseStats {
    fn new(nranks: usize) -> Self {
        PhaseStats {
            ranks: vec![RankCounters::default(); nranks],
            ..Default::default()
        }
    }

    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).sum()
    }

    pub fn max_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).max().unwrap_or(0)
    }

    /// Load balance `e_l = average / maximum` flops per rank (§6).
    pub fn load_balance(&self) -> f64 {
        let max = self.max_flops();
        if max == 0 {
            return 1.0;
        }
        self.total_flops() as f64 / self.ranks.len() as f64 / max as f64
    }

    /// Modeled aggregate flop rate (flops/second over all ranks).
    pub fn modeled_flop_rate(&self) -> f64 {
        if self.modeled_time <= 0.0 {
            return 0.0;
        }
        self.total_flops() as f64 / self.modeled_time
    }
}

/// The virtual machine: charges supersteps against the machine model and
/// accumulates per-phase, per-rank statistics.
#[derive(Debug)]
pub struct Sim {
    nranks: usize,
    model: MachineModel,
    phases: BTreeMap<String, PhaseStats>,
    current: String,
    phase_started: Instant,
}

impl Sim {
    pub fn new(nranks: usize, model: MachineModel) -> Sim {
        assert!(nranks >= 1);
        let mut phases = BTreeMap::new();
        phases.insert("default".to_string(), PhaseStats::new(nranks));
        Sim {
            nranks,
            model,
            phases,
            current: "default".to_string(),
            phase_started: Instant::now(),
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.nranks
    }

    pub fn model(&self) -> MachineModel {
        self.model
    }

    /// Switch to (or create) a named phase; wall time of the previous phase
    /// is closed out.
    pub fn phase(&mut self, name: &str) {
        let elapsed = self.phase_started.elapsed().as_secs_f64();
        if let Some(p) = self.phases.get_mut(&self.current) {
            p.wall_time += elapsed;
        }
        let nranks = self.nranks;
        self.phases
            .entry(name.to_string())
            .or_insert_with(|| PhaseStats::new(nranks));
        self.current = name.to_string();
        self.phase_started = Instant::now();
    }

    /// Statistics of phase `name` (closing out wall time of the current
    /// phase first is the caller's responsibility via [`Sim::phase`]).
    pub fn stats(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.get(name)
    }

    pub fn phase_names(&self) -> impl Iterator<Item = &str> {
        self.phases.keys().map(|s| s.as_str())
    }

    fn cur(&mut self) -> &mut PhaseStats {
        self.phases
            .get_mut(&self.current)
            .expect("current phase exists")
    }

    /// Charge a compute superstep: `flops[r]` per rank, modeled time is the
    /// slowest rank.
    pub fn compute(&mut self, flops: &[u64]) {
        assert_eq!(flops.len(), self.nranks);
        let rate = self.model.flop_rate;
        let max = *flops.iter().max().unwrap_or(&0);
        let p = self.cur();
        for (c, &f) in p.ranks.iter_mut().zip(flops) {
            c.flops += f;
        }
        p.modeled_time += max as f64 / rate;
        p.supersteps += 1;
    }

    /// Charge a neighbor-exchange superstep: per rank, `(messages, bytes)`
    /// sent. Modeled time is `α·max_msgs + β·max_bytes`.
    pub fn exchange(&mut self, traffic: &[(u64, u64)]) {
        assert_eq!(traffic.len(), self.nranks);
        let max_msgs = traffic.iter().map(|t| t.0).max().unwrap_or(0);
        let max_bytes = traffic.iter().map(|t| t.1).max().unwrap_or(0);
        let dt = self.model.latency * max_msgs as f64 + self.model.inv_bandwidth * max_bytes as f64;
        let p = self.cur();
        for (c, &(m, b)) in p.ranks.iter_mut().zip(traffic) {
            c.msgs += m;
            c.bytes += b;
        }
        p.modeled_time += dt;
        p.modeled_comm_time += dt;
        p.supersteps += 1;
    }

    /// Charge an allreduce of `words` f64 values: `log2(P)` rounds of one
    /// message each (plus the flops of the reduction are negligible).
    pub fn allreduce(&mut self, words: usize) {
        if self.nranks == 1 {
            return;
        }
        let rounds = (self.nranks as f64).log2().ceil();
        let dt = rounds * (self.model.latency + self.model.inv_bandwidth * (8 * words) as f64);
        let p = self.cur();
        for c in p.ranks.iter_mut() {
            c.msgs += rounds as u64;
            c.bytes += (rounds as u64) * 8 * words as u64;
        }
        p.modeled_time += dt;
        p.modeled_comm_time += dt;
        p.supersteps += 1;
    }

    /// Close out wall time and return all phase statistics.
    pub fn finish(mut self) -> BTreeMap<String, PhaseStats> {
        let elapsed = self.phase_started.elapsed().as_secs_f64();
        if let Some(p) = self.phases.get_mut(&self.current) {
            p.wall_time += elapsed;
        }
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel {
            latency: 1e-3,
            inv_bandwidth: 1e-6,
            flop_rate: 1e6,
        }
    }

    #[test]
    fn compute_charges_slowest_rank() {
        let mut sim = Sim::new(3, model());
        sim.compute(&[100, 300, 200]);
        let phases = sim.finish();
        let p = &phases["default"];
        assert_eq!(p.total_flops(), 600);
        assert_eq!(p.max_flops(), 300);
        assert!((p.modeled_time - 300.0 / 1e6).abs() < 1e-12);
        assert!((p.load_balance() - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn exchange_and_allreduce() {
        let mut sim = Sim::new(4, model());
        sim.exchange(&[(2, 1000), (1, 500), (0, 0), (3, 100)]);
        // max 3 msgs, 1000 bytes.
        sim.allreduce(1); // log2(4)=2 rounds
        let phases = sim.finish();
        let p = &phases["default"];
        let expect = 3.0 * 1e-3 + 1000.0 * 1e-6 + 2.0 * (1e-3 + 8.0 * 1e-6);
        assert!((p.modeled_time - expect).abs() < 1e-12);
        assert_eq!(p.modeled_comm_time, p.modeled_time);
        assert_eq!(p.ranks[0].msgs, 2 + 2);
    }

    #[test]
    fn phases_are_separate() {
        let mut sim = Sim::new(2, model());
        sim.phase("setup");
        sim.compute(&[10, 10]);
        sim.phase("solve");
        sim.compute(&[20, 20]);
        sim.compute(&[5, 0]);
        let phases = sim.finish();
        assert_eq!(phases["setup"].total_flops(), 20);
        assert_eq!(phases["solve"].total_flops(), 45);
        assert_eq!(phases["solve"].supersteps, 2);
        assert!(phases["solve"].wall_time >= 0.0);
    }

    #[test]
    fn serial_allreduce_free() {
        let mut sim = Sim::new(1, model());
        sim.allreduce(100);
        let phases = sim.finish();
        assert_eq!(phases["default"].modeled_time, 0.0);
    }

    #[test]
    fn flop_rate_metric() {
        let mut sim = Sim::new(2, model());
        sim.compute(&[1000, 1000]);
        let phases = sim.finish();
        let p = &phases["default"];
        // 2000 flops in 1000/1e6 s = 2 Mflop/s aggregate (perfect).
        assert!((p.modeled_flop_rate() - 2e6).abs() < 1.0);
    }
}
