//! Per-rank operator views for SPMD execution over a real [`Transport`].
//!
//! A [`RankOp`] borrows one rank's share of a [`DistMatrix`](crate::DistMatrix)
//! — its diag/off blocks and its half of the persistent
//! [`HaloPlan`](crate::halo::HaloPlan) — and performs the product with real
//! messages: pack owned values per the plan's send list, exchange, unpack
//! into the ghost buffer, then run *exactly* the same per-rank kernel as the
//! orchestrated `DistMatrix::spmv` (including the BSR3 branch), so results
//! are bitwise identical to the simulated path.

use crate::halo::RankHalo;
use pmg_comm::{bytes_to_f64s, f64s_to_bytes, CommError, Transport};
use pmg_sparse::{Bsr3Matrix, CsrMatrix};

/// One rank's borrowed view of a distributed operator, bound to a message
/// tag (each operator in a lockstep SPMD program uses a distinct tag).
pub struct RankOp<'a> {
    pub(crate) diag: &'a CsrMatrix,
    pub(crate) off: &'a CsrMatrix,
    pub(crate) diag_bsr: Option<&'a Bsr3Matrix>,
    pub(crate) off_bsr: Option<&'a Bsr3Matrix>,
    pub(crate) ghost_pad: &'a [u32],
    pub(crate) nghosts: usize,
    pub(crate) halo: &'a RankHalo,
    pub(crate) tag: u32,
}

impl<'a> RankOp<'a> {
    /// Rows of this rank's share (length of the local output vector).
    pub fn local_rows(&self) -> usize {
        self.diag.nrows()
    }

    /// Columns of this rank's owned share (length of the local input).
    pub fn local_cols(&self) -> usize {
        self.diag.ncols()
    }

    /// `y_local = A_rank · x` with a real halo exchange: sends this rank's
    /// owned values per the plan, receives its ghosts, computes locally.
    ///
    /// All ranks of the machine must call this in lockstep with their own
    /// views of the same operator.
    pub fn spmv<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
    ) -> Result<(), CommError> {
        assert_eq!(x_local.len(), self.diag.ncols(), "x_local length");
        assert_eq!(y_local.len(), self.diag.nrows(), "y_local length");

        // Sends first (buffered), then blocking receives: the classic
        // deadlock-free exchange order for eager transports.
        for msg in &self.halo.send {
            let packed: Vec<f64> = msg.idx.iter().map(|&li| x_local[li as usize]).collect();
            t.send(msg.peer as usize, self.tag, &f64s_to_bytes(&packed))?;
        }
        let mut ghost_vals = vec![0.0; self.nghosts];
        for msg in &self.halo.recv {
            let vals = bytes_to_f64s(&t.recv(msg.peer as usize, self.tag)?);
            if vals.len() != msg.idx.len() {
                return Err(CommError::Invalid(format!(
                    "halo message from rank {} has {} values, plan expects {}",
                    msg.peer,
                    vals.len(),
                    msg.idx.len()
                )));
            }
            for (&slot, v) in msg.idx.iter().zip(vals) {
                ghost_vals[slot as usize] = v;
            }
        }

        // Identical kernel (and branch structure) to `DistMatrix::spmv`.
        match self.diag_bsr {
            Some(db) => db.spmv(x_local, y_local),
            None => self.diag.spmv(x_local, y_local),
        }
        if self.off.nnz() > 0 {
            let mut tmp = vec![0.0; self.off.nrows()];
            match self.off_bsr {
                Some(ob) => {
                    let mut padded = vec![0.0; ob.ncols()];
                    for (l, &p) in self.ghost_pad.iter().enumerate() {
                        padded[p as usize] = ghost_vals[l];
                    }
                    ob.spmv(&padded, &mut tmp);
                }
                None => self.off.spmv(&ghost_vals, &mut tmp),
            }
            for (a, b) in y_local.iter_mut().zip(&tmp) {
                *a += b;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::layout::Layout;
    use crate::matrix::DistMatrix;
    use crate::sim::{MachineModel, Sim};
    use crate::vec::DistVec;
    use pmg_comm::{LocalTransport, Transport};
    use pmg_sparse::{CooBuilder, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn transport_spmv_bitwise_matches_sim() {
        let n = 23;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        for p in [1, 2, 3, 5] {
            let l = Layout::block(n, p);
            let da = DistMatrix::from_global(&a, l.clone(), l.clone());
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l.clone());
            let mut sim = Sim::new(p, MachineModel::default());
            da.spmv(&mut sim, &dx, &mut dy);
            let expect = dy.to_global();

            let da = &da;
            let l2 = &l;
            let x2 = &x;
            let parts = LocalTransport::run_ranks(p, move |mut t| {
                let r = t.rank();
                let op = da.rank_op(r, 7);
                let xl: Vec<f64> = l2.owned(r).iter().map(|&g| x2[g as usize]).collect();
                let mut yl = vec![0.0; op.local_rows()];
                op.spmv(&mut t, &xl, &mut yl).unwrap();
                yl
            });
            let mut got = vec![0.0; n];
            for (r, part) in parts.iter().enumerate() {
                for (&g, &v) in l.owned(r).iter().zip(part) {
                    got[g as usize] = v;
                }
            }
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "p={p}");
            }
        }
    }
}
