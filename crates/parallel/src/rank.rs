//! Per-rank operator views for SPMD execution over a real [`Transport`].
//!
//! A [`RankOp`] borrows one rank's share of a [`DistMatrix`](crate::DistMatrix)
//! — its diag/off blocks and its half of the persistent
//! [`HaloPlan`](crate::halo::HaloPlan) — and performs the product with real
//! messages: pack owned values per the plan's send list, exchange, unpack
//! into the ghost buffer, then run *exactly* the same per-rank kernel as the
//! orchestrated `DistMatrix::spmv` (including the BSR3 branch), so results
//! are bitwise identical to the simulated path.

use crate::halo::RankHalo;
use pmg_comm::{CommError, HaloExchange, Transport};
use pmg_sparse::{Bsr3Matrix, CsrMatrix};
use std::time::Instant;

/// One rank's borrowed view of a distributed operator, bound to a message
/// tag (each operator in a lockstep SPMD program uses a distinct tag).
pub struct RankOp<'a> {
    pub(crate) diag: &'a CsrMatrix,
    pub(crate) off: &'a CsrMatrix,
    pub(crate) diag_bsr: Option<&'a Bsr3Matrix>,
    pub(crate) off_bsr: Option<&'a Bsr3Matrix>,
    pub(crate) ghost_pad: &'a [u32],
    pub(crate) nghosts: usize,
    pub(crate) interior: &'a [u32],
    pub(crate) boundary: &'a [u32],
    pub(crate) interior_b: &'a [u32],
    pub(crate) boundary_b: &'a [u32],
    pub(crate) halo: &'a RankHalo,
    pub(crate) tag: u32,
}

/// What one overlapped product hid: the interior-compute window that ran
/// while the halo messages were in flight, and the row-split sizes.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlapInfo {
    /// Wall-clock seconds of the interior-compute window between
    /// [`HaloExchange::start`] and [`HaloExchange::finish`] — latency the
    /// overlap can hide (the blocked remainder shows up in the transport's
    /// wait clock, not here).
    pub hidden_s: f64,
    /// Scalar rows computed inside the window (no ghost references).
    pub interior_rows: u64,
    /// Scalar rows computed after the ghosts arrived.
    pub boundary_rows: u64,
}

impl<'a> RankOp<'a> {
    /// Rows of this rank's share (length of the local output vector).
    pub fn local_rows(&self) -> usize {
        self.diag.nrows()
    }

    /// Columns of this rank's owned share (length of the local input).
    pub fn local_cols(&self) -> usize {
        self.diag.ncols()
    }

    /// Post this operator's halo sends (packing `x_local` per the plan)
    /// and return the in-flight exchange.
    fn start_exchange<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
    ) -> Result<HaloExchange<'a>, CommError> {
        let sends = self.halo.send.iter().map(|msg| {
            let packed: Vec<f64> = msg.idx.iter().map(|&li| x_local[li as usize]).collect();
            (msg.peer as usize, packed)
        });
        let recvs = self
            .halo
            .recv
            .iter()
            .map(|msg| (msg.peer as usize, msg.idx.as_slice()))
            .collect();
        HaloExchange::start(t, self.tag, sends, recvs)
    }

    /// The off-diagonal (ghost-column) product accumulated into `y_local`,
    /// shared verbatim between the blocking and overlapped paths — and
    /// structurally identical to `DistMatrix::spmv`'s, which the bitwise
    /// parity contract rests on (the full-vector `+=` is kept even for
    /// rows whose `tmp` entry is zero, so `-0.0 + 0.0 = +0.0` rounding is
    /// reproduced exactly).
    fn off_accumulate(&self, ghost_vals: &[f64], y_local: &mut [f64]) {
        if self.off.nnz() > 0 {
            let mut tmp = vec![0.0; self.off.nrows()];
            match self.off_bsr {
                Some(ob) => {
                    let mut padded = vec![0.0; ob.ncols()];
                    for (l, &p) in self.ghost_pad.iter().enumerate() {
                        padded[p as usize] = ghost_vals[l];
                    }
                    ob.spmv(&padded, &mut tmp);
                }
                None => self.off.spmv(ghost_vals, &mut tmp),
            }
            for (a, b) in y_local.iter_mut().zip(&tmp) {
                *a += b;
            }
        }
    }

    /// `y_local = A_rank · x` with a real halo exchange: sends this rank's
    /// owned values per the plan, receives its ghosts, computes locally.
    ///
    /// All ranks of the machine must call this in lockstep with their own
    /// views of the same operator.
    pub fn spmv<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
    ) -> Result<(), CommError> {
        assert_eq!(x_local.len(), self.diag.ncols(), "x_local length");
        assert_eq!(y_local.len(), self.diag.nrows(), "y_local length");

        // Sends first (buffered), then blocking receives: the classic
        // deadlock-free exchange order for eager transports.
        let hx = self.start_exchange(t, x_local)?;
        let mut ghost_vals = vec![0.0; self.nghosts];
        hx.finish(t, &mut ghost_vals)?;

        // Identical kernel (and branch structure) to `DistMatrix::spmv`.
        match self.diag_bsr {
            Some(db) => db.spmv(x_local, y_local),
            None => self.diag.spmv(x_local, y_local),
        }
        self.off_accumulate(&ghost_vals, y_local);
        Ok(())
    }

    /// `y_local = A_rank · x` with communication/computation overlap:
    /// sends post, the interior rows (no ghost references) are computed
    /// while the halo messages are in flight, then receives drain and the
    /// boundary rows and ghost-column product finish the job.
    ///
    /// Bitwise identical to [`spmv`](RankOp::spmv): interior and boundary
    /// row classes partition the local rows, each row's accumulation runs
    /// the unchanged per-row kernel, and the ghost-column accumulate is the
    /// same full-vector pass — only the *schedule* differs. Lockstep like
    /// [`spmv`](RankOp::spmv); blocking and overlapped callers may not be
    /// mixed across ranks of one product.
    pub fn spmv_overlapped<T: Transport>(
        &self,
        t: &mut T,
        x_local: &[f64],
        y_local: &mut [f64],
    ) -> Result<OverlapInfo, CommError> {
        assert_eq!(x_local.len(), self.diag.ncols(), "x_local length");
        assert_eq!(y_local.len(), self.diag.nrows(), "y_local length");

        let hx = self.start_exchange(t, x_local)?;
        let window = Instant::now();
        match self.diag_bsr {
            Some(db) => db.spmv_block_rows(x_local, y_local, self.interior_b),
            None => self.diag.spmv_rows(x_local, y_local, self.interior),
        }
        let hidden_s = window.elapsed().as_secs_f64();
        let mut ghost_vals = vec![0.0; self.nghosts];
        hx.finish(t, &mut ghost_vals)?;
        match self.diag_bsr {
            Some(db) => db.spmv_block_rows(x_local, y_local, self.boundary_b),
            None => self.diag.spmv_rows(x_local, y_local, self.boundary),
        }
        self.off_accumulate(&ghost_vals, y_local);
        let (interior_rows, boundary_rows) = match self.diag_bsr {
            Some(_) => (
                3 * self.interior_b.len() as u64,
                3 * self.boundary_b.len() as u64,
            ),
            None => (self.interior.len() as u64, self.boundary.len() as u64),
        };
        Ok(OverlapInfo {
            hidden_s,
            interior_rows,
            boundary_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::layout::Layout;
    use crate::matrix::DistMatrix;
    use crate::sim::{MachineModel, Sim};
    use crate::vec::DistVec;
    use pmg_comm::{LocalTransport, Transport};
    use pmg_sparse::{CooBuilder, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn transport_spmv_bitwise_matches_sim() {
        let n = 23;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        for p in [1, 2, 3, 5] {
            let l = Layout::block(n, p);
            let da = DistMatrix::from_global(&a, l.clone(), l.clone());
            let dx = DistVec::from_global(l.clone(), &x);
            let mut dy = DistVec::zeros(l.clone());
            let mut sim = Sim::new(p, MachineModel::default());
            da.spmv(&mut sim, &dx, &mut dy);
            let expect = dy.to_global();

            let da = &da;
            let l2 = &l;
            let x2 = &x;
            let parts = LocalTransport::run_ranks(p, move |mut t| {
                let r = t.rank();
                let op = da.rank_op(r, 7);
                let xl: Vec<f64> = l2.owned(r).iter().map(|&g| x2[g as usize]).collect();
                let mut yl = vec![0.0; op.local_rows()];
                op.spmv(&mut t, &xl, &mut yl).unwrap();
                yl
            });
            let mut got = vec![0.0; n];
            for (r, part) in parts.iter().enumerate() {
                for (&g, &v) in l.owned(r).iter().zip(part) {
                    got[g as usize] = v;
                }
            }
            for (a, b) in got.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "p={p}");
            }
        }
    }

    #[test]
    fn overlapped_spmv_bitwise_matches_blocking() {
        let n = 29;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        for p in [1, 2, 3, 5] {
            let l = Layout::block(n, p);
            let da = DistMatrix::from_global(&a, l.clone(), l.clone());
            let da = &da;
            let l2 = &l;
            let x2 = &x;
            let parts = LocalTransport::run_ranks(p, move |mut t| {
                let r = t.rank();
                let op = da.rank_op(r, 7);
                let xl: Vec<f64> = l2.owned(r).iter().map(|&g| x2[g as usize]).collect();
                let mut y1 = vec![0.0; op.local_rows()];
                op.spmv(&mut t, &xl, &mut y1).unwrap();
                let mut y2 = vec![0.0; op.local_rows()];
                let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
                (y1, y2, info)
            });
            for (r, (y1, y2, info)) in parts.iter().enumerate() {
                assert_eq!(
                    info.interior_rows + info.boundary_rows,
                    y1.len() as u64,
                    "p={p} r={r} row split must partition the local rows"
                );
                for (a, b) in y1.iter().zip(y2) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p} r={r}");
                }
            }
        }
    }

    /// Vertex-block tridiagonal operator with dense 3x3 blocks (the BSR3
    /// promotion path).
    fn block_laplacian(nb: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(3 * nb, 3 * nb);
        for v in 0..nb {
            for i in 0..3 {
                for j in 0..3 {
                    b.push(3 * v + i, 3 * v + j, if i == j { 4.0 } else { -0.5 });
                    if v > 0 {
                        b.push(3 * v + i, 3 * (v - 1) + j, -0.25);
                    }
                    if v + 1 < nb {
                        b.push(3 * v + i, 3 * (v + 1) + j, -0.25);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn overlapped_spmv_bitwise_matches_blocking_bsr3() {
        let nb = 10;
        let a = block_laplacian(nb);
        let p = 3;
        // Contiguous vertex blocks so ranks have both interior and
        // boundary block rows.
        let mut owner = vec![0u32; 3 * nb];
        for v in 0..nb {
            for c in 0..3 {
                owner[3 * v + c] = ((v * p / nb) as u32).min(p as u32 - 1);
            }
        }
        let l = Layout::from_part(owner, p);
        let da = DistMatrix::from_global_blocked(&a, l.clone(), l.clone());
        assert!(da.bsr3_routed());
        let x: Vec<f64> = (0..3 * nb).map(|i| (i as f64 * 0.7).sin()).collect();
        let da = &da;
        let l2 = &l;
        let x2 = &x;
        let parts = LocalTransport::run_ranks(p, move |mut t| {
            let r = t.rank();
            let op = da.rank_op(r, 5);
            let xl: Vec<f64> = l2.owned(r).iter().map(|&g| x2[g as usize]).collect();
            let mut y1 = vec![0.0; op.local_rows()];
            op.spmv(&mut t, &xl, &mut y1).unwrap();
            let mut y2 = vec![0.0; op.local_rows()];
            let info = op.spmv_overlapped(&mut t, &xl, &mut y2).unwrap();
            (y1, y2, info)
        });
        for (r, (y1, y2, info)) in parts.iter().enumerate() {
            assert_eq!(info.interior_rows + info.boundary_rows, y1.len() as u64);
            for (a, b) in y1.iter().zip(y2) {
                assert_eq!(a.to_bits(), b.to_bits(), "r={r}");
            }
        }
    }
}
