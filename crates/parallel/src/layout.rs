//! Ownership layout of global indices over virtual ranks.

use crate::halo::{ghosts_fingerprint, HaloPlan};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A distribution of `n` global indices over `nranks` ranks. Each global
/// index has a unique owner; each rank stores its owned indices in
/// ascending global order, which defines the rank-local numbering.
#[derive(Debug)]
pub struct Layout {
    nranks: usize,
    owner: Vec<u32>,
    locals: Vec<Vec<u32>>,
    global_to_local: Vec<u32>,
    /// Persistent halo-exchange plans, keyed by a fingerprint of the
    /// ghost-set; built once, replayed on every exchange.
    plans: Mutex<HashMap<u64, Arc<HaloPlan>>>,
}

impl Clone for Layout {
    fn clone(&self) -> Self {
        // The plan cache is an optimization, not state: a clone starts
        // empty and repopulates on demand.
        Layout {
            nranks: self.nranks,
            owner: self.owner.clone(),
            locals: self.locals.clone(),
            global_to_local: self.global_to_local.clone(),
            plans: Mutex::new(HashMap::new()),
        }
    }
}

impl Layout {
    /// Build from a per-index owner assignment.
    pub fn from_part(owner: Vec<u32>, nranks: usize) -> Arc<Layout> {
        assert!(nranks >= 1);
        let mut locals = vec![Vec::new(); nranks];
        for (g, &r) in owner.iter().enumerate() {
            assert!((r as usize) < nranks, "owner out of range");
            locals[r as usize].push(g as u32);
        }
        let mut global_to_local = vec![0u32; owner.len()];
        for list in &locals {
            for (l, &g) in list.iter().enumerate() {
                global_to_local[g as usize] = l as u32;
            }
        }
        Arc::new(Layout {
            nranks,
            owner,
            locals,
            global_to_local,
            plans: Mutex::new(HashMap::new()),
        })
    }

    /// Contiguous block distribution of `n` indices.
    pub fn block(n: usize, nranks: usize) -> Arc<Layout> {
        let owner = (0..n)
            .map(|g| ((g as u64 * nranks as u64) / n.max(1) as u64) as u32)
            .collect();
        Self::from_part(owner, nranks)
    }

    /// Everything on one rank.
    pub fn serial(n: usize) -> Arc<Layout> {
        Self::from_part(vec![0; n], 1)
    }

    /// Expand a per-entity layout to `dofs` degrees of freedom per entity
    /// (dof `e*dofs + c` is owned by the owner of entity `e`).
    pub fn expand_dofs(entity: &Layout, dofs: usize) -> Arc<Layout> {
        let owner = entity
            .owner
            .iter()
            .flat_map(|&r| std::iter::repeat_n(r, dofs))
            .collect();
        Self::from_part(owner, entity.nranks)
    }

    pub fn num_ranks(&self) -> usize {
        self.nranks
    }

    pub fn num_global(&self) -> usize {
        self.owner.len()
    }

    #[inline]
    pub fn owner(&self, g: usize) -> u32 {
        self.owner[g]
    }

    /// Global indices owned by `rank`, ascending.
    #[inline]
    pub fn owned(&self, rank: usize) -> &[u32] {
        &self.locals[rank]
    }

    pub fn local_len(&self, rank: usize) -> usize {
        self.locals[rank].len()
    }

    /// Rank-local index of global index `g` (within its owner's numbering).
    #[inline]
    pub fn local_index(&self, g: usize) -> u32 {
        self.global_to_local[g]
    }

    /// Largest / average owned count (load balance of the layout itself).
    pub fn max_local(&self) -> usize {
        self.locals.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// The persistent coalesced exchange plan for `ghosts` (per-rank
    /// ascending ghost global ids) under this layout's ownership. Built on
    /// first request, cached and replayed afterwards — counted by the
    /// `comm/plan_build` / `comm/plan_reuse` telemetry counters.
    pub fn halo_plan(&self, ghosts: &[Vec<u32>]) -> Arc<HaloPlan> {
        let fp = ghosts_fingerprint(ghosts);
        let mut cache = self.plans.lock().expect("halo plan cache poisoned");
        if let Some(plan) = cache.get(&fp) {
            pmg_telemetry::counter_add("comm/plan_reuse", 1);
            return Arc::clone(plan);
        }
        let plan = Arc::new(HaloPlan::build(self, ghosts));
        pmg_telemetry::counter_add("comm/plan_build", 1);
        cache.insert(fp, Arc::clone(&plan));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_partitions() {
        let l = Layout::block(10, 3);
        assert_eq!(l.num_ranks(), 3);
        assert_eq!(l.num_global(), 10);
        let total: usize = (0..3).map(|r| l.local_len(r)).sum();
        assert_eq!(total, 10);
        // Block layout is contiguous and ordered.
        for r in 0..3 {
            let owned = l.owned(r);
            for w in owned.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn local_index_roundtrip() {
        let l = Layout::from_part(vec![1, 0, 1, 0, 2], 3);
        for g in 0..5 {
            let r = l.owner(g) as usize;
            let li = l.local_index(g) as usize;
            assert_eq!(l.owned(r)[li] as usize, g);
        }
        assert_eq!(l.owned(0), &[1, 3]);
        assert_eq!(l.owned(1), &[0, 2]);
        assert_eq!(l.owned(2), &[4]);
    }

    #[test]
    fn expand_dofs_triples() {
        let v = Layout::from_part(vec![0, 1], 2);
        let d = Layout::expand_dofs(&v, 3);
        assert_eq!(d.num_global(), 6);
        for c in 0..3 {
            assert_eq!(d.owner(c), 0);
            assert_eq!(d.owner(3 + c), 1);
        }
        assert_eq!(d.owned(1), &[3, 4, 5]);
    }

    #[test]
    fn serial_layout() {
        let l = Layout::serial(4);
        assert_eq!(l.num_ranks(), 1);
        assert_eq!(l.owned(0), &[0, 1, 2, 3]);
        assert_eq!(l.max_local(), 4);
    }
}
