//! Property tests for the 3x3 block CSR storage: random *block* patterns —
//! including partially-populated 3x3 blocks, the shape Dirichlet column
//! elimination leaves behind — must round-trip through `Bsr3Matrix` and
//! multiply exactly like the scalar CSR reference.

use pmg_sparse::{Bsr3Matrix, CooBuilder, CsrMatrix};
use proptest::prelude::*;
use std::collections::BTreeSet;

const NB: usize = 6; // block dimension: 18x18 scalar

/// Assemble a scalar CSR matrix from block descriptors: block row/col, a
/// 9-bit occupancy mask (which of the block's scalar entries exist), and
/// the 9 candidate values.
fn build(blocks: &[(usize, usize, usize, Vec<f64>)]) -> CsrMatrix {
    let mut b = CooBuilder::new(3 * NB, 3 * NB);
    for (br, bc, mask, vals) in blocks {
        for (e, &v) in vals.iter().enumerate() {
            if mask & (1 << e) != 0 {
                b.push(3 * br + e / 3, 3 * bc + e % 3, v);
            }
        }
    }
    b.build()
}

proptest! {
    #[test]
    fn prop_roundtrip_preserves_scalar_matrix(
        blocks in proptest::collection::vec(
            (0usize..NB, 0usize..NB, 1usize..512,
             proptest::collection::vec(-4.0f64..4.0, 9)),
            0..20),
    ) {
        let a = build(&blocks);
        let bsr = Bsr3Matrix::from_csr(&a);
        // Every touched block is stored exactly once, fully materialized.
        let distinct: BTreeSet<(usize, usize)> = blocks
            .iter()
            .filter(|(_, _, mask, _)| *mask != 0)
            .map(|&(br, bc, _, _)| (br, bc))
            .collect();
        prop_assert_eq!(bsr.num_blocks(), distinct.len());
        prop_assert_eq!(bsr.nnz_stored(), 9 * distinct.len());
        prop_assert_eq!(bsr.to_csr(), a);
    }

    #[test]
    fn prop_spmv_bitwise_matches_csr(
        blocks in proptest::collection::vec(
            (0usize..NB, 0usize..NB, 1usize..512,
             proptest::collection::vec(-4.0f64..4.0, 9)),
            0..20),
        x in proptest::collection::vec(-3.0f64..3.0, 3 * NB),
    ) {
        let a = build(&blocks);
        let bsr = Bsr3Matrix::from_csr(&a);
        let mut y_csr = vec![0.0; 3 * NB];
        let mut y_bsr = vec![0.0; 3 * NB];
        let mut y_par = vec![0.0; 3 * NB];
        a.spmv(&x, &mut y_csr);
        bsr.spmv(&x, &mut y_bsr);
        bsr.spmv_par(&x, &mut y_par);
        // The blocked kernels accumulate in the scalar kernel's per-row
        // column order, so equality is exact — not approximate.
        prop_assert_eq!(&y_csr, &y_bsr);
        prop_assert_eq!(&y_csr, &y_par);
    }
}
