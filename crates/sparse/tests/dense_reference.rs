//! Property tests pitting the sparse kernels against a dense reference:
//! random small COO-built matrices, every result checked elementwise
//! against the same computation done with `DenseMatrix`. Complements the
//! structural properties in `csr.rs` (transpose consistency, Galerkin
//! symmetry) with value-level agreement.

use pmg_sparse::{CooBuilder, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Build a CSR matrix from entry triples, folding indices into range.
fn csr_from(nrows: usize, ncols: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut b = CooBuilder::new(nrows, ncols);
    for &(i, j, v) in entries {
        b.push(i % nrows, j % ncols, v);
    }
    b.build()
}

fn dense_mul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.ncols(), b.nrows());
    DenseMatrix::from_fn(a.nrows(), b.ncols(), |i, j| {
        (0..a.ncols()).map(|k| a.row(i)[k] * b.row(k)[j]).sum()
    })
}

fn assert_close(a: &DenseMatrix, b: &DenseMatrix, tol: f64) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.nrows(), b.nrows());
    prop_assert_eq!(a.ncols(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            let (u, v) = (a.row(i)[j], b.row(i)[j]);
            prop_assert!(
                (u - v).abs() <= tol * (1.0 + u.abs().max(v.abs())),
                "({}, {}): {} vs {}",
                i,
                j,
                u,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn prop_spmv_matches_dense(
        dims in (1usize..12, 1usize..12),
        entries in proptest::collection::vec(
            (0usize..12, 0usize..12, -10.0f64..10.0), 0..80),
        xs in proptest::collection::vec(-5.0f64..5.0, 12),
    ) {
        let (nr, nc) = dims;
        let a = csr_from(nr, nc, &entries);
        let x = &xs[..nc];
        let mut y = vec![0.0; nr];
        a.spmv(x, &mut y);
        let mut yd = vec![0.0; nr];
        a.to_dense().matvec(x, &mut yd);
        for (u, v) in y.iter().zip(&yd) {
            prop_assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn prop_transpose_matches_dense(
        dims in (1usize..12, 1usize..12),
        entries in proptest::collection::vec(
            (0usize..12, 0usize..12, -10.0f64..10.0), 0..80),
    ) {
        let (nr, nc) = dims;
        let a = csr_from(nr, nc, &entries);
        let at = a.transpose().to_dense();
        let ad = a.to_dense();
        let expect = DenseMatrix::from_fn(nc, nr, |i, j| ad.row(j)[i]);
        assert_close(&at, &expect, 0.0)?;
    }

    #[test]
    fn prop_matmul_matches_dense(
        dims in (1usize..8, 1usize..8, 1usize..8),
        a_entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..50),
        b_entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..50),
    ) {
        let (m, k, n) = dims;
        let a = csr_from(m, k, &a_entries);
        let b = csr_from(k, n, &b_entries);
        let ab = a.matmul(&b).to_dense();
        let expect = dense_mul(&a.to_dense(), &b.to_dense());
        assert_close(&ab, &expect, 1e-12)?;
    }

    #[test]
    fn prop_rap_matches_dense_and_stays_symmetric(
        dims in (1usize..9, 1usize..5),
        a_entries in proptest::collection::vec(
            (0usize..9, 0usize..9, -10.0f64..10.0), 0..40),
        r_entries in proptest::collection::vec(
            (0usize..5, 0usize..9, -2.0f64..2.0), 1..20),
    ) {
        let (n, ncoarse) = dims;
        // Symmetrize A — the Galerkin product must preserve that.
        let mut b = CooBuilder::new(n, n);
        for &(i, j, v) in &a_entries {
            b.push(i % n, j % n, v);
            b.push(j % n, i % n, v);
        }
        let a = b.build();
        let r = csr_from(ncoarse, n, &r_entries);
        let ac = a.rap(&r);
        prop_assert!(ac.is_symmetric(1e-9));
        let rd = r.to_dense();
        let rt = DenseMatrix::from_fn(n, ncoarse, |i, j| rd.row(j)[i]);
        let expect = dense_mul(&dense_mul(&rd, &a.to_dense()), &rt);
        assert_close(&ac.to_dense(), &expect, 1e-10)?;
    }
}
