//! Compressed sparse row matrices and the kernels multigrid needs:
//! matrix-vector products, transposition, sparse matrix-matrix products and
//! the Galerkin triple product `A_c = R A Rᵀ` (§3 of the paper).

use crate::dense::DenseMatrix;
use crate::flops;
use rayon::prelude::*;

/// Builder accumulating coordinate-format entries; duplicate `(i, j)`
/// entries are summed on build (matching finite element assembly semantics).
#[derive(Clone, Debug, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Start building an `nrows` x `ncols` matrix with no entries.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Reserve space for `n` additional entries.
    pub fn reserve(&mut self, n: usize) {
        self.entries.reserve(n);
    }

    /// Add `v` at `(i, j)`.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols, "entry out of bounds");
        self.entries.push((i, j, v));
    }

    /// Entries pushed so far (duplicates not yet summed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assemble into CSR, summing duplicates and dropping exact zeros that
    /// result from cancellation only if `drop_zeros` is set.
    pub fn build(mut self) -> CsrMatrix {
        // Sort lexicographically by (row, col); stable not required since we
        // sum duplicates.
        self.entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        let mut k = 0;
        while k < self.entries.len() {
            let (i, j, mut v) = self.entries[k];
            k += 1;
            while k < self.entries.len() && self.entries[k].0 == i && self.entries[k].1 == j {
                v += self.entries[k].2;
                k += 1;
            }
            row_ptr[i + 1] += 1;
            col_idx.push(j);
            vals.push(v);
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// A sparse matrix in compressed sparse row format. Column indices within a
/// row are sorted and unique.
///
/// ```
/// use pmg_sparse::{CooBuilder, CsrMatrix};
/// let mut b = CooBuilder::new(2, 2);
/// b.push(0, 0, 2.0);
/// b.push(0, 1, -1.0);
/// b.push(1, 1, 3.0);
/// let a = b.build();
/// let mut y = vec![0.0; 2];
/// a.spmv(&[1.0, 2.0], &mut y);
/// assert_eq!(y, vec![0.0, 6.0]);
/// assert_eq!(a.nnz(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Construct from raw parts (validated).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1);
        assert_eq!(col_idx.len(), vals.len());
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(col_idx.iter().all(|&j| j < ncols));
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The n-by-n identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// A matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let a = self.row_ptr[i];
        let b = self.row_ptr[i + 1];
        (&self.col_idx[a..b], &self.vals[a..b])
    }

    /// Mutable values of row `i` (column structure is immutable).
    pub fn row_vals_mut(&mut self, i: usize) -> &mut [f64] {
        let a = self.row_ptr[i];
        let b = self.row_ptr[i + 1];
        &mut self.vals[a..b]
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (one entry per stored value).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// All stored values in row-major CSR order.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable view of all stored values (the pattern is immutable) — the
    /// direct-indexing seam pattern-reuse assembly and [`crate::RapPlan`]
    /// write through.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Copy a subset of rows, in the given order, into a new matrix over
    /// the same column space. Each output row is a verbatim copy (same
    /// column order, same value bits) of the source row — the row-shipping
    /// primitive of the sharded setup path, where operator and restriction
    /// rows travel between ranks as self-contained row sets.
    pub fn extract_rows(&self, rows: &[u32]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for &g in rows {
            let (cols, vs) = self.row(g as usize);
            col_idx.extend_from_slice(cols);
            vals.extend_from_slice(vs);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts(rows.len(), self.ncols(), row_ptr, col_idx, vals)
    }

    /// Value at `(i, j)`, or 0 if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y = A x` (serial).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        flops::add(2 * self.nnz() as u64);
    }

    /// Sparse-times-multiple-vectors (SpMM): `Y = A X` on `k` interleaved
    /// vectors, where column `c` of `X` lives at `x[j * k + c]` and column
    /// `c` of `Y` at `y[i * k + c]`.
    ///
    /// Each column's accumulation walks the nonzeros in exactly [`spmv`]'s
    /// order, so column `c` of the result is bitwise identical to a single
    /// `spmv` on that column — the matrix values and indices are simply
    /// read once for all `k` columns instead of `k` times.
    ///
    /// [`spmv`]: CsrMatrix::spmv
    pub fn spmm(&self, x: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "spmm needs at least one column");
        assert_eq!(x.len(), self.ncols * k);
        assert_eq!(y.len(), self.nrows * k);
        // Monomorphized bodies for the column counts the solve path uses:
        // with a const-width accumulator the inner update is a fixed-width
        // vector fma instead of a runtime-length loop per nonzero. Each
        // column's adds run in the same order either way.
        match k {
            1 => self.spmm_const::<1>(x, y),
            2 => self.spmm_const::<2>(x, y),
            4 => self.spmm_const::<4>(x, y),
            8 => self.spmm_const::<8>(x, y),
            _ => {
                let mut acc = vec![0.0f64; k];
                for i in 0..self.nrows {
                    acc.fill(0.0);
                    let (cols, vals) = self.row(i);
                    for (&j, &v) in cols.iter().zip(vals) {
                        let xb = &x[j * k..j * k + k];
                        for (a, &xc) in acc.iter_mut().zip(xb) {
                            *a += v * xc;
                        }
                    }
                    y[i * k..i * k + k].copy_from_slice(&acc);
                }
            }
        }
        flops::add(2 * self.nnz() as u64 * k as u64);
        pmg_telemetry::counter_add("spmv/multi_csr", 1);
        pmg_telemetry::counter_add("spmv/multi_cols", k as u64);
    }

    /// [`spmm`] body for a compile-time column count (same accumulation
    /// order, so bitwise identical to the runtime-`k` form).
    ///
    /// [`spmm`]: CsrMatrix::spmm
    fn spmm_const<const K: usize>(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.nrows {
            let mut acc = [0.0f64; K];
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let xb: &[f64; K] = x[j * K..j * K + K].try_into().unwrap();
                for (a, &xc) in acc.iter_mut().zip(xb) {
                    *a += v * xc;
                }
            }
            y[i * K..i * K + K].copy_from_slice(&acc);
        }
    }

    /// `y[i] = (A x)[i]` for the listed `rows` only; other entries of `y`
    /// are untouched. The per-row accumulation is identical to [`spmv`]
    /// (same loop body, same order), so computing a partition of the rows
    /// in any number of `spmv_rows` calls produces bitwise the same `y` as
    /// one full [`spmv`] — the property the communication/computation
    /// overlap in the SPMD solve path relies on.
    ///
    /// [`spmv`]: CsrMatrix::spmv
    pub fn spmv_rows(&self, x: &[f64], y: &mut [f64], rows: &[u32]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let mut nnz = 0u64;
        for &i in rows {
            let i = i as usize;
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            y[i] = acc;
            nnz += cols.len() as u64;
        }
        flops::add(2 * nnz);
    }

    /// `y = A x` parallelized over rows with rayon.
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            *yi = acc;
        });
        flops::add(2 * self.nnz() as u64);
    }

    /// `y = Aᵀ x` without forming the transpose.
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        y.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let xi = x[i];
            for (&j, &v) in cols.iter().zip(vals) {
                y[j] += v * xi;
            }
        }
        flops::add(2 * self.nnz() as u64);
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for j in 0..self.ncols {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for i in 0..self.nrows {
            let (cols, v) = self.row(i);
            for (&j, &val) in cols.iter().zip(v) {
                let dst = next[j];
                col_idx[dst] = i;
                vals[dst] = val;
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Sparse matrix product `C = self * other` (Gustavson's algorithm).
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let n = self.nrows;
        let m = other.ncols;
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();

        // Dense accumulator workspace with sparse reset.
        let mut acc = vec![0.0f64; m];
        let mut marker = vec![usize::MAX; m];
        let mut touched: Vec<usize> = Vec::new();
        let mut fl: u64 = 0;

        for i in 0..n {
            touched.clear();
            let (acols, avals) = self.row(i);
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = other.row(k);
                fl += 2 * bcols.len() as u64;
                for (&j, &bv) in bcols.iter().zip(bvals) {
                    if marker[j] != i {
                        marker[j] = i;
                        acc[j] = av * bv;
                        touched.push(j);
                    } else {
                        acc[j] += av * bv;
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                col_idx.push(j);
                vals.push(acc[j]);
            }
            row_ptr.push(col_idx.len());
        }
        flops::add(fl);
        CsrMatrix {
            nrows: n,
            ncols: m,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Parallel sparse matrix product: Gustavson per row, rows processed in
    /// rayon chunks with chunk-local accumulator workspaces, results
    /// stitched afterwards. Identical output to [`CsrMatrix::matmul`].
    pub fn matmul_par(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let n = self.nrows;
        let m = other.ncols;
        let chunk = matmul_chunk_rows(n, rayon::current_num_threads());
        let nchunks = n.div_ceil(chunk.max(1)).max(1);
        if n == 0 || nchunks <= 1 {
            return self.matmul(other);
        }
        type Piece = (Vec<usize>, Vec<f64>, Vec<usize>, u64);
        let pieces: Vec<Piece> = (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(n);
                let mut acc = vec![0.0f64; m];
                let mut marker = vec![usize::MAX; m];
                let mut touched: Vec<usize> = Vec::new();
                let mut col_idx = Vec::new();
                let mut vals = Vec::new();
                let mut lens = Vec::with_capacity(hi - lo);
                let mut fl: u64 = 0;
                for i in lo..hi {
                    touched.clear();
                    let (acols, avals) = self.row(i);
                    for (&k, &av) in acols.iter().zip(avals) {
                        let (bcols, bvals) = other.row(k);
                        fl += 2 * bcols.len() as u64;
                        for (&j, &bv) in bcols.iter().zip(bvals) {
                            if marker[j] != i {
                                marker[j] = i;
                                acc[j] = av * bv;
                                touched.push(j);
                            } else {
                                acc[j] += av * bv;
                            }
                        }
                    }
                    touched.sort_unstable();
                    for &j in &touched {
                        col_idx.push(j);
                        vals.push(acc[j]);
                    }
                    lens.push(touched.len());
                }
                (col_idx, vals, lens, fl)
            })
            .collect();

        let total: usize = pieces.iter().map(|p| p.0.len()).sum();
        let mut col_idx = Vec::with_capacity(total);
        let mut vals = Vec::with_capacity(total);
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut fl = 0u64;
        for (ci, va, lens, f) in pieces {
            for len in lens {
                row_ptr.push(row_ptr.last().unwrap() + len);
            }
            col_idx.extend_from_slice(&ci);
            vals.extend_from_slice(&va);
            fl += f;
        }
        flops::add(fl);
        CsrMatrix {
            nrows: n,
            ncols: m,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Galerkin triple product `A_c = R A Rᵀ` where `self = A` (n×n) and `r`
    /// is the restriction (n_c × n). This is the "Mat. Products (RAR')"
    /// operation in the paper's Epimetheus component.
    pub fn rap(&self, r: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(r.ncols(), self.nrows);
        let ra = r.matmul_par(self);
        ra.matmul_par(&r.transpose())
    }

    /// The diagonal as a vector (missing entries are 0). One linear pass
    /// over each row slice — columns are sorted, so scanning stops at the
    /// first index `≥ i` (cheaper than a per-entry binary search on the
    /// short rows of FE operators, and this runs per smoother setup).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, di) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    if j == i {
                        *di = v;
                    }
                    break;
                }
            }
        }
        d
    }

    /// Principal submatrix on `rows` (re-indexed 0..rows.len()); entries
    /// whose column is outside `rows` are dropped.
    pub fn principal_submatrix(&self, rows: &[usize]) -> CsrMatrix {
        let mut global_to_local = std::collections::HashMap::with_capacity(rows.len());
        for (l, &g) in rows.iter().enumerate() {
            global_to_local.insert(g, l);
        }
        let mut b = CooBuilder::new(rows.len(), rows.len());
        for (l, &g) in rows.iter().enumerate() {
            let (cols, vals) = self.row(g);
            for (&j, &v) in cols.iter().zip(vals) {
                if let Some(&lj) = global_to_local.get(&j) {
                    b.push(l, lj, v);
                }
            }
        }
        b.build()
    }

    /// Dense copy (small matrices only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                d[(i, j)] = v;
            }
        }
        d
    }

    /// Symmetry check up to `tol` relative to the largest entry.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let scale = self
            .vals
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-300);
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structurally nonsymmetric: fall back to value comparison.
            for i in 0..self.nrows {
                let (cols, vals) = self.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    if (v - t.get(i, j)).abs() > tol * scale {
                        return false;
                    }
                }
            }
            return true;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(a, b)| (a - b).abs() <= tol * scale)
    }

    /// Add `v` to the stored entry `(i, j)`. Returns `false` (and changes
    /// nothing) if the entry is not in the sparsity pattern.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) -> bool {
        let a = self.row_ptr[i];
        let b = self.row_ptr[i + 1];
        match self.col_idx[a..b].binary_search(&j) {
            Ok(k) => {
                self.vals[a + k] += v;
                true
            }
            Err(_) => false,
        }
    }

    /// Zero all stored values, keeping the sparsity pattern (for repeated
    /// assembly into a fixed structure).
    pub fn zero_values(&mut self) {
        self.vals.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Scale all values by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vals {
            *v *= s;
        }
        flops::add(self.vals.len() as u64);
    }

    /// Sparse sum `C = self + alpha · other`.
    pub fn add_scaled(&self, other: &CsrMatrix, alpha: f64) -> CsrMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut b = CooBuilder::new(self.nrows, self.ncols);
        b.reserve(self.nnz() + other.nnz());
        for (i, j, v) in self.iter() {
            b.push(i, j, v);
        }
        for (i, j, v) in other.iter() {
            b.push(i, j, alpha * v);
        }
        flops::add(other.nnz() as u64 * 2);
        b.build()
    }

    /// Scale row `i` by `d[i]`.
    pub fn scale_rows(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.nrows);
        for i in 0..self.nrows {
            let (a, b) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for v in &mut self.vals[a..b] {
                *v *= d[i];
            }
        }
        flops::add(self.vals.len() as u64);
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        flops::add(2 * self.vals.len() as u64);
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Iterate over all stored entries as `(i, j, v)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }
}

/// Rows per parallel chunk for [`CsrMatrix::matmul_par`]: aim for a few
/// chunks per worker thread (load balance without stitching overhead),
/// but never chunks smaller than 256 rows — below that the per-chunk
/// accumulator setup dominates and the serial path wins.
fn matmul_chunk_rows(nrows: usize, threads: usize) -> usize {
    let target_chunks = threads.max(1) * 4;
    nrows.div_ceil(target_chunks).max(256)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> CsrMatrix {
        // [2 0 1]
        // [0 3 0]
        // [4 0 5]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 2.0);
        b.push(0, 2, 1.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        b.push(2, 2, 5.0);
        b.build()
    }

    #[test]
    fn build_sums_duplicates() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 1, 5.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![5.0, 6.0, 19.0]);
        let mut y2 = vec![0.0; 3];
        a.spmv_par(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        let x = vec![1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        a.spmv_transpose(&x, &mut y1);
        a.transpose().spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn matmul_identity() {
        let a = small();
        let i = CsrMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_dense() {
        let a = small();
        let b = small().transpose();
        let c = a.matmul(&b);
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += ad[(i, k)] * bd[(k, j)];
                }
                assert!((c.get(i, j) - acc).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn matmul_par_matches_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        // Big enough to cross the parallel-chunk threshold.
        let n = 2600;
        let mut ba = CooBuilder::new(n, n);
        let mut bb = CooBuilder::new(n, n);
        for i in 0..n {
            for _ in 0..4 {
                ba.push(i, rng.gen_range(0..n), rng.gen_range(-2.0..2.0));
                bb.push(i, rng.gen_range(0..n), rng.gen_range(-2.0..2.0));
            }
        }
        let a = ba.build();
        let b = bb.build();
        assert_eq!(a.matmul(&b), a.matmul_par(&b));
    }

    #[test]
    fn matmul_chunk_rows_derivation() {
        // Chunks follow available parallelism: ~4 chunks per thread.
        assert_eq!(matmul_chunk_rows(100_000, 4), 100_000_usize.div_ceil(16));
        assert_eq!(
            matmul_chunk_rows(1_000_000, 8),
            1_000_000_usize.div_ceil(32)
        );
        // ... but never shrink below the 256-row floor.
        assert_eq!(matmul_chunk_rows(300, 64), 256);
        assert_eq!(matmul_chunk_rows(0, 1), 256);
        // Serial-fallback boundary at one thread: n <= 256 gives one chunk
        // (matmul_par delegates to matmul), n = 257 gives two.
        assert_eq!(256_usize.div_ceil(matmul_chunk_rows(256, 1)), 1);
        assert_eq!(257_usize.div_ceil(matmul_chunk_rows(257, 1)), 2);
    }

    #[test]
    fn matmul_par_across_fallback_boundary() {
        use rand::{Rng, SeedableRng};
        // Exercise both sides of the nchunks <= 1 serial-fallback boundary
        // explicitly: 256 rows stays serial, 257 takes the chunked path.
        for n in [255, 256, 257, 258] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            let mut ba = CooBuilder::new(n, n);
            let mut bb = CooBuilder::new(n, n);
            for i in 0..n {
                for _ in 0..3 {
                    ba.push(i, rng.gen_range(0..n), rng.gen_range(-2.0..2.0));
                    bb.push(i, rng.gen_range(0..n), rng.gen_range(-2.0..2.0));
                }
            }
            let a = ba.build();
            let b = bb.build();
            assert_eq!(a.matmul(&b), a.matmul_par(&b), "n={n}");
        }
    }

    #[test]
    fn diag_skips_missing_entries() {
        // Row 1 has no diagonal entry; row 2's diagonal is not its first
        // stored column.
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 5.0);
        b.push(1, 0, 1.0);
        b.push(1, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 2, 7.0);
        let a = b.build();
        assert_eq!(a.diag(), vec![5.0, 0.0, 7.0]);
    }

    #[test]
    fn rap_galerkin() {
        let a = small();
        // R = injection onto vertices {0, 2}.
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(1, 2, 1.0);
        let r = b.build();
        let ac = a.rap(&r);
        assert_eq!(ac.nrows(), 2);
        assert_eq!(ac.get(0, 0), 2.0);
        assert_eq!(ac.get(0, 1), 1.0);
        assert_eq!(ac.get(1, 0), 4.0);
        assert_eq!(ac.get(1, 1), 5.0);
    }

    #[test]
    fn rap_preserves_symmetry() {
        let mut b = CooBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 4.0);
        }
        b.push(0, 1, -1.0);
        b.push(1, 0, -1.0);
        b.push(1, 2, -1.0);
        b.push(2, 1, -1.0);
        let a = b.build();
        assert!(a.is_symmetric(1e-14));
        let mut rb = CooBuilder::new(2, 3);
        rb.push(0, 0, 1.0);
        rb.push(0, 1, 0.5);
        rb.push(1, 1, 0.5);
        rb.push(1, 2, 1.0);
        let r = rb.build();
        let ac = a.rap(&r);
        assert!(ac.is_symmetric(1e-14));
    }

    #[test]
    fn principal_submatrix_values() {
        let a = small();
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 0), 4.0);
        assert_eq!(s.get(1, 1), 5.0);
    }

    #[test]
    fn diag_and_norms() {
        let a = small();
        assert_eq!(a.diag(), vec![2.0, 3.0, 5.0]);
        let f = a.frobenius();
        assert!((f - (4.0f64 + 1.0 + 9.0 + 16.0 + 25.0).sqrt()).abs() < 1e-14);
        let mut a2 = a.clone();
        a2.scale(2.0);
        assert_eq!(a2.get(2, 2), 10.0);
    }

    #[test]
    fn symmetric_check() {
        let a = small();
        assert!(!a.is_symmetric(1e-12)); // a(0,2)=1 vs a(2,0)=4
        let sym = {
            let mut b = CooBuilder::new(2, 2);
            b.push(0, 0, 1.0);
            b.push(0, 1, 2.0);
            b.push(1, 0, 2.0);
            b.push(1, 1, 3.0);
            b.build()
        };
        assert!(sym.is_symmetric(1e-14));
    }

    proptest! {
        #[test]
        fn prop_spmv_transpose_consistency(
            entries in proptest::collection::vec(
                (0usize..8, 0usize..8, -10.0f64..10.0), 0..60),
            x in proptest::collection::vec(-5.0f64..5.0, 8),
        ) {
            let mut b = CooBuilder::new(8, 8);
            for (i, j, v) in entries {
                b.push(i, j, v);
            }
            let a = b.build();
            let mut y1 = vec![0.0; 8];
            let mut y2 = vec![0.0; 8];
            a.spmv_transpose(&x, &mut y1);
            a.transpose().spmv(&x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!((u - v).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_matmul_associative_with_identity(
            entries in proptest::collection::vec(
                (0usize..6, 0usize..6, -10.0f64..10.0), 0..40),
        ) {
            let mut b = CooBuilder::new(6, 6);
            for (i, j, v) in entries {
                b.push(i, j, v);
            }
            let a = b.build();
            let i6 = CsrMatrix::identity(6);
            prop_assert_eq!(a.matmul(&i6), a.clone());
            prop_assert_eq!(i6.matmul(&a), a);
        }

        #[test]
        fn prop_rap_symmetry(
            entries in proptest::collection::vec(
                (0usize..6, 0usize..6, -10.0f64..10.0), 0..30),
            r_entries in proptest::collection::vec(
                (0usize..3, 0usize..6, -2.0f64..2.0), 1..15),
        ) {
            // Symmetrize A.
            let mut b = CooBuilder::new(6, 6);
            for (i, j, v) in entries {
                b.push(i, j, v);
                b.push(j, i, v);
            }
            let a = b.build();
            let mut rb = CooBuilder::new(3, 6);
            for (i, j, v) in r_entries {
                rb.push(i, j, v);
            }
            let r = rb.build();
            let ac = a.rap(&r);
            prop_assert!(ac.is_symmetric(1e-9));
        }
    }
}
