//! Block CSR with 3x3 blocks.
//!
//! Displacement problems carry 3 dofs per vertex, so the operator is
//! naturally blocked: one dense 3x3 block per vertex pair. BSR storage
//! roughly halves the index metadata and lets the matrix-vector product
//! run on contiguous 3x3 tiles — the standard optimization for elasticity
//! operators (PETSc's BAIJ). Convertible to/from scalar CSR; `spmv`
//! accumulates each row's blocks in the same column order as the CSR
//! product, so the two are **bitwise identical**, not merely close.
//!
//! # Ghost-padding rule (distributed use)
//!
//! A [`Bsr3Matrix`] requires both dimensions to be multiples of 3 and all
//! entries to fall on vertex-aligned 3x3 tiles. On a distributed
//! operator's off-process part the ghost-column space does not naturally
//! satisfy this: a rank may reference only one or two of a remote
//! vertex's three dofs. The distributed layer (`DistMatrix::try_block3`
//! in `pmg-parallel`) therefore *pads* the ghost index space to whole
//! vertex triples — missing ghost columns become explicit structural
//! zeros inside materialized blocks — before converting to BSR. The
//! padding only widens the gather; padded columns multiply zero values,
//! so the routed product stays bitwise equal to the scalar CSR path.

use crate::csr::CsrMatrix;
use crate::flops;
use rayon::prelude::*;

/// Sparse matrix of dense 3x3 blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct Bsr3Matrix {
    nblock_rows: usize,
    nblock_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Row-major 3x3 blocks.
    blocks: Vec<[f64; 9]>,
}

impl Bsr3Matrix {
    /// Convert a scalar CSR operator whose dimensions are multiples of 3.
    /// Any scalar entry inside a touched block materializes the full block
    /// (absent entries are zero).
    pub fn from_csr(a: &CsrMatrix) -> Bsr3Matrix {
        assert_eq!(a.nrows() % 3, 0, "rows not a multiple of 3");
        assert_eq!(a.ncols() % 3, 0, "cols not a multiple of 3");
        let nbr = a.nrows() / 3;
        let nbc = a.ncols() / 3;
        let mut row_ptr = Vec::with_capacity(nbr + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut blocks: Vec<[f64; 9]> = Vec::new();

        let mut touched: Vec<usize> = Vec::new();
        let mut slot = vec![usize::MAX; nbc];
        for br in 0..nbr {
            touched.clear();
            let base = blocks.len();
            for local in 0..3 {
                let i = 3 * br + local;
                let (cols, vals) = a.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    let bc = j / 3;
                    let k = if slot[bc] == usize::MAX {
                        let k = base + touched.len();
                        slot[bc] = k;
                        touched.push(bc);
                        blocks.push([0.0; 9]);
                        col_idx.push(bc);
                        k
                    } else {
                        slot[bc]
                    };
                    blocks[k][3 * local + (j % 3)] = v;
                }
            }
            // Sort this row's blocks by column for deterministic layout.
            let mut order: Vec<usize> = (0..touched.len()).collect();
            order.sort_unstable_by_key(|&t| col_idx[base + t]);
            let cols_sorted: Vec<usize> = order.iter().map(|&t| col_idx[base + t]).collect();
            let blocks_sorted: Vec<[f64; 9]> = order.iter().map(|&t| blocks[base + t]).collect();
            col_idx[base..].copy_from_slice(&cols_sorted);
            blocks[base..].copy_from_slice(&blocks_sorted);
            for &bc in &touched {
                slot[bc] = usize::MAX;
            }
            row_ptr.push(col_idx.len());
        }
        Bsr3Matrix {
            nblock_rows: nbr,
            nblock_cols: nbc,
            row_ptr,
            col_idx,
            blocks,
        }
    }

    /// Scalar rows (3 per block row).
    pub fn nrows(&self) -> usize {
        3 * self.nblock_rows
    }

    /// Scalar columns (3 per block column).
    pub fn ncols(&self) -> usize {
        3 * self.nblock_cols
    }

    /// Stored 3x3 blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Scalar nonzeros stored (9 per block, including explicit zeros).
    pub fn nnz_stored(&self) -> usize {
        9 * self.blocks.len()
    }

    /// `y = A x` over 3x3 tiles (serial).
    ///
    /// Accumulates one add per scalar entry, in column order within each
    /// row — the same association as [`CsrMatrix::spmv`] — so the blocked
    /// product is bitwise identical to the scalar one (explicit zeros only
    /// add `0.0`). Solvers routed through BSR therefore take exactly the
    /// same iteration path as the CSR-routed reference.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        for br in 0..self.nblock_rows {
            let mut acc = [0.0f64; 3];
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[k];
                let b = &self.blocks[k];
                let xb = &x[3 * bc..3 * bc + 3];
                for c in 0..3 {
                    acc[0] += b[c] * xb[c];
                    acc[1] += b[3 + c] * xb[c];
                    acc[2] += b[6 + c] * xb[c];
                }
            }
            y[3 * br..3 * br + 3].copy_from_slice(&acc);
        }
        flops::add(2 * self.nnz_stored() as u64);
    }

    /// Blocked SpMM: `Y = A X` on `k` interleaved vectors (column `c` of
    /// `X` at `x[j * k + c]`). Per block row the `3 × k` accumulator is
    /// updated block-by-block in [`spmv`]'s block-column order with the
    /// same `b[3r + c] * x` products per column, so each result column is
    /// bitwise identical to a single [`spmv`] on it while every stored
    /// block is read once for all `k` columns.
    ///
    /// [`spmv`]: Bsr3Matrix::spmv
    pub fn spmm(&self, x: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "spmm needs at least one column");
        assert_eq!(x.len(), self.ncols() * k);
        assert_eq!(y.len(), self.nrows() * k);
        // Monomorphized bodies for the column counts the solve path uses:
        // const-width accumulators turn the per-entry update into fixed
        // vector fmas. Each column's adds run in the same order either way.
        match k {
            1 => self.spmm_const::<1>(x, y),
            2 => self.spmm_const::<2>(x, y),
            4 => self.spmm_const::<4>(x, y),
            8 => self.spmm_const::<8>(x, y),
            _ => {
                let mut acc = vec![0.0f64; 3 * k];
                for br in 0..self.nblock_rows {
                    acc.fill(0.0);
                    for kk in self.row_ptr[br]..self.row_ptr[br + 1] {
                        let bc = self.col_idx[kk];
                        let b = &self.blocks[kk];
                        let xb = &x[3 * bc * k..(3 * bc + 3) * k];
                        for c in 0..3 {
                            let xc = &xb[c * k..c * k + k];
                            for (col, &xv) in xc.iter().enumerate() {
                                acc[col] += b[c] * xv;
                                acc[k + col] += b[3 + c] * xv;
                                acc[2 * k + col] += b[6 + c] * xv;
                            }
                        }
                    }
                    for r in 0..3 {
                        y[(3 * br + r) * k..(3 * br + r + 1) * k]
                            .copy_from_slice(&acc[r * k..r * k + k]);
                    }
                }
            }
        }
        flops::add(2 * self.nnz_stored() as u64 * k as u64);
        pmg_telemetry::counter_add("spmv/multi_bsr3", 1);
        pmg_telemetry::counter_add("spmv/multi_cols", k as u64);
    }

    /// [`spmm`] body for a compile-time column count (same accumulation
    /// order, so bitwise identical to the runtime-`k` form).
    ///
    /// [`spmm`]: Bsr3Matrix::spmm
    fn spmm_const<const K: usize>(&self, x: &[f64], y: &mut [f64]) {
        for br in 0..self.nblock_rows {
            let mut acc = [[0.0f64; K]; 3];
            for kk in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[kk];
                let b = &self.blocks[kk];
                let xb = &x[3 * bc * K..(3 * bc + 3) * K];
                for c in 0..3 {
                    let xc: &[f64; K] = xb[c * K..c * K + K].try_into().unwrap();
                    for (col, &xv) in xc.iter().enumerate() {
                        acc[0][col] += b[c] * xv;
                        acc[1][col] += b[3 + c] * xv;
                        acc[2][col] += b[6 + c] * xv;
                    }
                }
            }
            for (r, a) in acc.iter().enumerate() {
                y[(3 * br + r) * K..(3 * br + r + 1) * K].copy_from_slice(a);
            }
        }
    }

    /// `y[3·br .. 3·br+3] = (A x)[3·br .. 3·br+3]` for the listed block
    /// rows only; other entries of `y` are untouched. Identical per-block-
    /// row accumulation to [`spmv`], so computing a partition of the block
    /// rows in any number of calls is bitwise equal to one full [`spmv`] —
    /// the blocked counterpart of [`CsrMatrix::spmv_rows`].
    ///
    /// [`spmv`]: Bsr3Matrix::spmv
    pub fn spmv_block_rows(&self, x: &[f64], y: &mut [f64], brows: &[u32]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        let mut blocks = 0u64;
        for &br in brows {
            let br = br as usize;
            let mut acc = [0.0f64; 3];
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[k];
                let b = &self.blocks[k];
                let xb = &x[3 * bc..3 * bc + 3];
                for c in 0..3 {
                    acc[0] += b[c] * xb[c];
                    acc[1] += b[3 + c] * xb[c];
                    acc[2] += b[6 + c] * xb[c];
                }
            }
            y[3 * br..3 * br + 3].copy_from_slice(&acc);
            blocks += (self.row_ptr[br + 1] - self.row_ptr[br]) as u64;
        }
        flops::add(2 * 9 * blocks);
    }

    /// `y = A x` parallelized over block rows.
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        y.par_chunks_mut(3).enumerate().for_each(|(br, yb)| {
            let mut acc = [0.0f64; 3];
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[k];
                let b = &self.blocks[k];
                let xb = &x[3 * bc..3 * bc + 3];
                for c in 0..3 {
                    acc[0] += b[c] * xb[c];
                    acc[1] += b[3 + c] * xb[c];
                    acc[2] += b[6 + c] * xb[c];
                }
            }
            yb.copy_from_slice(&acc);
        });
        flops::add(2 * self.nnz_stored() as u64);
    }

    /// Back to scalar CSR (explicit zeros inside blocks are dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut b = crate::csr::CooBuilder::new(self.nrows(), self.ncols());
        for br in 0..self.nblock_rows {
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[k];
                for li in 0..3 {
                    for lj in 0..3 {
                        let v = self.blocks[k][3 * li + lj];
                        if v != 0.0 {
                            b.push(3 * br + li, 3 * bc + lj, v);
                        }
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use proptest::prelude::*;

    fn block_laplacian(nb: usize) -> CsrMatrix {
        // Vertex-block tridiagonal with dense-ish 3x3 blocks.
        let mut b = CooBuilder::new(3 * nb, 3 * nb);
        for v in 0..nb {
            for i in 0..3 {
                for j in 0..3 {
                    b.push(3 * v + i, 3 * v + j, if i == j { 4.0 } else { -0.5 });
                    if v > 0 {
                        b.push(3 * v + i, 3 * (v - 1) + j, -0.25);
                    }
                    if v + 1 < nb {
                        b.push(3 * v + i, 3 * (v + 1) + j, -0.25);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn roundtrip_csr_bsr_csr() {
        let a = block_laplacian(7);
        let b = Bsr3Matrix::from_csr(&a);
        assert_eq!(b.num_blocks(), 7 + 2 * 6);
        assert_eq!(b.to_csr(), a);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = block_laplacian(9);
        let b = Bsr3Matrix::from_csr(&a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        let mut y3 = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y1);
        b.spmv(&x, &mut y2);
        b.spmv_par(&x, &mut y3);
        for ((u, v), w) in y1.iter().zip(&y2).zip(&y3) {
            assert!((u - v).abs() < 1e-14);
            assert!((u - w).abs() < 1e-14);
        }
    }

    #[test]
    fn sparse_blocks_materialize_zeros() {
        // A single scalar entry inside a block stores the full 3x3 block.
        let mut b = CooBuilder::new(6, 6);
        b.push(0, 4, 7.0);
        let a = b.build();
        let bsr = Bsr3Matrix::from_csr(&a);
        assert_eq!(bsr.num_blocks(), 1);
        assert_eq!(bsr.nnz_stored(), 9);
        let back = bsr.to_csr();
        assert_eq!(back.nnz(), 1);
        assert_eq!(back.get(0, 4), 7.0);
    }

    proptest! {
        #[test]
        fn prop_bsr_spmv_equals_csr(
            entries in proptest::collection::vec(
                (0usize..12, 0usize..12, -5.0f64..5.0), 0..80),
            x in proptest::collection::vec(-3.0f64..3.0, 12),
        ) {
            let mut b = CooBuilder::new(12, 12);
            for (i, j, v) in entries {
                b.push(i, j, v);
            }
            let a = b.build();
            let bsr = Bsr3Matrix::from_csr(&a);
            prop_assert_eq!(bsr.to_csr(), a.clone());
            let mut y1 = vec![0.0; 12];
            let mut y2 = vec![0.0; 12];
            a.spmv(&x, &mut y1);
            bsr.spmv(&x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!((u - v).abs() < 1e-12);
            }
        }
    }
}
