//! Symbolic/numeric split for the Galerkin triple product `R A Rᵀ`.
//!
//! [`CsrMatrix::rap`] redoes the full symbolic Gustavson machinery — hash
//! markers, per-row sorts, a fresh transpose of `R` — on every call, even
//! though the repeated-solve paths (Newton re-linearization, operator
//! updates after a rediscretization) change only `A`'s *values*, never its
//! *pattern*. A [`RapPlan`] runs that symbolic phase once: it fixes the
//! output patterns of `RA` and `R A Rᵀ` and flattens every scalar
//! contribution into gather lists
//!
//! ```text
//! stage 1:  RA[t]  = Σ_p  coeff₁[p] · A.vals[src₁[p]]    (coeff₁ = R values)
//! stage 2:  C[t]   = Σ_p  coeff₂[p] · RA[src₂[p]]        (coeff₂ = Rᵀ values)
//! ```
//!
//! so re-executing for a new `A` with the same pattern is a pure
//! multiply-accumulate sweep in O(flops of the product) with no hashing,
//! no sorting, no allocation beyond the output values. `Rᵀ` is folded into
//! the stage-2 coefficients at plan time, so it is never re-transposed.
//!
//! Telemetry: building a plan counts `rap/plan_build`, each numeric
//! re-execution counts `rap/plan_reuse` — the reuse the paper's nonlinear
//! runs (Fig. 13) depend on is thereby observable and testable.

use crate::csr::CsrMatrix;
use crate::flops;
use rayon::prelude::*;

/// One planned sparse product stage: output pattern plus a flat
/// contribution gather list (`offsets[t]..offsets[t+1]` are output entry
/// `t`'s contributions).
struct PlannedProduct {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    offsets: Vec<usize>,
    /// Fixed multiplier of each contribution (an `R` or `Rᵀ` value).
    coeff: Vec<f64>,
    /// Index of the varying factor (into `A.vals` for stage 1, into the
    /// stage-1 output for stage 2).
    src: Vec<u32>,
}

impl PlannedProduct {
    fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Numeric phase: gather-multiply-accumulate into `out`.
    fn execute(&self, src_vals: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nnz());
        out.par_iter_mut().enumerate().for_each(|(t, o)| {
            let mut acc = 0.0;
            for p in self.offsets[t]..self.offsets[t + 1] {
                acc += self.coeff[p] * src_vals[self.src[p] as usize];
            }
            *o = acc;
        });
        flops::add(2 * self.coeff.len() as u64);
    }
}

/// Group a per-row contribution buffer `(out_col, coeff, src)` — sorted by
/// output column — into the planned product's flat arrays.
fn flush_row(
    buf: &mut [(usize, f64, u32)],
    col_idx: &mut Vec<usize>,
    offsets: &mut Vec<usize>,
    coeff: &mut Vec<f64>,
    src: &mut Vec<u32>,
) {
    buf.sort_unstable_by_key(|&(j, _, _)| j);
    let mut p = 0;
    while p < buf.len() {
        let j = buf[p].0;
        col_idx.push(j);
        while p < buf.len() && buf[p].0 == j {
            coeff.push(buf[p].1);
            src.push(buf[p].2);
            p += 1;
        }
        offsets.push(coeff.len());
    }
}

/// FNV-1a over a CSR pattern — the cheap fingerprint [`RapPlan::matches`]
/// uses to detect pattern drift between executions.
fn pattern_fingerprint(a: &CsrMatrix) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: usize| {
        h ^= x as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    eat(a.nrows());
    eat(a.ncols());
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        eat(cols.len());
        for &j in cols {
            eat(j);
        }
    }
    h
}

/// A reusable execution plan for the Galerkin triple product
/// `A_c = R A Rᵀ` with `R` frozen and `A`'s sparsity pattern fixed.
///
/// # Invalidation invariant
///
/// A plan is valid **only** for operators whose sparsity pattern is
/// identical to the `A` it was built from; the values may change freely.
/// Validity is checked by [`RapPlan::matches`], which compares the row
/// count, the stored-nonzero count, and an FNV-1a fingerprint of the full
/// `(row lengths, column indices)` structure — explicitly *not* of the
/// values, so Newton re-linearizations on a fixed mesh always reuse the
/// plan. Anything that changes the pattern — remeshing, a different
/// drop-tolerance, a new restriction `R` — must rebuild the plan (callers
/// like `MgHierarchy::update_operator` do this transparently when
/// `matches` returns false). [`RapPlan::execute`] asserts the invariant
/// and panics on a non-matching operator rather than gathering values
/// from stale offsets.
///
/// ```
/// use pmg_sparse::{CooBuilder, RapPlan};
/// let mut b = CooBuilder::new(2, 2);
/// b.push(0, 0, 2.0);
/// b.push(0, 1, -1.0);
/// b.push(1, 1, 3.0);
/// let a = b.build();
/// let mut rb = CooBuilder::new(1, 2);
/// rb.push(0, 0, 1.0);
/// rb.push(0, 1, 0.5);
/// let r = rb.build();
/// let mut plan = RapPlan::new(&a, &r);
/// let ac = plan.execute(&a);
/// assert!((ac.get(0, 0) - a.rap(&r).get(0, 0)).abs() < 1e-14);
/// ```
pub struct RapPlan {
    /// Pattern fingerprint of the `A` the plan was built for.
    a_rows: usize,
    a_nnz: usize,
    a_fingerprint: u64,
    stage1: PlannedProduct,
    stage2: PlannedProduct,
    /// Scratch for the stage-1 output values (reused across executions).
    ra_vals: Vec<f64>,
}

impl RapPlan {
    /// Symbolic phase: fix the output patterns and gather lists for
    /// `R A Rᵀ` from `A`'s pattern (values are ignored) and `R`. `Rᵀ` is
    /// formed once here and folded into the plan.
    pub fn new(a: &CsrMatrix, r: &CsrMatrix) -> RapPlan {
        assert_eq!(a.nrows(), a.ncols(), "A must be square");
        assert_eq!(r.ncols(), a.nrows(), "R columns must match A");
        pmg_telemetry::counter_add("rap/plan_build", 1);

        // Stage 1: RA = R · A. Frozen coefficients are R's values; the
        // varying factor indexes straight into A.vals.
        let a_row_ptr = a.row_ptr();
        let a_col_idx = a.col_idx();
        let nc = r.nrows();
        let stage1 = {
            let mut row_ptr = Vec::with_capacity(nc + 1);
            row_ptr.push(0usize);
            let mut col_idx = Vec::new();
            let mut offsets = vec![0usize];
            let mut coeff = Vec::new();
            let mut src = Vec::new();
            let mut buf: Vec<(usize, f64, u32)> = Vec::new();
            for c in 0..nc {
                buf.clear();
                let (rcols, rvals) = r.row(c);
                for (&k, &rv) in rcols.iter().zip(rvals) {
                    for p in a_row_ptr[k]..a_row_ptr[k + 1] {
                        buf.push((a_col_idx[p], rv, p as u32));
                    }
                }
                flush_row(&mut buf, &mut col_idx, &mut offsets, &mut coeff, &mut src);
                row_ptr.push(col_idx.len());
            }
            PlannedProduct {
                nrows: nc,
                ncols: a.ncols(),
                row_ptr,
                col_idx,
                offsets,
                coeff,
                src,
            }
        };

        // Stage 2: C = RA · Rᵀ. Frozen coefficients are Rᵀ's values; the
        // varying factor indexes into the stage-1 output.
        let rt = r.transpose();
        let stage2 = {
            let mut row_ptr = Vec::with_capacity(nc + 1);
            row_ptr.push(0usize);
            let mut col_idx = Vec::new();
            let mut offsets = vec![0usize];
            let mut coeff = Vec::new();
            let mut src = Vec::new();
            let mut buf: Vec<(usize, f64, u32)> = Vec::new();
            for c in 0..nc {
                buf.clear();
                for t in stage1.row_ptr[c]..stage1.row_ptr[c + 1] {
                    let k = stage1.col_idx[t]; // fine column of RA entry t
                    let (tcols, tvals) = rt.row(k);
                    for (&j, &rv) in tcols.iter().zip(tvals) {
                        buf.push((j, rv, t as u32));
                    }
                }
                flush_row(&mut buf, &mut col_idx, &mut offsets, &mut coeff, &mut src);
                row_ptr.push(col_idx.len());
            }
            PlannedProduct {
                nrows: nc,
                ncols: rt.ncols(),
                row_ptr,
                col_idx,
                offsets,
                coeff,
                src,
            }
        };

        let ra_vals = vec![0.0; stage1.nnz()];
        RapPlan {
            a_rows: a.nrows(),
            a_nnz: a.nnz(),
            a_fingerprint: pattern_fingerprint(a),
            stage1,
            stage2,
            ra_vals,
        }
    }

    /// Whether `a` has the exact sparsity pattern this plan was built for.
    pub fn matches(&self, a: &CsrMatrix) -> bool {
        a.nrows() == self.a_rows
            && a.nnz() == self.a_nnz
            && pattern_fingerprint(a) == self.a_fingerprint
    }

    /// Rows of the coarse operator the plan produces.
    pub fn coarse_rows(&self) -> usize {
        self.stage2.nrows
    }

    /// Stored nonzeros of the coarse operator the plan produces.
    pub fn coarse_nnz(&self) -> usize {
        self.stage2.nnz()
    }

    /// Half-open range of the coarse operator's value array covered by
    /// coarse row `c` (the planned output pattern is fixed, so callers can
    /// scatter per-rank row values into a full value vector).
    pub fn coarse_row_range(&self, c: usize) -> std::ops::Range<usize> {
        self.stage2.row_ptr[c]..self.stage2.row_ptr[c + 1]
    }

    /// Assemble the coarse operator from a complete value vector laid out
    /// on the planned pattern (the concatenation, in coarse-row order, of
    /// per-row segments as addressed by [`RapPlan::coarse_row_range`]).
    pub fn coarse_from_values(&self, vals: Vec<f64>) -> CsrMatrix {
        assert_eq!(vals.len(), self.stage2.nnz());
        CsrMatrix::from_parts(
            self.stage2.nrows,
            self.stage2.ncols,
            self.stage2.row_ptr.clone(),
            self.stage2.col_idx.clone(),
            vals,
        )
    }

    /// Numeric phase restricted to a subset of coarse rows: compute the
    /// planned `R A Rᵀ` values for exactly the rows in `rows`, returned as
    /// the concatenation of their pattern segments (row order as given).
    ///
    /// Stage 2's gather list for coarse row `c` references only stage-1
    /// entries inside row `c` of `RA` (the plan records `src = t` with
    /// `t ∈ stage1.row_ptr[c]..row_ptr[c+1]`), so running both stages over
    /// a row subset is self-contained — and every output entry is the same
    /// fixed-order gather-multiply-accumulate as [`RapPlan::execute`], so
    /// the values are **bitwise identical** to the corresponding segments
    /// of the full product. This is the per-rank kernel of the distributed
    /// Galerkin RAP: each rank executes its owned coarse rows and the
    /// segments are merged by an allgather.
    pub fn execute_rows(&mut self, a: &CsrMatrix, rows: &[u32]) -> Vec<f64> {
        assert!(
            self.matches(a),
            "RapPlan::execute_rows: A's sparsity pattern changed since the \
             plan was built (rebuild with RapPlan::new)"
        );
        pmg_telemetry::counter_add("rap/plan_reuse", 1);
        let mut out = Vec::new();
        let mut contribs = 0u64;
        let a_vals = a.vals();
        for &c in rows {
            let c = c as usize;
            // Stage 1: the RA entries of row c.
            for t in self.stage1.row_ptr[c]..self.stage1.row_ptr[c + 1] {
                let mut acc = 0.0;
                for p in self.stage1.offsets[t]..self.stage1.offsets[t + 1] {
                    acc += self.stage1.coeff[p] * a_vals[self.stage1.src[p] as usize];
                }
                self.ra_vals[t] = acc;
                contribs += (self.stage1.offsets[t + 1] - self.stage1.offsets[t]) as u64;
            }
            // Stage 2: the coarse entries of row c, gathering from stage 1.
            for t in self.stage2.row_ptr[c]..self.stage2.row_ptr[c + 1] {
                let mut acc = 0.0;
                for p in self.stage2.offsets[t]..self.stage2.offsets[t + 1] {
                    acc += self.stage2.coeff[p] * self.ra_vals[self.stage2.src[p] as usize];
                }
                out.push(acc);
                contribs += (self.stage2.offsets[t + 1] - self.stage2.offsets[t]) as u64;
            }
        }
        flops::add(2 * contribs);
        out
    }

    /// Numeric phase: compute `R A Rᵀ` for a new `A` with the planned
    /// pattern. Panics if the pattern changed — callers that cannot
    /// guarantee stability should guard with [`RapPlan::matches`] and
    /// rebuild.
    pub fn execute(&mut self, a: &CsrMatrix) -> CsrMatrix {
        assert!(
            self.matches(a),
            "RapPlan::execute: A's sparsity pattern changed since the plan \
             was built (rebuild with RapPlan::new)"
        );
        pmg_telemetry::counter_add("rap/plan_reuse", 1);
        self.stage1.execute(a.vals(), &mut self.ra_vals);
        let mut c_vals = vec![0.0; self.stage2.nnz()];
        self.stage2.execute(&self.ra_vals, &mut c_vals);
        CsrMatrix::from_parts(
            self.stage2.nrows,
            self.stage2.ncols,
            self.stage2.row_ptr.clone(),
            self.stage2.col_idx.clone(),
            c_vals,
        )
    }
}

/// Owned Galerkin rows from purely **local** row sets — the kernel of the
/// sharded setup path, where no rank ever holds the full `A` or `R`.
///
/// Inputs are row subsets with *global* column ids:
///
/// * `r_rows` — the owned coarse rows of the restriction `R` (one local
///   row per owned coarse row, in owned order; `ncols` = global fine).
/// * `a_row_ids` / `a_rows` — the fine operator rows this rank holds
///   (owned plus fetched), ids strictly ascending, one CSR row per id.
///   Every fine column of `r_rows` must appear in `a_row_ids`.
/// * `rt_row_ids` / `rt_rows` — rows of the **full** transpose `Rᵀ` (each
///   carrying every coarse row touching that fine row, ascending — not
///   just this rank's), ids strictly ascending. Every fine column of the
///   held `A` rows reachable from `r_rows` must appear; a superset is
///   fine, unused rows are ignored.
///
/// Returns the owned coarse rows of `R·A·Rᵀ` (`ncols` = global coarse).
///
/// # Bitwise contract
///
/// Each output row runs the exact [`RapPlan`] machinery on the local row
/// sets: the stage-1/stage-2 contribution buffers are filled in the same
/// order as [`RapPlan::new`] (`R` row columns ascending × `A` row entries
/// in stored order, then `RA` entries ascending × `Rᵀ` row entries in
/// stored order), grouped by the same unstable sort (whose permutation
/// depends only on the — identical — output-column sequence), and
/// accumulated in the same order as [`RapPlan::execute_rows`]. The output
/// values are therefore **bitwise identical** to the corresponding row
/// segments of the full planned product; the partition tests and the
/// ownership-map proptest below pin this.
pub fn rap_local_rows(
    r_rows: &CsrMatrix,
    a_row_ids: &[u32],
    a_rows: &CsrMatrix,
    rt_row_ids: &[u32],
    rt_rows: &CsrMatrix,
) -> CsrMatrix {
    assert_eq!(a_rows.nrows(), a_row_ids.len(), "one A row per id");
    assert_eq!(rt_rows.nrows(), rt_row_ids.len(), "one Rᵀ row per id");
    assert_eq!(r_rows.ncols(), a_rows.ncols(), "R columns must match A");
    debug_assert!(a_row_ids.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(rt_row_ids.windows(2).all(|w| w[0] < w[1]));

    let nl = r_rows.nrows();
    let a_row_ptr = a_rows.row_ptr();
    let a_col_idx = a_rows.col_idx();
    let a_vals = a_rows.vals();

    let mut out_row_ptr = Vec::with_capacity(nl + 1);
    out_row_ptr.push(0usize);
    let mut out_cols: Vec<usize> = Vec::new();
    let mut out_vals: Vec<f64> = Vec::new();

    // Per-row scratch, cleared between rows: the same shapes RapPlan's
    // symbolic stages use, so flush_row sees the identical contribution
    // sequence per row.
    let mut buf: Vec<(usize, f64, u32)> = Vec::new();
    let mut s_cols: Vec<usize> = Vec::new();
    let mut s_offsets: Vec<usize> = Vec::new();
    let mut s_coeff: Vec<f64> = Vec::new();
    let mut s_src: Vec<u32> = Vec::new();
    let mut ra_vals: Vec<f64> = Vec::new();
    let mut contribs = 0u64;

    for lc in 0..nl {
        // Stage 1 symbolic: R row columns ascending, then that A row's
        // entries in stored order; src indexes this rank's flat A values.
        buf.clear();
        s_cols.clear();
        s_offsets.clear();
        s_offsets.push(0);
        s_coeff.clear();
        s_src.clear();
        let (rcols, rvals) = r_rows.row(lc);
        for (&k, &rv) in rcols.iter().zip(rvals) {
            let lk = a_row_ids
                .binary_search(&(k as u32))
                .unwrap_or_else(|_| panic!("rap_local_rows: A row {k} not held locally"));
            for p in a_row_ptr[lk]..a_row_ptr[lk + 1] {
                buf.push((a_col_idx[p], rv, p as u32));
            }
        }
        flush_row(
            &mut buf,
            &mut s_cols,
            &mut s_offsets,
            &mut s_coeff,
            &mut s_src,
        );

        // Stage 1 numeric: this row's RA values, in output-entry order.
        ra_vals.clear();
        for t in 0..s_cols.len() {
            let mut acc = 0.0;
            for p in s_offsets[t]..s_offsets[t + 1] {
                acc += s_coeff[p] * a_vals[s_src[p] as usize];
            }
            ra_vals.push(acc);
            contribs += (s_offsets[t + 1] - s_offsets[t]) as u64;
        }
        let s1_cols: Vec<usize> = s_cols.clone();

        // Stage 2 symbolic: RA entries ascending × full Rᵀ rows in stored
        // order; src indexes this row's stage-1 output.
        buf.clear();
        s_cols.clear();
        s_offsets.clear();
        s_offsets.push(0);
        s_coeff.clear();
        s_src.clear();
        for (t, &k) in s1_cols.iter().enumerate() {
            let lk = rt_row_ids
                .binary_search(&(k as u32))
                .unwrap_or_else(|_| panic!("rap_local_rows: Rᵀ row {k} not held locally"));
            let (tcols, tvals) = rt_rows.row(lk);
            for (&j, &rv) in tcols.iter().zip(tvals) {
                buf.push((j, rv, t as u32));
            }
        }
        flush_row(
            &mut buf,
            &mut s_cols,
            &mut s_offsets,
            &mut s_coeff,
            &mut s_src,
        );

        // Stage 2 numeric straight into the output row.
        for t in 0..s_cols.len() {
            let mut acc = 0.0;
            for p in s_offsets[t]..s_offsets[t + 1] {
                acc += s_coeff[p] * ra_vals[s_src[p] as usize];
            }
            out_vals.push(acc);
            contribs += (s_offsets[t + 1] - s_offsets[t]) as u64;
        }
        out_cols.extend_from_slice(&s_cols);
        out_row_ptr.push(out_cols.len());
    }
    flops::add(2 * contribs);
    pmg_telemetry::counter_add("rap/local_rows", nl as u64);
    CsrMatrix::from_parts(nl, rt_rows.ncols(), out_row_ptr, out_cols, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_sym(n: usize, per_row: usize, seed: u64) -> CsrMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0 + rng.gen_range(0.0..1.0));
            for _ in 0..per_row {
                let j = rng.gen_range(0..n);
                let v = rng.gen_range(-1.0..1.0);
                b.push(i, j, v);
                b.push(j, i, v);
            }
        }
        b.build()
    }

    fn random_restriction(nc: usize, nf: usize, seed: u64) -> CsrMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = CooBuilder::new(nc, nf);
        for c in 0..nc {
            b.push(c, c * nf / nc, 1.0);
            for _ in 0..3 {
                b.push(c, rng.gen_range(0..nf), rng.gen_range(0.0..1.0));
            }
        }
        b.build()
    }

    #[test]
    fn plan_matches_unplanned_rap() {
        let a = random_sym(60, 4, 7);
        let r = random_restriction(20, 60, 8);
        let reference = a.rap(&r);
        let mut plan = RapPlan::new(&a, &r);
        let planned = plan.execute(&a);
        assert_eq!(planned.nrows(), reference.nrows());
        assert_eq!(planned.nnz(), reference.nnz());
        for ((i1, j1, v1), (i2, j2, v2)) in planned.iter().zip(reference.iter()) {
            assert_eq!((i1, j1), (i2, j2));
            assert!((v1 - v2).abs() < 1e-12, "({i1},{j1}): {v1} vs {v2}");
        }
    }

    #[test]
    fn reexecution_tracks_new_values() {
        let a = random_sym(40, 3, 11);
        let r = random_restriction(13, 40, 12);
        let mut plan = RapPlan::new(&a, &r);
        let _ = plan.execute(&a);
        // Same pattern, new values.
        let mut a2 = a.clone();
        a2.scale(std::f64::consts::PI);
        assert!(plan.matches(&a2));
        let planned = plan.execute(&a2);
        let reference = a2.rap(&r);
        for ((_, _, v1), (_, _, v2)) in planned.iter().zip(reference.iter()) {
            assert!((v1 - v2).abs() < 1e-12);
        }
    }

    #[test]
    fn execute_rows_partition_is_bitwise_full_execute() {
        // The distributed-RAP contract: executing any partition of the
        // coarse rows and concatenating the segments reproduces the full
        // numeric product bit for bit.
        let a = random_sym(50, 4, 17);
        let r = random_restriction(18, 50, 18);
        let mut plan = RapPlan::new(&a, &r);
        let full = plan.execute(&a);
        for nparts in [1usize, 2, 3, 5] {
            let mut vals = vec![0.0f64; full.nnz()];
            for part in 0..nparts {
                let rows: Vec<u32> = (0..plan.coarse_rows() as u32)
                    .filter(|c| *c as usize % nparts == part)
                    .collect();
                let seg = plan.execute_rows(&a, &rows);
                let mut at = 0;
                for &c in &rows {
                    let rng = plan.coarse_row_range(c as usize);
                    let len = rng.len();
                    vals[rng].copy_from_slice(&seg[at..at + len]);
                    at += len;
                }
                assert_eq!(at, seg.len());
            }
            let merged = plan.coarse_from_values(vals);
            for (x, y) in merged.vals().iter().zip(full.vals()) {
                assert_eq!(x.to_bits(), y.to_bits(), "nparts={nparts}");
            }
        }
    }

    #[test]
    fn pattern_change_detected() {
        let a = random_sym(30, 3, 21);
        let r = random_restriction(10, 30, 22);
        let plan = RapPlan::new(&a, &r);
        // Different pattern: extra entry.
        let mut b = CooBuilder::new(30, 30);
        for (i, j, v) in a.iter() {
            b.push(i, j, v);
        }
        b.push(0, 29, 1e-9);
        b.push(29, 0, 1e-9);
        let a2 = b.build();
        assert!(!plan.matches(&a2));
    }

    #[test]
    fn identity_restriction_reproduces_a() {
        let a = random_sym(25, 3, 31);
        let r = CsrMatrix::identity(25);
        let mut plan = RapPlan::new(&a, &r);
        let c = plan.execute(&a);
        assert_eq!(c.nnz(), a.nnz());
        for ((i1, j1, v1), (i2, j2, v2)) in c.iter().zip(a.iter()) {
            assert_eq!((i1, j1), (i2, j2));
            assert!((v1 - v2).abs() < 1e-13);
        }
    }

    /// Assemble the local-row-set inputs of [`rap_local_rows`] for a rank
    /// owning coarse rows `owned` (global `a`, `r` in hand — test-side
    /// only; the production path ships the rows instead).
    fn local_inputs(
        a: &CsrMatrix,
        r: &CsrMatrix,
        rt: &CsrMatrix,
        owned: &[u32],
    ) -> (CsrMatrix, Vec<u32>, CsrMatrix, Vec<u32>, CsrMatrix) {
        let r_rows = r.extract_rows(owned);
        let mut a_ids: Vec<u32> = r_rows.col_idx().iter().map(|&k| k as u32).collect();
        a_ids.sort_unstable();
        a_ids.dedup();
        let a_rows = a.extract_rows(&a_ids);
        let mut rt_ids: Vec<u32> = a_rows.col_idx().iter().map(|&k| k as u32).collect();
        rt_ids.sort_unstable();
        rt_ids.dedup();
        let rt_rows = rt.extract_rows(&rt_ids);
        (r_rows, a_ids, a_rows, rt_ids, rt_rows)
    }

    #[test]
    fn local_rows_are_bitwise_execute_rows() {
        // The sharded-RAP contract: a rank holding only its owned R rows,
        // the referenced A rows, and the referenced full Rᵀ rows computes
        // exactly the value segments plan.execute_rows produces.
        let a = random_sym(50, 4, 17);
        let r = random_restriction(18, 50, 18);
        let rt = r.transpose();
        let mut plan = RapPlan::new(&a, &r);
        let full = plan.execute(&a);
        for nparts in [1usize, 2, 3, 5] {
            for part in 0..nparts {
                let owned: Vec<u32> = (0..r.nrows() as u32)
                    .filter(|c| *c as usize % nparts == part)
                    .collect();
                let seg = plan.execute_rows(&a, &owned);
                let (r_rows, a_ids, a_rows, rt_ids, rt_rows) = local_inputs(&a, &r, &rt, &owned);
                let local = rap_local_rows(&r_rows, &a_ids, &a_rows, &rt_ids, &rt_rows);
                assert_eq!(local.nrows(), owned.len());
                assert_eq!(local.ncols(), r.nrows());
                // Values bitwise == the planned segments, pattern == the
                // full product's rows.
                let mut at = 0usize;
                for (lc, &c) in owned.iter().enumerate() {
                    let (gcols, _) = full.row(c as usize);
                    let (lcols, lvals) = local.row(lc);
                    assert_eq!(lcols, gcols, "row {c} pattern (nparts={nparts})");
                    for &v in lvals {
                        assert_eq!(v.to_bits(), seg[at].to_bits(), "row {c}");
                        at += 1;
                    }
                }
                assert_eq!(at, seg.len());
            }
        }
    }

    #[test]
    fn local_rows_empty_rank_is_empty() {
        let a = random_sym(30, 3, 5);
        let r = random_restriction(10, 30, 6);
        let rt = r.transpose();
        let (r_rows, a_ids, a_rows, rt_ids, rt_rows) = local_inputs(&a, &r, &rt, &[]);
        let local = rap_local_rows(&r_rows, &a_ids, &a_rows, &rt_ids, &rt_rows);
        assert_eq!(local.nrows(), 0);
        assert_eq!(local.nnz(), 0);
    }

    #[test]
    fn local_rows_tolerate_superset_row_sets() {
        // Extra A / Rᵀ rows beyond the needed closure must not change a
        // single bit (the ingest path ships an adjacency superset).
        let a = random_sym(40, 4, 9);
        let r = random_restriction(14, 40, 10);
        let rt = r.transpose();
        let mut plan = RapPlan::new(&a, &r);
        let owned: Vec<u32> = vec![2, 3, 7, 11];
        let seg = plan.execute_rows(&a, &owned);
        let r_rows = r.extract_rows(&owned);
        let all: Vec<u32> = (0..40).collect();
        let a_rows = a.extract_rows(&all);
        let rt_rows = rt.extract_rows(&all);
        let local = rap_local_rows(&r_rows, &all, &a_rows, &all, &rt_rows);
        let flat: Vec<f64> = local.vals().to_vec();
        assert_eq!(flat.len(), seg.len());
        for (x, y) in flat.iter().zip(&seg) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_local_rows_cover_full_product(
            seed in 0u64..1000,
            owner in proptest::collection::vec(0u32..4, 12),
        ) {
            // Arbitrary ownership maps — including ranks owning nothing —
            // tile the full planned product bitwise.
            let a = random_sym(36, 3, seed);
            let r = random_restriction(12, 36, seed.wrapping_add(1));
            let rt = r.transpose();
            let mut plan = RapPlan::new(&a, &r);
            let full = plan.execute(&a);
            let mut seen = vec![false; full.nnz()];
            for rank in 0..4u32 {
                let owned: Vec<u32> = (0..12u32)
                    .filter(|c| owner[*c as usize] == rank)
                    .collect();
                let (r_rows, a_ids, a_rows, rt_ids, rt_rows) =
                    local_inputs(&a, &r, &rt, &owned);
                let local = rap_local_rows(&r_rows, &a_ids, &a_rows, &rt_ids, &rt_rows);
                for (lc, &c) in owned.iter().enumerate() {
                    let rng = plan.coarse_row_range(c as usize);
                    let (lcols, lvals) = local.row(lc);
                    let (gcols, _) = full.row(c as usize);
                    prop_assert_eq!(lcols, gcols);
                    for (k, &v) in rng.clone().zip(lvals) {
                        prop_assert_eq!(v.to_bits(), full.vals()[k].to_bits());
                        seen[k] = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "ownership map must tile all rows");
        }

        #[test]
        fn prop_plan_equals_rap(
            entries in proptest::collection::vec(
                (0usize..10, 0usize..10, -5.0f64..5.0), 1..60),
            r_entries in proptest::collection::vec(
                (0usize..4, 0usize..10, -2.0f64..2.0), 1..20),
        ) {
            let mut b = CooBuilder::new(10, 10);
            for (i, j, v) in entries {
                b.push(i, j, v);
            }
            let a = b.build();
            let mut rb = CooBuilder::new(4, 10);
            for (i, j, v) in r_entries {
                rb.push(i, j, v);
            }
            let r = rb.build();
            let reference = a.rap(&r);
            let mut plan = RapPlan::new(&a, &r);
            let planned = plan.execute(&a);
            prop_assert_eq!(planned.nrows(), reference.nrows());
            prop_assert_eq!(planned.nnz(), reference.nnz());
            for ((i1, j1, v1), (i2, j2, v2)) in planned.iter().zip(reference.iter()) {
                prop_assert_eq!((i1, j1), (i2, j2));
                prop_assert!((v1 - v2).abs() < 1e-9);
            }
        }
    }
}
