//! Small dense matrices and factorizations.
//!
//! Used for the coarsest-grid direct solve and for the block-Jacobi
//! smoother's per-block factorizations (the paper factors each METIS block
//! once per matrix setup).

use crate::flops;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows` x `ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n` x `n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Fill an `nrows` x `ncols` matrix from `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        flops::add((2 * self.nrows * self.ncols) as u64);
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite matrix.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Factor `a`; returns `None` if the matrix is not (numerically) SPD.
    pub fn factor(a: &DenseMatrix) -> Option<Cholesky> {
        assert_eq!(a.nrows, a.ncols);
        let n = a.nrows;
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        flops::add((n * n * n / 3).max(1) as u64);
        Some(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.l.nrows;
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * b[k];
            }
            b[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * b[k];
            }
            b[i] = sum / self.l[(i, i)];
        }
        flops::add((2 * n * n) as u64);
    }

    /// Solve `A x = b`, returning a fresh `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// LU factorization with partial pivoting (for indefinite or unsymmetric
/// systems, e.g. coarse operators that lost definiteness to roundoff).
#[derive(Clone, Debug)]
pub struct Lu {
    lu: DenseMatrix,
    piv: Vec<usize>,
}

impl Lu {
    /// Factor `a`; returns `None` for (numerically) singular matrices.
    pub fn factor(a: &DenseMatrix) -> Option<Lu> {
        assert_eq!(a.nrows, a.ncols);
        let n = a.nrows;
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return None;
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let v = m * lu[(k, j)];
                    lu[(i, j)] -= v;
                }
            }
        }
        flops::add((2 * n * n * n / 3).max(1) as u64);
        Some(Lu { lu, piv })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.nrows;
        assert_eq!(b.len(), n);
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward: L y = P b (unit diagonal).
        for i in 0..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        flops::add((2 * n * n) as u64);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd3() -> DenseMatrix {
        // Diagonally dominant symmetric => SPD.
        DenseMatrix::from_fn(3, 3, |i, j| if i == j { 4.0 } else { -1.0 })
    }

    #[test]
    fn cholesky_solves() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = spd3();
        a[(1, 1)] = -5.0;
        assert!(Cholesky::factor(&a).is_none());
    }

    #[test]
    fn lu_solves_unsymmetric() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| {
            (1 + i * 3 + j) as f64 + if i == j { 10.0 } else { 0.0 }
        });
        let lu = Lu::factor(&a).unwrap();
        let b = vec![3.0, -1.0, 4.0];
        let x = lu.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMatrix::from_fn(2, 2, |i, _| (i + 1) as f64);
        assert!(Lu::factor(&a).is_none());
    }

    #[test]
    fn identity_matvec() {
        let i = DenseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        i.matvec(&x, &mut y);
        assert_eq!(x, y);
    }

    proptest! {
        #[test]
        fn prop_cholesky_random_spd(
            vals in proptest::collection::vec(-1.0f64..1.0, 16),
            b in proptest::collection::vec(-5.0f64..5.0, 4),
        ) {
            // Build A = M Mᵀ + n·I which is SPD.
            let m = DenseMatrix::from_fn(4, 4, |i, j| vals[i * 4 + j]);
            let mut a = DenseMatrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    let mut acc = if i == j { 4.0 } else { 0.0 };
                    for k in 0..4 {
                        acc += m[(i, k)] * m[(j, k)];
                    }
                    a[(i, j)] = acc;
                }
            }
            let ch = Cholesky::factor(&a).unwrap();
            let x = ch.solve(&b);
            let mut ax = vec![0.0; 4];
            a.matvec(&x, &mut ax);
            for (u, v) in ax.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-8);
            }
            // LU must agree with Cholesky.
            let lu = Lu::factor(&a).unwrap();
            let x2 = lu.solve(&b);
            for (u, v) in x.iter().zip(&x2) {
                prop_assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
