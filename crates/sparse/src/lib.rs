#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in the numeric kernels

//! Sparse and small-dense linear algebra substrate ("PETSc" stand-in).
//!
//! The paper's solver is built on PETSc's distributed CSR matrices; this
//! crate provides the serial kernels — CSR storage ([`csr::CsrMatrix`]),
//! sparse matrix-vector products, sparse matrix-matrix products and the
//! Galerkin triple product `R A Rᵀ` ([`csr`]), dense Cholesky/LU for coarse
//! and block solves ([`dense`]), vector kernels ([`vector`]) — plus the flop
//! accounting ([`flops`]) that the paper's efficiency metrics (§6) are
//! defined in terms of. The distributed layer lives in `pmg-parallel`.

pub mod bsr;
pub mod csr;
pub mod dense;
pub mod flops;
pub mod plan;
pub mod vector;

pub use bsr::Bsr3Matrix;
pub use csr::{CooBuilder, CsrMatrix};
pub use dense::DenseMatrix;
pub use plan::RapPlan;
