#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in the numeric kernels
#![warn(missing_docs)]

//! Sparse and small-dense linear algebra substrate ("PETSc" stand-in).
//!
//! The paper's solver is built on PETSc's distributed CSR matrices; this
//! crate provides the serial kernels — CSR storage ([`csr::CsrMatrix`]),
//! sparse matrix-vector products, sparse matrix-matrix products and the
//! Galerkin triple product `R A Rᵀ` ([`csr`]), dense Cholesky/LU for coarse
//! and block solves ([`dense`]), vector kernels ([`vector`]) — plus the flop
//! accounting ([`flops`]) that the paper's efficiency metrics (§6) are
//! defined in terms of. The distributed layer lives in `pmg-parallel`.
//!
//! The `*_par` kernels run on the workspace thread pool (the vendored
//! `rayon` shim) and are bitwise deterministic independent of thread
//! count; see [`vector`] for the reduction contract.
//!
//! # Quickstart
//!
//! Assemble a small matrix through the COO builder, multiply, and take a
//! Galerkin triple product:
//!
//! ```
//! use pmg_sparse::{CooBuilder, CsrMatrix, vector};
//!
//! // A 1D Laplacian on 4 points.
//! let mut coo = CooBuilder::new(4, 4);
//! for i in 0..4 {
//!     coo.push(i, i, 2.0);
//!     if i + 1 < 4 {
//!         coo.push(i, i + 1, -1.0);
//!         coo.push(i + 1, i, -1.0);
//!     }
//! }
//! let a: CsrMatrix = coo.build();
//!
//! let x = vec![1.0, 2.0, 3.0, 4.0];
//! let mut y = vec![0.0; 4];
//! a.spmv(&x, &mut y);
//! assert_eq!(y, vec![0.0, 0.0, 0.0, 5.0]);
//!
//! // Aggregate pairs {0,1} and {2,3}: R is 2x4, coarse operator is R A Rᵀ.
//! let mut r = CooBuilder::new(2, 4);
//! r.push(0, 0, 1.0);
//! r.push(0, 1, 1.0);
//! r.push(1, 2, 1.0);
//! r.push(1, 3, 1.0);
//! let coarse = a.rap(&r.build());
//! assert_eq!(coarse.nrows(), 2);
//! assert_eq!(coarse.get(0, 0), 2.0); // 2+2-1-1
//!
//! // Deterministic BLAS-1: same bits for any PMG_THREADS.
//! let d = vector::dot(&x, &x);
//! assert_eq!(d, 30.0);
//! ```

pub mod bsr;
pub mod csr;
pub mod dense;
pub mod flops;
pub mod op;
pub mod plan;
pub mod vector;

pub use bsr::Bsr3Matrix;
pub use csr::{CooBuilder, CsrMatrix};
pub use dense::DenseMatrix;
pub use op::{MatrixFreeFactory, MatrixFreeKernel, Operator};
pub use plan::{rap_local_rows, RapPlan};
