//! Dense vector kernels (the BLAS-1 layer of the solver).

use crate::flops;

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    flops::add(2 * x.len() as u64);
}

/// `y = x + beta * y` (the CG update for the search direction).
pub fn aypx(beta: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
    flops::add(2 * x.len() as u64);
}

/// Euclidean inner product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// 2-norm.
pub fn norm2(x: &[f64]) -> f64 {
    flops::add(2 * x.len() as u64);
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// Infinity norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &a| m.max(a.abs()))
}

/// `z = x - y`.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
    flops::add(x.len() as u64);
}

/// `x *= s`.
pub fn scale(x: &mut [f64], s: f64) {
    for xi in x.iter_mut() {
        *xi *= s;
    }
    flops::add(x.len() as u64);
}

/// Copy `src` into `dst`.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set all entries to zero.
pub fn zero(x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blas1_kernels() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        aypx(0.5, &x, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
        assert_eq!(dot(&x, &x), 14.0);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
        let mut z = vec![0.0; 3];
        sub_into(&y, &x, &mut z);
        assert_eq!(z, vec![6.0, 12.0, 18.0]);
        scale(&mut z, 1.0 / 6.0);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        let mut w = vec![0.0; 3];
        copy(&z, &mut w);
        assert_eq!(w, z);
        zero(&mut w);
        assert_eq!(w, vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let x = vec![1.0];
        let mut y = vec![1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }
}
