//! Dense vector kernels (the BLAS-1 layer of the solver).
//!
//! All kernels run on the workspace thread pool and are **bitwise
//! deterministic independent of thread count**. Elementwise updates
//! (`axpy`, `aypx`, ...) are trivially so — each slot is written once.
//! Reductions ([`dot`], [`norm2`]) use a *fixed-shape pairwise tree*: the
//! input is cut into [`REDUCE_CHUNK`]-aligned blocks, adjacent halves are
//! combined recursively, and the recursion shape depends only on the
//! vector length — never on how many threads happen to execute the two
//! halves. A 1-thread pool and a 16-thread pool therefore produce the
//! same floating-point result bit for bit, which keeps CG/GMRES residual
//! histories reproducible across `PMG_THREADS` settings.

use crate::flops;
use rayon::prelude::*;

/// Leaf size of the pairwise reduction tree, in elements. Part of the
/// determinism contract: changing it changes the summation order (and so
/// the low-order bits) of every [`dot`]/[`norm2`] in the solver.
pub const REDUCE_CHUNK: usize = 1024;

/// Chunk size for parallel elementwise kernels. Only affects scheduling
/// granularity, never results (each element is written exactly once).
const ELEM_CHUNK: usize = 4096;

/// Fixed-shape pairwise reduction of `f(i)` over `lo..hi`.
///
/// Splits at a `REDUCE_CHUNK`-aligned midpoint and combines the halves
/// with `+` via `rayon::join`; the tree shape is a function of the index
/// range alone, so the result is identical for every pool size.
fn pairwise_sum<F>(lo: usize, hi: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let n = hi - lo;
    if n <= REDUCE_CHUNK {
        let mut s = 0.0;
        for i in lo..hi {
            s += f(i);
        }
        return s;
    }
    // Midpoint = half the chunks, rounded down — aligned so leaf
    // boundaries are stable as vectors grow.
    let nchunks = n.div_ceil(REDUCE_CHUNK);
    let mid = lo + (nchunks / 2) * REDUCE_CHUNK;
    let (a, b) = rayon::join(|| pairwise_sum(lo, mid, f), || pairwise_sum(mid, hi, f));
    a + b
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    y.par_chunks_mut(ELEM_CHUNK)
        .zip(x.par_chunks(ELEM_CHUNK))
        .for_each(|(yc, xc)| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += alpha * xi;
            }
        });
    flops::add(2 * x.len() as u64);
}

/// `y = x + beta * y` (the CG update for the search direction).
pub fn aypx(beta: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    y.par_chunks_mut(ELEM_CHUNK)
        .zip(x.par_chunks(ELEM_CHUNK))
        .for_each(|(yc, xc)| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi = xi + beta * *yi;
            }
        });
    flops::add(2 * x.len() as u64);
}

/// Euclidean inner product, fixed-shape pairwise (see module docs).
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    pairwise_sum(0, x.len(), &|i| x[i] * y[i])
}

/// 2-norm, via the same pairwise tree as [`dot`].
pub fn norm2(x: &[f64]) -> f64 {
    flops::add(2 * x.len() as u64);
    pairwise_sum(0, x.len(), &|i| x[i] * x[i]).sqrt()
}

/// Infinity norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &a| m.max(a.abs()))
}

/// `z = x - y`.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    z.par_chunks_mut(ELEM_CHUNK)
        .zip(x.par_chunks(ELEM_CHUNK))
        .zip(y.par_chunks(ELEM_CHUNK))
        .for_each(|((zc, xc), yc)| {
            for ((zi, xi), yi) in zc.iter_mut().zip(xc).zip(yc) {
                *zi = xi - yi;
            }
        });
    flops::add(x.len() as u64);
}

/// `x *= s`.
pub fn scale(x: &mut [f64], s: f64) {
    x.par_chunks_mut(ELEM_CHUNK).for_each(|xc| {
        for xi in xc.iter_mut() {
            *xi *= s;
        }
    });
    flops::add(x.len() as u64);
}

/// Copy `src` into `dst`.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set all entries to zero.
pub fn zero(x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn blas1_kernels() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        aypx(0.5, &x, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
        assert_eq!(dot(&x, &x), 14.0);
        assert!((norm2(&x) - 14.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
        let mut z = vec![0.0; 3];
        sub_into(&y, &x, &mut z);
        assert_eq!(z, vec![6.0, 12.0, 18.0]);
        scale(&mut z, 1.0 / 6.0);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        let mut w = vec![0.0; 3];
        copy(&z, &mut w);
        assert_eq!(w, z);
        zero(&mut w);
        assert_eq!(w, vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let x = vec![1.0];
        let mut y = vec![1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    /// Plain sequential evaluation of the identical reduction tree — the
    /// bitwise reference the parallel execution must reproduce.
    fn pairwise_ref(x: &[f64], y: &[f64], lo: usize, hi: usize) -> f64 {
        let n = hi - lo;
        if n <= REDUCE_CHUNK {
            let mut s = 0.0;
            for i in lo..hi {
                s += x[i] * y[i];
            }
            return s;
        }
        let nchunks = n.div_ceil(REDUCE_CHUNK);
        let mid = lo + (nchunks / 2) * REDUCE_CHUNK;
        pairwise_ref(x, y, lo, mid) + pairwise_ref(x, y, mid, hi)
    }

    fn pool(n: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn dot_bitwise_identical_across_pools() {
        let x: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.031)
            .collect();
        let y: Vec<f64> = (0..10_000)
            .map(|i| ((i * 17 % 97) as f64 - 48.0) * 0.047)
            .collect();
        let reference = pairwise_ref(&x, &y, 0, x.len());
        for threads in [1usize, 2, 4] {
            let d = pool(threads).install(|| dot(&x, &y));
            assert_eq!(d.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    proptest! {
        #[test]
        fn pairwise_dot_matches_sequential_exactly(
            x in proptest::collection::vec(-2.0f64..2.0, 0..5000usize),
        ) {
            let reference = pairwise_ref(&x, &x, 0, x.len());
            let par4 = pool(4).install(|| dot(&x, &x));
            prop_assert_eq!(par4.to_bits(), reference.to_bits());
            // Pairwise association error vs the naive left-fold is tiny.
            let naive: f64 = x.iter().map(|a| a * a).sum();
            prop_assert!((par4 - naive).abs() <= 1e-12 * (1.0 + naive.abs()));
        }

        #[test]
        fn elementwise_kernels_match_serial(
            x in proptest::collection::vec(-3.0f64..3.0, 0..9000usize),
        ) {
            let y0: Vec<f64> = x.iter().map(|v| 0.5 * v + 1.0).collect();
            let mut par_y = y0.clone();
            pool(4).install(|| axpy(1.5, &x, &mut par_y));
            let seq_y: Vec<f64> = y0.iter().zip(&x).map(|(y, x)| y + 1.5 * x).collect();
            prop_assert!(par_y.iter().zip(&seq_y).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
