//! Operator abstraction: assembled and matrix-free representations behind
//! one interface.
//!
//! The solver only ever needs four things from an operator: its shape, the
//! product `y = A x`, its diagonal, and (for planning/benchmarks) what the
//! representation costs in memory and flops. [`Operator`] captures exactly
//! that, and is implemented by the assembled representations
//! ([`CsrMatrix`], [`Bsr3Matrix`]) as well as by matrix-free element-loop
//! backends (see `pmg-fem`'s `MatFreeOperator`).
//!
//! # The distributed / overlapped split
//!
//! In distributed runs the product is applied rank-by-rank against gathered
//! ghost values, and the communication/computation overlap of the SPMD path
//! needs the work split into a part that can run *before* the halo arrives
//! and a part that needs it. [`MatrixFreeKernel`] is that per-rank,
//! two-phase form: `apply_interior` consumes only owned values,
//! `apply_boundary` additionally consumes the gathered ghost values, and
//! one full product is always `apply_interior` followed by
//! `apply_boundary` — in that fixed order, so the blocking and overlapped
//! schedules of `pmg-parallel` produce bitwise-identical results. The
//! distributed wrapper (`pmg_parallel::DistMatFree`) supplies the halo
//! exchange; this crate only defines the kernel contract so that `pmg-fem`
//! (which provides kernels) and `pmg-parallel` (which drives them) need
//! not depend on each other.
//!
//! # Determinism contract
//!
//! Implementations must be bitwise deterministic: the same `(x, kernel)`
//! input produces the same bits regardless of `PMG_THREADS`, and the
//! two-phase application equals the unsplit one because the phases never
//! touch the same accumulation in a different order.

use crate::bsr::Bsr3Matrix;
use crate::csr::CsrMatrix;

/// A square (or rectangular) linear operator: the minimal interface the
/// solve path needs, independent of representation.
pub trait Operator: Send + Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;
    /// Number of columns of the operator.
    fn ncols(&self) -> usize;
    /// `y = A x` (overwrites `y`). Must be bitwise deterministic across
    /// thread counts.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// Multi-vector product `Y = A X` on `k` interleaved vectors: column
    /// `c` of `X` lives at `x[j * k + c]`, column `c` of `Y` at
    /// `y[i * k + c]`.
    ///
    /// Contract: column `c` of the result must be **bitwise identical** to
    /// a single [`Operator::apply`] on that column — blocked Krylov and
    /// multi-RHS batching rely on this to keep per-column convergence
    /// histories exactly equal to k independent solves. The default
    /// implementation applies one column at a time through scratch buffers
    /// (trivially bitwise-equal); assembled backends override it with SpMM
    /// kernels that read the matrix once for all k columns, matrix-free
    /// backends with batched element kernels that gather k values per dof.
    fn apply_multi(&self, x: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "apply_multi needs at least one column");
        assert_eq!(x.len(), self.ncols() * k);
        assert_eq!(y.len(), self.nrows() * k);
        let mut xc = vec![0.0f64; self.ncols()];
        let mut yc = vec![0.0f64; self.nrows()];
        for c in 0..k {
            for (j, v) in xc.iter_mut().enumerate() {
                *v = x[j * k + c];
            }
            self.apply(&xc, &mut yc);
            for (i, v) in yc.iter().enumerate() {
                y[i * k + c] = *v;
            }
        }
    }

    /// The main diagonal (missing entries are `0.0`).
    fn diag(&self) -> Vec<f64>;
    /// Bytes the representation holds resident to support [`Operator::apply`]
    /// (matrix values + index metadata, or cached geometry + maps for
    /// matrix-free backends).
    fn memory_bytes(&self) -> u64;
    /// Flops one [`Operator::apply`] costs under this representation.
    fn flops_per_apply(&self) -> u64;
}

impl Operator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_multi(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm(x, y, k);
    }

    fn diag(&self) -> Vec<f64> {
        CsrMatrix::diag(self)
    }

    fn memory_bytes(&self) -> u64 {
        // vals + col_idx (8 B each) per nonzero, plus the row pointers.
        (self.nnz() * 16 + (CsrMatrix::nrows(self) + 1) * 8) as u64
    }

    fn flops_per_apply(&self) -> u64 {
        2 * self.nnz() as u64
    }
}

impl Operator for Bsr3Matrix {
    fn nrows(&self) -> usize {
        Bsr3Matrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        Bsr3Matrix::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_multi(&self, x: &[f64], y: &mut [f64], k: usize) {
        self.spmm(x, y, k);
    }

    fn diag(&self) -> Vec<f64> {
        // Blocks are column-sorted within each block row; pick the diagonal
        // block's diagonal entries.
        self.to_csr().diag()
    }

    fn memory_bytes(&self) -> u64 {
        // 9 values per block + one column index, plus block-row pointers.
        (self.num_blocks() * (9 * 8 + 8) + (Bsr3Matrix::nrows(self) / 3 + 1) * 8) as u64
    }

    fn flops_per_apply(&self) -> u64 {
        2 * self.nnz_stored() as u64
    }
}

/// Per-rank, two-phase matrix-free product kernel.
///
/// A rank owns `local_rows()` rows (in its layout's owned order) and reads
/// the ghost columns listed by [`MatrixFreeKernel::ghosts`] (ascending
/// global ids — the same canonical order `pmg-parallel`'s halo plans use).
/// One full product over the owned rows is:
///
/// ```text
/// apply_interior(x_owned, y);            // overwrites y
/// apply_boundary(x_owned, x_ghost, y);   // accumulates into y
/// ```
///
/// `apply_interior` computes every contribution that involves no ghost
/// value (for element-loop kernels: the elements whose dofs are all local,
/// plus Dirichlet rows, which are purely local by construction);
/// `apply_boundary` adds the contributions of ghost-touching elements.
/// Unlike the assembled row-split, a row may receive contributions from
/// *both* phases — correctness only requires that within each phase the
/// accumulation order is fixed, so the blocking schedule (finish the halo,
/// then run both phases) and the overlapped schedule (run `apply_interior`
/// inside the halo window) are bitwise identical.
pub trait MatrixFreeKernel: Send + Sync {
    /// Rows owned by this rank.
    fn local_rows(&self) -> usize;
    /// Ghost columns this rank gathers, as ascending global ids.
    fn ghosts(&self) -> &[u32];
    /// Phase 1: overwrite `y` with all contributions that need no ghost
    /// values. `x_owned` holds the owned values in layout order.
    fn apply_interior(&self, x_owned: &[f64], y: &mut [f64]);
    /// Phase 2: accumulate the ghost-dependent contributions. `x_ghost`
    /// holds the gathered values in [`MatrixFreeKernel::ghosts`] order.
    fn apply_boundary(&self, x_owned: &[f64], x_ghost: &[f64], y: &mut [f64]);
    /// Phase 1 on `k` interleaved vectors: column `c` of the owned input
    /// lives at `x_owned[slot * k + c]`, column `c` of the output at
    /// `y[slot * k + c]`. Column `c` of the result must be bitwise
    /// identical to [`MatrixFreeKernel::apply_interior`] on that column.
    /// The default deinterleaves and applies one column at a time; batched
    /// element kernels override it to gather/scatter k values per dof.
    fn apply_interior_multi(&self, x_owned: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "apply_interior_multi needs at least one column");
        let n = self.local_rows();
        assert_eq!(x_owned.len(), n * k);
        assert_eq!(y.len(), n * k);
        let mut xc = vec![0.0f64; n];
        let mut yc = vec![0.0f64; n];
        for c in 0..k {
            for (s, v) in xc.iter_mut().enumerate() {
                *v = x_owned[s * k + c];
            }
            self.apply_interior(&xc, &mut yc);
            for (s, v) in yc.iter().enumerate() {
                y[s * k + c] = *v;
            }
        }
    }
    /// Phase 2 on `k` interleaved vectors (`x_ghost[slot * k + c]` holds
    /// ghost column `c`), accumulating into `y` bitwise per column like
    /// [`MatrixFreeKernel::apply_boundary`].
    fn apply_boundary_multi(&self, x_owned: &[f64], x_ghost: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "apply_boundary_multi needs at least one column");
        let n = self.local_rows();
        let ng = self.ghosts().len();
        assert_eq!(x_owned.len(), n * k);
        assert_eq!(x_ghost.len(), ng * k);
        assert_eq!(y.len(), n * k);
        let mut xc = vec![0.0f64; n];
        let mut gc = vec![0.0f64; ng];
        let mut yc = vec![0.0f64; n];
        for c in 0..k {
            for (s, v) in xc.iter_mut().enumerate() {
                *v = x_owned[s * k + c];
            }
            for (s, v) in gc.iter_mut().enumerate() {
                *v = x_ghost[s * k + c];
            }
            // Phase 2 accumulates: seed the scratch with this column's
            // current partial sums so the += lands on the right values.
            for (s, v) in yc.iter_mut().enumerate() {
                *v = y[s * k + c];
            }
            self.apply_boundary(&xc, &gc, &mut yc);
            for (s, v) in yc.iter().enumerate() {
                y[s * k + c] = *v;
            }
        }
    }
    /// Owned rows finalized entirely by `apply_interior` (touched by no
    /// ghost-dependent contribution) — the overlap accounting analogue of
    /// the assembled path's interior row class.
    fn interior_rows(&self) -> u64;
    /// Owned rows that receive at least one phase-2 contribution.
    fn boundary_rows(&self) -> u64;
    /// Diagonal of the owned rows (layout order).
    fn diag_local(&self) -> &[f64];
    /// Flops one full (both-phase) product costs on this rank.
    fn flops_per_apply(&self) -> u64;
    /// Resident bytes backing this rank's kernel (shared caches counted
    /// once per rank that holds a reference).
    fn memory_bytes(&self) -> u64;
}

/// Builds the per-rank kernels of a matrix-free operator for a given row
/// ownership, decoupling whoever defines the physics (e.g. `pmg-fem`) from
/// whoever defines the partition (e.g. the multigrid setup in `prometheus`,
/// which only knows the ownership lists after recursive bisection).
pub trait MatrixFreeFactory: Send + Sync {
    /// `owned[r]` lists the global row ids owned by rank `r`, in the order
    /// the rank stores them. Returns one kernel per rank.
    fn build_kernels(&self, owned: &[&[u32]]) -> Vec<Box<dyn MatrixFreeKernel>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    #[test]
    fn csr_and_bsr_agree_through_the_trait() {
        let mut b = CooBuilder::new(6, 6);
        for i in 0..6 {
            b.push(i, i, 2.0 + i as f64);
            if i + 1 < 6 {
                b.push(i, i + 1, -1.0);
            }
        }
        let a = b.build();
        let bsr = Bsr3Matrix::from_csr(&a);
        let x: Vec<f64> = (0..6).map(|i| (i as f64 * 0.4).cos()).collect();
        let mut y1 = vec![0.0; 6];
        let mut y2 = vec![0.0; 6];
        Operator::apply(&a, &x, &mut y1);
        Operator::apply(&bsr, &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(Operator::diag(&a), Operator::diag(&bsr));
        assert!(a.memory_bytes() > 0 && bsr.memory_bytes() > 0);
        assert_eq!(a.flops_per_apply(), 2 * a.nnz() as u64);
    }

    /// Wraps an operator hiding its `apply_multi` override, so the trait's
    /// default deinterleave path is what gets exercised.
    struct DefaultMulti<'a>(&'a dyn Operator);

    impl Operator for DefaultMulti<'_> {
        fn nrows(&self) -> usize {
            self.0.nrows()
        }
        fn ncols(&self) -> usize {
            self.0.ncols()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.0.apply(x, y);
        }
        fn diag(&self) -> Vec<f64> {
            self.0.diag()
        }
        fn memory_bytes(&self) -> u64 {
            self.0.memory_bytes()
        }
        fn flops_per_apply(&self) -> u64 {
            self.0.flops_per_apply()
        }
    }

    #[test]
    fn apply_multi_is_bitwise_per_column_for_all_backends() {
        // A 9x9 block-structured matrix with an irregular stencil so CSR
        // and BSR3 rows have varying lengths.
        let n = 9;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 3.0 + (i as f64) * 0.17);
            if i + 3 < n {
                b.push(i, i + 3, -1.25 + (i as f64) * 0.01);
                b.push(i + 3, i, -0.75);
            }
            if i % 2 == 0 && i + 1 < n {
                b.push(i, i + 1, 0.31 * (i as f64 + 1.0));
            }
        }
        let a = b.build();
        let bsr = Bsr3Matrix::from_csr(&a);
        let ops: [&dyn Operator; 2] = [&a, &bsr];
        for op in ops {
            let wrapped = DefaultMulti(op);
            for k in [1usize, 2, 4, 8] {
                let x: Vec<f64> = (0..n * k)
                    .map(|i| ((i * 7 % 13) as f64 - 6.0) * 0.3)
                    .collect();
                let mut ym = vec![0.0; n * k];
                op.apply_multi(&x, &mut ym, k);
                let mut yd = vec![0.0; n * k];
                wrapped.apply_multi(&x, &mut yd, k);
                for c in 0..k {
                    let xc: Vec<f64> = (0..n).map(|i| x[i * k + c]).collect();
                    let mut yc = vec![0.0; n];
                    op.apply(&xc, &mut yc);
                    for i in 0..n {
                        assert_eq!(
                            ym[i * k + c].to_bits(),
                            yc[i].to_bits(),
                            "k={k} c={c} i={i}"
                        );
                        assert_eq!(yd[i * k + c].to_bits(), yc[i].to_bits(), "default impl");
                    }
                }
            }
        }
    }
}
