//! Global floating-point operation accounting.
//!
//! The paper's performance study (§6) decomposes efficiency in terms of
//! flops: flops per unknown per iteration (flop scale efficiency `e_s^F`),
//! flop rate (communication efficiency `e_c`), and load balance (max vs
//! average flops per processor). To regenerate those figures we count flops
//! in every kernel. Counting uses a relaxed atomic and is always on: a
//! single `fetch_add` per kernel call (not per scalar op) keeps the overhead
//! unmeasurable.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);

/// Record `n` floating-point operations.
#[inline]
pub fn add(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Total flops recorded since the last [`reset`].
pub fn total() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Zero the counter.
pub fn reset() {
    FLOPS.store(0, Ordering::Relaxed);
}

/// Scope helper: returns flops spent while running `f`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = total();
    let out = f();
    (out, total().wrapping_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_measure() {
        // Note: tests run concurrently; only check relative behaviour.
        let (_, spent) = measure(|| add(123));
        assert!(spent >= 123);
        let before = total();
        add(7);
        assert!(total() - before >= 7);
    }
}
