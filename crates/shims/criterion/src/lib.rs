//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this local package
//! provides the API subset our benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `black_box`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical machinery it
//! runs a short warmup, then times batches until ~`measurement_time`
//! elapses and reports the mean, min, and max per-iteration wall time —
//! enough for the regression comparisons recorded in EXPERIMENTS.md.
//!
//! `CRITERION_SAMPLE_MS` overrides the per-benchmark measurement budget
//! (milliseconds, default 300).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats every variant the
/// same (one setup per timed iteration, setup excluded from the timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

fn measurement_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Time `f` repeatedly until the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup, and fail fast on panics
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`] with a per-iteration setup excluded from the
    /// measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(f(setup())); // warmup
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        println!(
            "{name:<40} mean {:>12}   min {:>12}   max {:>12}   ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(measurement_budget());
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group: {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }
}

/// Named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall-clock
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(measurement_budget());
        f(&mut b);
        b.report(&format!("{}/{}", self.group, name));
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, target, ...)` — simple form only.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(!b.samples.is_empty());
        assert!(n as usize > b.samples.len()); // warmup ran too
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 2));
    }
}
