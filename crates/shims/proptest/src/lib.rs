//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this local package
//! implements the subset of proptest the workspace's property tests use:
//!
//! - [`Strategy`] with an associated `Value`, implemented for numeric
//!   ranges and tuples, plus [`Strategy::prop_map`];
//! - [`collection::vec`] with a fixed or ranged length;
//! - the [`proptest!`] macro generating a `#[test]` that samples each
//!   strategy `PROPTEST_CASES` times (default 64) from a per-test
//!   deterministic seed;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no regression-file
//! persistence: a failing case panics with the case number and seed so it
//! can be replayed by fixing `PROPTEST_CASES`/`PROPTEST_SEED`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Outcome of one sampled test case (used by the generated runner).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, it does not count as a pass
    /// or a failure.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from the test name (stable across runs) xor an optional
    /// `PROPTEST_SEED` environment override.
    pub fn deterministic(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                h ^= v;
            }
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn gen_f64(&mut self, r: Range<f64>) -> f64 {
        self.0.gen_range(r)
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn gen_usize(&mut self, r: Range<usize>) -> usize {
        self.0.gen_range(r)
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A value generator. `sample` draws one value; there is no shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_f64(self.clone())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.gen_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let r = &self.size.0;
            let len = if r.end - r.start <= 1 {
                r.start
            } else {
                rng.gen_usize(r.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    pub use super::TestRng;
}

pub mod prelude {
    pub use super::collection;
    pub use super::{Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Generate `#[test]` functions that sample each argument strategy per
/// case. Matches the `proptest! { #[test] fn name(arg in strategy, ...) {
/// body } }` form (multiple functions per invocation allowed).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut rejected = 0usize;
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {case}/{cases}: {msg}",
                            stringify!($name)
                        ),
                    }
                }
                assert!(
                    cases == 0 || rejected < cases,
                    "every case rejected by prop_assume! in {}",
                    stringify!($name)
                );
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently skip the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_sample_in_bounds");
        let s = 3usize..17;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..17).contains(&v));
        }
        let f = -2.5f64..2.5;
        for _ in 0..200 {
            let v = f.sample(&mut rng);
            assert!((-2.5..2.5).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::deterministic("vec_strategy_sizes");
        let fixed = collection::vec(0u32..5, 7);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
        let ranged = collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_runner(
            xs in collection::vec((0u32..10, -1.0f64..1.0), 0..20),
            k in 1usize..5,
        ) {
            prop_assume!(k != 4);
            prop_assert!(xs.len() < 20);
            for (a, b) in xs {
                prop_assert!(a < 10);
                prop_assert!((-1.0..1.0).contains(&b), "b = {b}");
            }
            prop_assert_eq!(k.min(3) <= 3, true);
        }
    }

    proptest! {
        #[test]
        fn prop_map_composes(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a as u16 + b as u16)) {
            prop_assert!(v <= 6);
        }
    }
}
