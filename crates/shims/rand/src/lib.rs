//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this local package
//! (substituted via a workspace path dependency) provides the exact API
//! subset the workspace uses: `rngs::StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::gen` / `Rng::gen_range` for the types we sample, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256**, seeded
//! through SplitMix64 — deterministic across platforms, which the test
//! suite relies on.

use std::ops::Range;

/// Low-level uniform-bits source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling convenience layer (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// A uniform sample of `T`'s "standard" distribution (`f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for the tiny spans used in tests.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`;
    /// unlike the real one, its streams are stable across versions).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 12];
        for _ in 0..500 {
            let i = rng.gen_range(0..12usize);
            seen[i] = true;
            let f = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&f));
            let n = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&n));
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }
}
