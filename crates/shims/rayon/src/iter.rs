//! Indexed parallel iterators over the pool in [`crate::pool`].
//!
//! Everything here is *indexed*: a source knows its exact length and can
//! produce the item at any index independently. That is what makes the
//! whole layer deterministic — the task decomposition in [`decompose`] is
//! a function of the length alone (never of the thread count), consumers
//! assemble results positionally, and reductions fold per-task partials
//! in task order. A pool of any size therefore produces bitwise-identical
//! results to the sequential execution.

use crate::pool::run_batch;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};

/// Fixed fan-out target per parallel region. Larger than any plausible
/// core count so load-balancing has slack, small enough that per-task
/// overhead stays negligible; part of the determinism contract (see
/// [`decompose`]) so changing it changes chunk boundaries everywhere.
const TASKS_TARGET: usize = 64;

/// Split `n` items into `(ntasks, chunk)` with `ntasks <= TASKS_TARGET`
/// contiguous chunks. Depends on `n` only — NOT on the thread count —
/// which is what keeps every consumer's output independent of pool size.
fn decompose(n: usize) -> (usize, usize) {
    if n == 0 {
        return (0, 1);
    }
    let chunk = n.div_ceil(TASKS_TARGET).max(1);
    (n.div_ceil(chunk), chunk)
}

/// Raw pointer that may be shared across the pool's threads. Safety is
/// the caller's problem: every use writes/reads disjoint indices.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

/// An indexed parallel iterator: a known length plus random access to
/// each item. All adapters and consumers ride on these two methods.
///
/// Implementors guarantee that producing distinct indices concurrently is
/// safe; consumers guarantee each index is produced **at most once** (the
/// contract that lets [`item`](Self::item) hand out `&mut` items and move
/// out of owned buffers).
pub trait ParallelIterator: Sized + Send + Sync {
    /// The element type.
    type Item: Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce item `i`.
    ///
    /// # Safety
    /// `i < self.len()`, and each index is produced at most once across
    /// all threads for the lifetime of `self`.
    unsafe fn item(&self, i: usize) -> Self::Item;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pair items positionally with another iterator (length = min).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let n = self.len();
        let (ntasks, chunk) = decompose(n);
        let body = |t: usize| {
            let start = t * chunk;
            let end = (start + chunk).min(n);
            for i in start..end {
                // SAFETY: tasks cover disjoint index ranges exactly once.
                f(unsafe { self.item(i) });
            }
        };
        run_batch(ntasks, &body);
    }

    /// Collect into a container; items land at their source positions.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum all items. Per-task partial sums are folded in task order, so
    /// the result is identical for every pool size (and equal to the
    /// sequential sum of the same fixed-shape decomposition).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let n = self.len();
        let (ntasks, chunk) = decompose(n);
        let mut partials: Vec<MaybeUninit<S>> = Vec::with_capacity(ntasks);
        // SAFETY: every slot is written exactly once by its task below.
        unsafe { partials.set_len(ntasks) };
        let slots = SyncPtr(partials.as_mut_ptr());
        let slots = &slots;
        let body = move |t: usize| {
            let start = t * chunk;
            let end = (start + chunk).min(n);
            // SAFETY: disjoint index ranges; disjoint partial slots.
            let p: S = (start..end).map(|i| unsafe { self.item(i) }).sum();
            unsafe { slots.0.add(t).write(MaybeUninit::new(p)) };
        };
        run_batch(ntasks, &body);
        partials
            .into_iter()
            // SAFETY: task `t` initialized slot `t` before run_batch returned.
            .map(|p| unsafe { p.assume_init() })
            .sum()
    }
}

/// Conversion into a [`ParallelIterator`] (owned collections, ranges).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types constructible from a parallel iterator (the `collect` target).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container; item `i` of the iterator becomes element `i`.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let n = iter.len();
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: every slot is written exactly once by its task below.
        unsafe { out.set_len(n) };
        let slots = SyncPtr(out.as_mut_ptr());
        let slots = &slots;
        let (ntasks, chunk) = decompose(n);
        let iter = &iter;
        let body = move |t: usize| {
            let start = t * chunk;
            let end = (start + chunk).min(n);
            for i in start..end {
                // SAFETY: disjoint indices, disjoint slots, each once.
                unsafe { slots.0.add(i).write(MaybeUninit::new(iter.item(i))) };
            }
        };
        run_batch(ntasks, &body);
        // SAFETY: all n slots initialized; MaybeUninit<T> has T's layout.
        unsafe {
            let ptr = out.as_mut_ptr() as *mut T;
            let len = out.len();
            let cap = out.capacity();
            std::mem::forget(out);
            Vec::from_raw_parts(ptr, len, cap)
        }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over a `usize` range.
pub struct RangePar {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangePar {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn item(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangePar;
    type Item = usize;
    fn into_par_iter(self) -> RangePar {
        RangePar {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Iter = RangePar;
    type Item = usize;
    fn into_par_iter(self) -> RangePar {
        let (start, end) = (*self.start(), *self.end());
        RangePar {
            start,
            len: if start > end { 0 } else { end - start + 1 },
        }
    }
}

/// Parallel iterator over `&[T]` (shared items).
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Parallel iterator over non-overlapping `&[T]` chunks.
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn item(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        self.slice.get_unchecked(start..end)
    }
}

/// Parallel iterator over `&mut [T]` (exclusive items).
pub struct SliceParMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: items are handed out at most once per index (trait contract),
// so no two threads ever hold the same element.
unsafe impl<T: Send> Send for SliceParMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceParMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceParMut<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn item(&self, i: usize) -> &'a mut T {
        // SAFETY: i < len and produced at most once — exclusive access.
        &mut *self.ptr.add(i)
    }
}

/// Parallel iterator over non-overlapping `&mut [T]` chunks.
pub struct ChunksParMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for SliceParMut — chunks are disjoint, each produced once.
unsafe impl<T: Send> Send for ChunksParMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksParMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ChunksParMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn item(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: disjoint [start, end) windows, each produced once.
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// Parallel iterator that moves items out of an owned `Vec<T>`.
pub struct VecPar<T> {
    buf: ManuallyDrop<Vec<T>>,
}

impl<T> Drop for VecPar<T> {
    fn drop(&mut self) {
        // Free the buffer without dropping elements: consumed items were
        // moved out by `item`; unconsumed items (panic path) leak.
        unsafe {
            let mut v = ManuallyDrop::take(&mut self.buf);
            v.set_len(0);
        }
    }
}

impl<T: Send + Sync> ParallelIterator for VecPar<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.buf.len()
    }
    unsafe fn item(&self, i: usize) -> T {
        // SAFETY: each index read at most once — a move, not a copy.
        std::ptr::read(self.buf.as_ptr().add(i))
    }
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar {
            buf: ManuallyDrop::new(self),
        }
    }
}

/// `par_iter()` / `par_chunks()` on slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> SlicePar<'_, T>;
    /// Parallel iterator over non-overlapping chunks of `chunk_size`
    /// (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SlicePar<'_, T> {
        SlicePar { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ChunksPar {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> SliceParMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParMut<'_, T> {
        SliceParMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ChunksParMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn item(&self, i: usize) -> R {
        (self.f)(self.base.item(i))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn item(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.item(i))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn item(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.item(i), self.b.item(i))
    }
}
