//! Offline stand-in for the `rayon` crate, with real threads.
//!
//! The build environment has no crates.io access, so this local package
//! vendors the subset of rayon's API the workspace uses — `par_iter()`,
//! `par_iter_mut()`, `par_chunks{,_mut}()`, `into_par_iter()` on ranges
//! and `Vec`, the `map`/`enumerate`/`zip` adapters, the
//! `for_each`/`collect`/`sum` consumers, `join`, and
//! `ThreadPool`/`ThreadPoolBuilder` — on top of its own work-stealing
//! pool built from `std::thread` (see [`pool`]). Call sites written
//! against real rayon compile unchanged.
//!
//! Unlike rayon, every operation here is **bitwise deterministic
//! independent of thread count**: work is decomposed as a function of
//! input length only, results are assembled positionally, and reductions
//! fold fixed-shape partials in a fixed order (see [`iter`]). The solver
//! stack's parity and regression tests rely on this.
//!
//! Pool size comes from `PMG_THREADS` (then `RAYON_NUM_THREADS`, then the
//! machine), or per-region via [`ThreadPool::install`].

pub mod iter;
pub mod pool;

pub use pool::{
    current_num_threads, current_pool_stats, join, PoolStats, ThreadPool, ThreadPoolBuilder,
};

/// The traits that make `par_iter()` & friends available — `use
/// rayon::prelude::*;` exactly as with the real crate.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{ThreadPool, ThreadPoolBuilder};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn slice_adapters_match_sequential() {
        let v = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);

        let mut w = vec![0; 6];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(w, vec![0, 1, 2, 3, 4, 5]);

        let mut chunks = vec![0u8; 6];
        chunks.par_chunks_mut(3).enumerate().for_each(|(c, ch)| {
            for x in ch {
                *x = c as u8;
            }
        });
        assert_eq!(chunks, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let total: usize = (1..=100usize).into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[7], 1);
        assert_eq!(lens[42], 2);
    }

    #[test]
    fn zip_of_chunks_mut() {
        // The triple-zip shape the FE assembly hot loop uses.
        let n = 4 * 7 + 3; // ragged tail
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        let mut c = vec![0u32; n];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(4))
            .zip(c.par_chunks_mut(4))
            .enumerate()
            .for_each(|(i, ((ca, cb), cc))| {
                for x in ca.iter_mut().chain(cb.iter_mut()).chain(cc.iter_mut()) {
                    *x = i as u32;
                }
            });
        for (j, &x) in a.iter().enumerate() {
            assert_eq!(x as usize, j / 4);
        }
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let run = || -> (Vec<f64>, f64, usize) {
            let vals: Vec<f64> = (0..10_000usize)
                .into_par_iter()
                .map(|i| (i as f64 * 0.1).sin() / (1.0 + i as f64))
                .collect();
            let s: f64 = vals.par_iter().map(|v| v * v).sum();
            let c: usize = (1..=997usize).into_par_iter().sum();
            (vals, s, c)
        };
        let base = pool(1).install(run);
        for n in [2, 4, 7] {
            let got = pool(n).install(run);
            assert!(base
                .0
                .iter()
                .zip(&got.0)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(base.1.to_bits(), got.1.to_bits());
            assert_eq!(base.2, got.2);
        }
    }

    #[test]
    fn nested_parallelism_makes_progress() {
        let p = pool(3);
        let out: Vec<usize> = p.install(|| {
            (0..20usize)
                .into_par_iter()
                .map(|i| (0..50usize).into_par_iter().map(|j| i * j).sum())
                .collect()
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * (49 * 50) / 2);
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let p2 = pool(2);
        let p5 = pool(5);
        assert_eq!(p2.install(super::current_num_threads), 2);
        assert_eq!(p5.install(super::current_num_threads), 5);
        assert_eq!(p5.install(|| p2.install(super::current_num_threads)), 2);
        assert_eq!(p2.current_num_threads(), 2);
    }

    #[test]
    fn pool_stats_count_work() {
        let p = pool(4);
        p.install(|| {
            let s: usize = (0..100_000usize).into_par_iter().sum();
            assert_eq!(s, 100_000 * 99_999 / 2);
        });
        let st = p.stats();
        assert_eq!(st.threads, 4);
        assert!(st.batches >= 1);
        assert!(st.tasks >= 2, "fan-out should issue many tasks");
    }

    #[test]
    fn panic_in_task_propagates() {
        let p = pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("boom");
                    }
                })
            })
        }));
        assert!(r.is_err());
        // Pool must still be usable afterwards.
        let s: usize = p.install(|| (0..10usize).into_par_iter().sum());
        assert_eq!(s, 45);
    }

    #[test]
    fn join_runs_both_sides_in_any_pool() {
        let p = pool(3);
        let (a, b) = p.install(|| {
            super::join(
                || (0..1000usize).into_par_iter().sum::<usize>(),
                || (0..500usize).map(|i| i * 2).sum::<usize>(),
            )
        });
        assert_eq!(a, 1000 * 999 / 2);
        assert_eq!(b, 500 * 499);
    }
}
