//! Offline shim for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this local package
//! stands in for rayon. The "parallel" iterators delegate to the standard
//! sequential iterators: `par_iter()` is `iter()`, `into_par_iter()` is
//! `into_iter()`, and so on. All adapters (`map`, `enumerate`, `for_each`,
//! `collect`, ...) then come for free from `std::iter::Iterator`, so call
//! sites compile unchanged.
//!
//! Sequential execution is semantically identical for the data-parallel
//! patterns used here (independent per-item work followed by a collect);
//! the host this runs on is single-core anyway, and the repo's scalability
//! claims rest on the BSP machine model in `pmg-parallel`, not on host
//! threads. If real threading becomes worthwhile, this shim is the seam to
//! swap the actual rayon back in.

pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges — sequential.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` / `par_chunks()` on slices — sequential.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on slices — sequential.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// `rayon::join` — sequential: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The shim "thread pool" has exactly one thread.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_adapters_match_sequential() {
        let v = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);

        let mut w = vec![0; 6];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(w, vec![0, 1, 2, 3, 4, 5]);

        let mut chunks = vec![0u8; 6];
        chunks.par_chunks_mut(3).enumerate().for_each(|(c, ch)| {
            for x in ch {
                *x = c as u8;
            }
        });
        assert_eq!(chunks, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let total: usize = (1..=100usize).into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
