//! The thread pool under the parallel iterators: OS worker threads, a
//! shared injector queue, and task batches drained through an atomic
//! claim counter.
//!
//! # Scheduling model
//!
//! Every parallel region (a `for_each`, `collect`, `sum`, or one side of a
//! [`join`](crate::join)) becomes one **batch**: a fixed number of tasks
//! plus a `Fn(usize)` body. The caller pushes the batch onto the pool's
//! injector queue, wakes the workers, and then *participates*: it claims
//! tasks from its own batch exactly like a worker would. Workers that pop
//! the batch race the caller (and each other) on a single atomic counter —
//! whoever gets index `i` runs task `i`. Idle workers thereby steal work
//! from busy threads at task granularity, which is the load-balancing
//! property a work-stealing deque buys, with a much smaller trusted base
//! (one mutex, two atomics).
//!
//! Because the caller always participates, a batch makes progress even if
//! every worker is busy — including the nested case where a task body
//! opens its own parallel region. Nested batches cannot deadlock: each
//! region's issuer drains its own batch.
//!
//! # Determinism
//!
//! The pool never decides *what* the tasks are, only *who* runs them. Task
//! decomposition (how an iterator of length `n` maps onto task indices) is
//! fixed by the iterator layer as a function of `n` alone — never of the
//! thread count — and every consumer assembles results positionally (task
//! `i`'s output lands in slot `i`). Reductions combine partials in task
//! order. Hence every parallel result is bitwise identical for any pool
//! size, which the workspace's CSR/BSR parity and residual-history
//! regression tests rely on.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One parallel region: `ntasks` calls of `body`, claimed via `next`.
struct Batch {
    /// Type-erased task body. The pointee lives on the issuing thread's
    /// stack; the issuer blocks until `done == ntasks`, so the pointer is
    /// valid for as long as any worker can observe the batch.
    body: *const (dyn Fn(usize) + Sync),
    ntasks: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Completed task count; the batch is finished when it reaches
    /// `ntasks`.
    done: AtomicUsize,
    /// Set when any task body panicked (the issuer re-panics).
    panicked: AtomicBool,
    /// Issuer parks here waiting for the last task.
    finished: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: `body` is only dereferenced between batch issue and batch
// completion, a window the issuing thread's borrow outlives (it blocks in
// `wait()` until `done == ntasks`). The body itself is `Sync`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claim-and-run tasks until the claim counter is exhausted. Returns
    /// the number of tasks this thread executed.
    fn drain(&self) -> usize {
        let mut ran = 0usize;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.ntasks {
                return ran;
            }
            // Keep counting a panicked batch down so the issuer wakes.
            let body = unsafe { &*self.body };
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(i)));
            if r.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            ran += 1;
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.ntasks {
                *self.finished.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
    }

    /// Block until every task has completed.
    fn wait(&self) {
        let mut f = self.finished.lock().unwrap();
        while !*f {
            f = self.cv.wait(f).unwrap();
        }
    }
}

/// Cumulative scheduling statistics of one pool (all relaxed counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Compute participants: worker threads plus the issuing thread.
    pub threads: usize,
    /// Parallel regions issued (batches).
    pub batches: u64,
    /// Tasks executed in total.
    pub tasks: u64,
    /// Tasks executed by a thread other than the batch's issuer — work
    /// that was actually stolen onto another OS thread.
    pub stolen_tasks: u64,
}

struct Shared {
    queue: Mutex<std::collections::VecDeque<Arc<Batch>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    batches: AtomicU64,
    tasks: AtomicU64,
    stolen: AtomicU64,
}

impl Shared {
    /// Worker main loop: pop a batch, drain it, repeat.
    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(b) = q.pop_front() {
                        break b;
                    }
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    q = self.cv.wait(q).unwrap();
                }
            };
            let ran = batch.drain();
            if ran > 0 {
                self.tasks.fetch_add(ran as u64, Ordering::Relaxed);
                self.stolen.fetch_add(ran as u64, Ordering::Relaxed);
            }
        }
    }
}

/// A fixed-size pool of compute threads. `threads` counts the issuing
/// thread too: a pool of size 1 spawns no OS threads and runs every batch
/// inline, which is the fully sequential reference execution.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            batches: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        let handles = (1..threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pmg-pool-{i}"))
                    .spawn(move || {
                        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&sh)));
                        sh.worker_loop();
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of compute participants (workers + issuer).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Cumulative scheduling statistics.
    pub fn stats(&self) -> PoolStats {
        stats_of(&self.shared)
    }

    /// Run `f` with this pool as the thread-local current pool: every
    /// parallel iterator and [`join`](crate::join) reached from `f` (on
    /// this thread) executes here. Restores the previous pool on exit.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.shared)));
        struct Restore(Option<Arc<Shared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the subset used here.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Total compute threads (issuer included); 0 or unset means the
    /// environment default ([`default_threads`]).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool. Infallible here; the `Result` matches rayon's
    /// signature so call sites port over unchanged.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool::new(n))
    }
}

thread_local! {
    /// The pool parallel work on this thread routes to: a worker's owning
    /// pool, or whatever `install` put here, or (when empty) the global
    /// default pool.
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

/// Pool size from the environment: `PMG_THREADS`, else `RAYON_NUM_THREADS`,
/// else the machine's available parallelism.
pub fn default_threads() -> usize {
    for var in ["PMG_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

fn current_shared() -> Arc<Shared> {
    CURRENT.with(|c| {
        if let Some(sh) = c.borrow().as_ref() {
            return Arc::clone(sh);
        }
        Arc::clone(&global().shared)
    })
}

fn stats_of(sh: &Shared) -> PoolStats {
    PoolStats {
        threads: sh.threads,
        batches: sh.batches.load(Ordering::Relaxed),
        tasks: sh.tasks.load(Ordering::Relaxed),
        stolen_tasks: sh.stolen.load(Ordering::Relaxed),
    }
}

/// Compute participants of the current pool (issuer included).
pub fn current_num_threads() -> usize {
    current_shared().threads
}

/// Scheduling statistics of the current pool.
pub fn current_pool_stats() -> PoolStats {
    stats_of(&current_shared())
}

/// Execute `body(0..ntasks)` on the current pool, returning when all tasks
/// have finished. Task bodies run concurrently on distinct indices; the
/// calling thread participates, so this makes progress even when every
/// worker is busy (nested regions included).
pub(crate) fn run_batch(ntasks: usize, body: &(dyn Fn(usize) + Sync)) {
    if ntasks == 0 {
        return;
    }
    let shared = current_shared();
    if shared.threads <= 1 || ntasks == 1 {
        // Sequential reference execution: same tasks, same order, no
        // cross-thread machinery (and no catch_unwind frames).
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.tasks.fetch_add(ntasks as u64, Ordering::Relaxed);
        for i in 0..ntasks {
            body(i);
        }
        return;
    }
    shared.batches.fetch_add(1, Ordering::Relaxed);
    // Erase the body's stack lifetime; `wait()` below outlives all uses.
    let body_static: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(body as *const (dyn Fn(usize) + Sync)) };
    let batch = Arc::new(Batch {
        body: body_static,
        ntasks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        finished: Mutex::new(false),
        cv: Condvar::new(),
    });
    // One queue entry per potential helper; duplicates of an exhausted
    // batch cost a popping worker one atomic load.
    let helpers = (shared.threads - 1).min(ntasks);
    {
        let mut q = shared.queue.lock().unwrap();
        for _ in 0..helpers {
            q.push_back(Arc::clone(&batch));
        }
    }
    if helpers == 1 {
        shared.cv.notify_one();
    } else {
        shared.cv.notify_all();
    }
    let ran = batch.drain();
    shared.tasks.fetch_add(ran as u64, Ordering::Relaxed);
    batch.wait();
    if batch.panicked.load(Ordering::Relaxed) {
        panic!("a task in a parallel region panicked");
    }
}

/// Fork-join: run `a` and `b`, potentially in parallel, and return both
/// results. `b` is offered to the pool; the calling thread runs `a` and
/// then claims `b` back if no worker picked it up — so a saturated (or
/// size-1) pool degrades to exact sequential execution `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        return (a(), b());
    }
    // Cells for moving the closures in and the results out of the
    // type-erased batch body. Task 0 <-> a, task 1 <-> b; each index is
    // claimed exactly once, so each cell is touched by exactly one thread.
    let fa = std::cell::UnsafeCell::new(Some(a));
    let fb = std::cell::UnsafeCell::new(Some(b));
    let ra = std::cell::UnsafeCell::new(None::<RA>);
    let rb = std::cell::UnsafeCell::new(None::<RB>);
    struct SyncCells<T>(T);
    unsafe impl<T> Sync for SyncCells<T> {}
    let cells = SyncCells((&fa, &fb, &ra, &rb));
    let cells_ref = &cells;
    let body = move |i: usize| {
        let (fa, fb, ra, rb) = cells_ref.0;
        // SAFETY: run_batch calls each index at most once.
        unsafe {
            if i == 0 {
                let f = (*fa.get()).take().expect("join task 0 claimed twice");
                *ra.get() = Some(f());
            } else {
                let f = (*fb.get()).take().expect("join task 1 claimed twice");
                *rb.get() = Some(f());
            }
        }
    };
    run_batch(2, &body);
    (
        ra.into_inner().expect("join left result missing"),
        rb.into_inner().expect("join right result missing"),
    )
}
