//! Property-based tests of the geometric predicates and the Delaunay
//! tetrahedralization.

use pmg_geometry::{insphere, orient3d, Delaunay, Orientation, Vec3};
use proptest::prelude::*;

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn flip(o: Orientation) -> Orientation {
    match o {
        Orientation::Positive => Orientation::Negative,
        Orientation::Negative => Orientation::Positive,
        Orientation::Zero => Orientation::Zero,
    }
}

proptest! {
    #[test]
    fn orient3d_antisymmetric_under_swap(
        a in vec3_strategy(), b in vec3_strategy(),
        c in vec3_strategy(), d in vec3_strategy(),
    ) {
        let o = orient3d(a, b, c, d);
        prop_assert_eq!(orient3d(b, a, c, d), flip(o));
        prop_assert_eq!(orient3d(a, c, b, d), flip(o));
        prop_assert_eq!(orient3d(a, b, d, c), flip(o));
        // Even permutation preserves the sign.
        prop_assert_eq!(orient3d(b, c, a, d), o);
    }

    #[test]
    fn orient3d_degenerate_cases(
        a in vec3_strategy(), b in vec3_strategy(), c in vec3_strategy(),
    ) {
        // A repeated vertex is always degenerate.
        prop_assert_eq!(orient3d(a, a, b, c), Orientation::Zero);
        prop_assert_eq!(orient3d(a, b, b, c), Orientation::Zero);
        prop_assert_eq!(orient3d(a, b, c, c), Orientation::Zero);
        // Note: a floating-point midpoint (a+b)/2 is NOT exactly colinear
        // in general (the addition rounds), and the exact predicate
        // correctly distinguishes it — so no colinearity check here.
    }

    #[test]
    fn insphere_flips_with_tet_orientation(
        a in vec3_strategy(), b in vec3_strategy(),
        c in vec3_strategy(), d in vec3_strategy(), e in vec3_strategy(),
    ) {
        prop_assume!(orient3d(a, b, c, d) != Orientation::Zero);
        let s1 = insphere(a, b, c, d, e);
        let s2 = insphere(b, a, c, d, e);
        prop_assert_eq!(s2, flip(s1));
    }

    #[test]
    fn insphere_vertex_on_sphere(
        a in vec3_strategy(), b in vec3_strategy(),
        c in vec3_strategy(), d in vec3_strategy(),
    ) {
        // Each defining vertex lies exactly on the circumsphere.
        prop_assume!(orient3d(a, b, c, d) != Orientation::Zero);
        for q in [a, b, c, d] {
            prop_assert_eq!(insphere(a, b, c, d, q), Orientation::Zero);
        }
    }

    #[test]
    fn delaunay_on_random_clouds(
        pts in proptest::collection::vec(vec3_strategy(), 5..40),
    ) {
        let dt = Delaunay::new(&pts).expect("triangulation");
        prop_assert!(dt.verify_delaunay());
        // Positive orientation of every real tet.
        for (_, t) in dt.real_tets() {
            let v = t.verts.map(|i| dt.points()[i]);
            prop_assert_eq!(orient3d(v[0], v[1], v[2], v[3]), Orientation::Positive);
        }
    }

    #[test]
    fn delaunay_locate_every_input_point(
        pts in proptest::collection::vec(vec3_strategy(), 8..30),
    ) {
        let dt = Delaunay::new(&pts).expect("triangulation");
        for (i, &p) in pts.iter().enumerate() {
            let t = dt.locate(p, 0).expect("point inside bounding tet");
            // The located tet's barycentric weights reproduce the point.
            let w = dt.barycentric(t, p);
            let verts = dt.tet(t).verts;
            let mut rec = Vec3::ZERO;
            for (wi, vi) in w.iter().zip(verts.iter()) {
                rec += *wi * dt.points()[*vi];
            }
            prop_assert!(rec.dist(p) < 1e-6 * (1.0 + p.norm()), "point {i}");
        }
    }

    #[test]
    fn delaunay_hull_volume_matches_sum(
        pts in proptest::collection::vec(vec3_strategy(), 5..25),
    ) {
        // Sum of real tet volumes is non-negative and bounded by the
        // bounding box volume.
        let dt = Delaunay::new(&pts).expect("triangulation");
        let mut vol = 0.0;
        for (_, t) in dt.real_tets() {
            let v = t.verts.map(|i| dt.points()[i]);
            vol += pmg_geometry::predicates::orient3d_fast(v[0], v[1], v[2], v[3]) / 6.0;
        }
        let bb = pmg_geometry::Aabb::from_points(pts.iter().copied());
        let e = bb.extent();
        prop_assert!(vol >= -1e-9);
        prop_assert!(vol <= e.x * e.y * e.z + 1e-6);
    }
}

#[test]
fn adaptive_stage_resolves_grid_degeneracies_without_full_exact() {
    // Structured-grid coordinates have exactly representable differences,
    // so every filtered-out predicate resolves in the exact-diff shortcut;
    // the full multi-component path should never be needed.
    let mut pts = Vec::new();
    for i in 0..5 {
        for j in 0..5 {
            for k in 0..5 {
                pts.push(Vec3::new(i as f64, j as f64, k as f64));
            }
        }
    }
    pmg_geometry::predicates::stats::reset();
    let dt = Delaunay::new(&pts).expect("triangulation");
    assert!(dt.verify_delaunay());
    let (filter, exact_diff, full_exact) = pmg_geometry::predicates::stats::snapshot();
    assert!(filter > 0);
    assert!(exact_diff > 0, "grid ties must hit the exact-diff shortcut");
    assert_eq!(
        full_exact, 0,
        "grid coordinates never need the full exact path"
    );
}

#[test]
fn adaptive_stage_agrees_with_full_exact_on_perturbed_grids() {
    // Slightly irrational offsets force inexact differences: the full
    // exact path engages and all stages stay mutually consistent (checked
    // implicitly by verify_delaunay on a near-degenerate cloud).
    let mut pts = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                pts.push(Vec3::new(
                    i as f64 + 1e-14 * ((i * 7 + j) % 3) as f64 + 0.1,
                    j as f64 + 0.1f64.sqrt() * 1e-15,
                    k as f64 + 0.1,
                ));
            }
        }
    }
    pmg_geometry::predicates::stats::reset();
    let dt = Delaunay::new(&pts).expect("triangulation");
    assert!(dt.verify_delaunay());
}
