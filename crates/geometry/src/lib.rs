//! Robust computational geometry substrate for the Prometheus multigrid solver.
//!
//! The SC'99 paper relies on two geometric components that we rebuild here:
//!
//! * **Robust predicates** ([`predicates`]): the paper links Shewchuk's
//!   adaptive-precision geometric predicates (~4k lines of C). We implement
//!   the same construction — floating-point *expansion* arithmetic
//!   ([`expansion`]) with a fast semi-static filter and an exact fallback —
//!   for `orient3d` and `insphere`.
//! * **Delaunay tetrahedralization** ([`delaunay`]): Watson's incremental
//!   (Bowyer–Watson) algorithm, used in §4.8 of the paper to remesh each
//!   coarse vertex set so that linear tetrahedral shape functions define the
//!   restriction operator.
//!
//! Also provided: a small 3-vector type ([`vec3::Vec3`]), axis-aligned
//! bounding boxes ([`aabb::Aabb`]), and barycentric interpolation helpers
//! used when evaluating shape functions of the coarse mesh at fine vertices.

pub mod aabb;
pub mod delaunay;
pub mod expansion;
pub mod predicates;
pub mod vec3;

pub use aabb::Aabb;
pub use delaunay::{Delaunay, Tet};
pub use predicates::{insphere, orient3d, Orientation};
pub use vec3::Vec3;
