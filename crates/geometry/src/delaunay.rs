//! Incremental 3D Delaunay tetrahedralization (Bowyer–Watson / "Watson's
//! algorithm", the method cited in §4.8 of the paper).
//!
//! Points are inserted one at a time into a triangulation seeded with a
//! large bounding tetrahedron. For each insertion we locate the containing
//! tetrahedron by a remembering walk, grow the *cavity* of tetrahedra whose
//! circumsphere contains the point (exact [`insphere`] tests), and retile
//! the cavity boundary with new tetrahedra incident to the point.
//!
//! The multigrid coarsener uses the result to evaluate linear tetrahedral
//! shape functions of the coarse vertex set at fine-grid vertex positions;
//! helpers for barycentric coordinates and point location are provided.

use crate::aabb::Aabb;
use crate::predicates::{insphere, orient3d, orient3d_fast, Orientation};
use crate::vec3::Vec3;
use std::collections::HashMap;

/// A tetrahedron in the triangulation.
///
/// Vertices are indices into [`Delaunay::points`]; the four synthetic
/// bounding-tetrahedron vertices occupy the last four slots. Vertex order is
/// always positively oriented (`orient3d(v0,v1,v2,v3) > 0`).
#[derive(Clone, Copy, Debug)]
pub struct Tet {
    /// Vertex indices, positively oriented.
    pub verts: [usize; 4],
    /// `neighbors[i]` is the tet sharing the face opposite `verts[i]`.
    pub neighbors: [Option<usize>; 4],
    pub(crate) alive: bool,
}

/// Face `FACES[i]` of a tet lists the local vertex indices of the face
/// opposite local vertex `i`, ordered so that for a positively oriented tet
/// `orient3d(face, verts[i]) > 0` (the opposite vertex is "inside").
const FACES: [[usize; 3]; 4] = [[1, 3, 2], [0, 2, 3], [0, 3, 1], [0, 1, 2]];

/// A 3D Delaunay tetrahedralization.
///
/// ```
/// use pmg_geometry::{Delaunay, Vec3};
/// let pts = vec![
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
///     Vec3::new(0.0, 0.0, 1.0),
///     Vec3::new(0.4, 0.4, 0.4),
/// ];
/// let dt = Delaunay::new(&pts).unwrap();
/// assert!(dt.verify_delaunay());
/// let t = dt.locate(Vec3::new(0.2, 0.2, 0.2), 0).unwrap();
/// let w = dt.barycentric(t, Vec3::new(0.2, 0.2, 0.2));
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub struct Delaunay {
    points: Vec<Vec3>,
    tets: Vec<Tet>,
    /// Index of the first synthetic bounding vertex.
    bound_start: usize,
    /// Hint for the next point-location walk.
    last_tet: usize,
    /// For each input point, the index it was stored under (deduplicated
    /// points map to their first occurrence).
    canonical: Vec<usize>,
}

impl Delaunay {
    /// Triangulate `input` points. Duplicate points are tolerated and mapped
    /// to their first occurrence (see [`Delaunay::canonical_index`]).
    ///
    /// Returns `None` when the input is degenerate in a way that prevents
    /// triangulation (fewer than one point or non-finite coordinates).
    pub fn new(input: &[Vec3]) -> Option<Delaunay> {
        let _t = pmg_telemetry::scope("triangulate");
        if input.is_empty()
            || input
                .iter()
                .any(|p| !p.to_array().iter().all(|c| c.is_finite()))
        {
            return None;
        }
        let bbox = Aabb::from_points(input.iter().copied());
        let center = bbox.center();
        let size = bbox.diagonal().max(1.0);
        // A bounding tetrahedron comfortably containing the inflated box.
        let s = 20.0 * size;
        let b0 = center + Vec3::new(0.0, 0.0, 3.0 * s);
        let b1 = center + Vec3::new(-2.0 * s, -s, -s);
        let b2 = center + Vec3::new(2.0 * s, -s, -s);
        let b3 = center + Vec3::new(0.0, 2.0 * s, -s);

        let n = input.len();
        let mut points = Vec::with_capacity(n + 4);
        points.extend_from_slice(input);
        // Fix orientation of the bounding tet.
        let (b1, b2) = match orient3d(b0, b1, b2, b3) {
            Orientation::Positive => (b1, b2),
            _ => (b2, b1),
        };
        debug_assert_eq!(orient3d(b0, b1, b2, b3), Orientation::Positive);
        points.push(b0);
        points.push(b1);
        points.push(b2);
        points.push(b3);

        let root = Tet {
            verts: [n, n + 1, n + 2, n + 3],
            neighbors: [None; 4],
            alive: true,
        };
        let mut dt = Delaunay {
            points,
            tets: vec![root],
            bound_start: n,
            last_tet: 0,
            canonical: Vec::with_capacity(n),
        };

        let mut seen: HashMap<[u64; 3], usize> = HashMap::with_capacity(n);
        for i in 0..n {
            let p = dt.points[i];
            let key = [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()];
            match seen.get(&key) {
                Some(&first) => dt.canonical.push(first),
                None => {
                    seen.insert(key, i);
                    dt.canonical.push(i);
                    dt.insert(i)?;
                }
            }
        }
        Some(dt)
    }

    /// All points, including the 4 synthetic bounding vertices at the end.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// True if `v` is one of the synthetic bounding-tetrahedron vertices.
    pub fn is_bounding_vertex(&self, v: usize) -> bool {
        v >= self.bound_start
    }

    /// Index under which input point `i` was actually triangulated
    /// (different from `i` only for duplicate points).
    pub fn canonical_index(&self, i: usize) -> usize {
        self.canonical[i]
    }

    /// Iterate over alive tetrahedra as `(tet_id, &Tet)`.
    pub fn tets(&self) -> impl Iterator<Item = (usize, &Tet)> {
        self.tets.iter().enumerate().filter(|(_, t)| t.alive)
    }

    /// Alive tetrahedra that do not touch a bounding vertex ("real" tets).
    pub fn real_tets(&self) -> impl Iterator<Item = (usize, &Tet)> {
        self.tets()
            .filter(move |(_, t)| t.verts.iter().all(|&v| !self.is_bounding_vertex(v)))
    }

    pub fn tet(&self, id: usize) -> &Tet {
        &self.tets[id]
    }

    pub fn num_alive_tets(&self) -> usize {
        self.tets.iter().filter(|t| t.alive).count()
    }

    fn vpos(&self, v: usize) -> Vec3 {
        self.points[v]
    }

    /// Signed test: is `p` inside (closed) tet `t`? Returns the local face
    /// index through which `p` is outside, if any.
    fn outside_face(&self, t: usize, p: Vec3) -> Option<usize> {
        let tet = &self.tets[t];
        for (i, f) in FACES.iter().enumerate() {
            let a = self.vpos(tet.verts[f[0]]);
            let b = self.vpos(tet.verts[f[1]]);
            let c = self.vpos(tet.verts[f[2]]);
            if orient3d(a, b, c, p) == Orientation::Negative {
                return Some(i);
            }
        }
        None
    }

    /// Locate a tetrahedron whose closed hull contains `p`, walking from
    /// `hint` (falls back to exhaustive scan if the walk stalls).
    pub fn locate(&self, p: Vec3, hint: usize) -> Option<usize> {
        let mut cur = if self.tets.get(hint).is_some_and(|t| t.alive) {
            hint
        } else {
            self.tets.iter().position(|t| t.alive)?
        };
        let max_steps = 4 * self.tets.len() + 16;
        for _ in 0..max_steps {
            match self.outside_face(cur, p) {
                None => return Some(cur),
                Some(i) => match self.tets[cur].neighbors[i] {
                    Some(nb) => cur = nb,
                    // Outside the current hull: cannot happen for points in
                    // the bounding tet; treat as not found.
                    None => return None,
                },
            }
        }
        // Walk failed to terminate (possible on degenerate inputs): scan.
        self.tets()
            .find(|&(id, _)| self.outside_face(id, p).is_none())
            .map(|(id, _)| id)
    }

    /// Insert point index `pi` (must be a stored point). Returns `None` on
    /// unrecoverable degeneracy.
    fn insert(&mut self, pi: usize) -> Option<()> {
        let p = self.points[pi];
        let start = self.locate(p, self.last_tet)?;

        // Grow the cavity of tets whose circumsphere strictly contains p.
        let mut cavity = vec![start];
        let mut in_cavity = HashMap::new();
        in_cavity.insert(start, true);
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            for i in 0..4 {
                if let Some(nb) = self.tets[t].neighbors[i] {
                    if in_cavity.contains_key(&nb) {
                        continue;
                    }
                    let bad = self.point_in_circumsphere(nb, p);
                    in_cavity.insert(nb, bad);
                    if bad {
                        cavity.push(nb);
                        stack.push(nb);
                    }
                }
            }
        }

        // Collect boundary faces: faces of cavity tets whose neighbor is
        // outside the cavity (or absent).
        struct BFace {
            verts: [usize; 3],
            outer: Option<usize>,
            outer_face: usize,
        }
        let mut boundary = Vec::new();
        for &t in &cavity {
            let tet = self.tets[t];
            for (i, f) in FACES.iter().enumerate() {
                let nb = tet.neighbors[i];
                let nb_in = nb.is_some_and(|n| in_cavity.get(&n).copied().unwrap_or(false));
                if !nb_in {
                    let verts = [tet.verts[f[0]], tet.verts[f[1]], tet.verts[f[2]]];
                    let outer_face = nb.map(|n| self.face_index_of(n, t)).unwrap_or(0);
                    boundary.push(BFace {
                        verts,
                        outer: nb,
                        outer_face,
                    });
                }
            }
        }

        // Kill cavity tets.
        for &t in &cavity {
            self.tets[t].alive = false;
        }

        // Create one new tet per boundary face: (face, p).
        let first_new = self.tets.len();
        let mut face_map: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for bf in &boundary {
            let [a, b, c] = bf.verts;
            debug_assert_ne!(
                orient3d(self.vpos(a), self.vpos(b), self.vpos(c), p),
                Orientation::Negative,
                "cavity boundary face not visible from inserted point"
            );
            let id = self.tets.len();
            self.tets.push(Tet {
                verts: [a, b, c, pi],
                neighbors: [None, None, None, bf.outer],
                alive: true,
            });
            // Re-link the outer neighbor to the new tet.
            if let Some(out) = bf.outer {
                self.tets[out].neighbors[bf.outer_face] = Some(id);
            }
            // Wire new-tet-to-new-tet adjacency through shared edges of the
            // boundary faces. New tet face opposite local vertex k (k<3) is
            // the face containing p and the edge (other two of a,b,c).
            for k in 0..3 {
                let e0 = bf.verts[(k + 1) % 3];
                let e1 = bf.verts[(k + 2) % 3];
                let key = (e0.min(e1), e0.max(e1));
                match face_map.remove(&key) {
                    Some((other_id, other_face)) => {
                        // `verts[k]`'s opposite face in the new tet contains
                        // edge (e0,e1) and p; the local face index is k.
                        self.tets[id].neighbors[k] = Some(other_id);
                        self.tets[other_id].neighbors[other_face] = Some(id);
                    }
                    None => {
                        face_map.insert(key, (id, k));
                    }
                }
            }
        }
        debug_assert!(face_map.is_empty(), "unmatched cavity faces");
        self.last_tet = first_new;
        Some(())
    }

    /// Face index of `t` that is shared with neighbor `nb`.
    fn face_index_of(&self, t: usize, nb: usize) -> usize {
        self.tets[t]
            .neighbors
            .iter()
            .position(|&n| n == Some(nb))
            .expect("neighbor link missing")
    }

    /// Exact test: does the circumsphere of tet `t` strictly contain `p`?
    fn point_in_circumsphere(&self, t: usize, p: Vec3) -> bool {
        let v = self.tets[t].verts;
        insphere(
            self.vpos(v[0]),
            self.vpos(v[1]),
            self.vpos(v[2]),
            self.vpos(v[3]),
            p,
        ) == Orientation::Positive
    }

    /// Barycentric coordinates of `p` in tet `t` (f64 arithmetic). The four
    /// weights sum to 1; all weights in `[0,1]` means `p` is inside.
    pub fn barycentric(&self, t: usize, p: Vec3) -> [f64; 4] {
        let v = self.tets[t].verts;
        barycentric(
            [
                self.vpos(v[0]),
                self.vpos(v[1]),
                self.vpos(v[2]),
                self.vpos(v[3]),
            ],
            p,
        )
    }

    /// Verify the empty-circumsphere property against all points (O(n·m),
    /// intended for tests).
    pub fn verify_delaunay(&self) -> bool {
        for (_, t) in self.tets() {
            for v in 0..self.bound_start {
                if t.verts.contains(&v) {
                    continue;
                }
                if self.point_in_circumsphere_id(t, v) {
                    return false;
                }
            }
        }
        true
    }

    fn point_in_circumsphere_id(&self, t: &Tet, v: usize) -> bool {
        insphere(
            self.vpos(t.verts[0]),
            self.vpos(t.verts[1]),
            self.vpos(t.verts[2]),
            self.vpos(t.verts[3]),
            self.vpos(v),
        ) == Orientation::Positive
    }
}

/// Barycentric coordinates of `p` with respect to tet corners `v` (plain f64
/// volume ratios; not robust near degeneracy).
pub fn barycentric(v: [Vec3; 4], p: Vec3) -> [f64; 4] {
    let total = orient3d_fast(v[0], v[1], v[2], v[3]);
    if total == 0.0 {
        return [f64::NAN; 4];
    }
    // Weight of corner i is the volume of the tet with corner i replaced by p.
    let w0 = orient3d_fast(p, v[1], v[2], v[3]) / total;
    let w1 = orient3d_fast(v[0], p, v[2], v[3]) / total;
    let w2 = orient3d_fast(v[0], v[1], p, v[3]) / total;
    let w3 = orient3d_fast(v[0], v[1], v[2], p) / total;
    [w0, w1, w2, w3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn cube_corners() -> Vec<Vec3> {
        let mut v = Vec::new();
        for i in 0..8 {
            v.push(Vec3::new(
                (i & 1) as f64,
                ((i >> 1) & 1) as f64,
                ((i >> 2) & 1) as f64,
            ));
        }
        v
    }

    #[test]
    fn single_point() {
        let dt = Delaunay::new(&[Vec3::ZERO]).unwrap();
        assert_eq!(dt.real_tets().count(), 0);
        assert!(dt.num_alive_tets() >= 4);
    }

    #[test]
    fn cube_triangulation() {
        let dt = Delaunay::new(&cube_corners()).unwrap();
        // A cube triangulates into 5 or 6 tets; total real volume must be 1.
        let mut vol = 0.0;
        for (_, t) in dt.real_tets() {
            let v = t.verts.map(|i| dt.points()[i]);
            vol += orient3d_fast(v[0], v[1], v[2], v[3]) / 6.0;
        }
        assert!((vol - 1.0).abs() < 1e-12, "volume = {vol}");
        assert!(dt.verify_delaunay());
    }

    #[test]
    fn random_points_delaunay_property() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pts: Vec<Vec3> = (0..80)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        assert!(dt.verify_delaunay());
        // Hull volume equals the sum of tet volumes and every tet positively
        // oriented.
        for (_, t) in dt.real_tets() {
            let v = t.verts.map(|i| dt.points()[i]);
            assert!(orient3d_fast(v[0], v[1], v[2], v[3]) > 0.0);
        }
    }

    #[test]
    fn grid_points_cospherical() {
        // Regular grids are maximally degenerate (many cospherical point
        // sets); the exact predicates must still produce a valid result.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    pts.push(Vec3::new(i as f64, j as f64, k as f64));
                }
            }
        }
        let dt = Delaunay::new(&pts).unwrap();
        let mut vol = 0.0;
        for (_, t) in dt.real_tets() {
            let v = t.verts.map(|i| dt.points()[i]);
            let o = orient3d_fast(v[0], v[1], v[2], v[3]);
            assert!(o > 0.0);
            vol += o / 6.0;
        }
        assert!((vol - 27.0).abs() < 1e-9, "volume = {vol}");
    }

    #[test]
    fn duplicates_are_canonicalized() {
        let mut pts = cube_corners();
        pts.push(pts[3]);
        pts.push(pts[0]);
        let dt = Delaunay::new(&pts).unwrap();
        assert_eq!(dt.canonical_index(8), 3);
        assert_eq!(dt.canonical_index(9), 0);
        assert_eq!(dt.canonical_index(2), 2);
        assert!(dt.verify_delaunay());
    }

    #[test]
    fn locate_and_barycentric() {
        let pts = cube_corners();
        let dt = Delaunay::new(&pts).unwrap();
        let q = Vec3::new(0.3, 0.4, 0.5);
        let t = dt.locate(q, 0).unwrap();
        let w = dt.barycentric(t, q);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x >= -1e-12));
        // Reconstruct q from the weights.
        let verts = dt.tet(t).verts;
        let mut rec = Vec3::ZERO;
        for (wi, vi) in w.iter().zip(verts.iter()) {
            rec += *wi * dt.points()[*vi];
        }
        assert!(rec.dist(q) < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pts: Vec<Vec3> = (0..40)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let dt = Delaunay::new(&pts).unwrap();
        for (id, t) in dt.tets() {
            for (i, nb) in t.neighbors.iter().enumerate() {
                if let Some(nb) = *nb {
                    assert!(dt.tet(nb).alive, "dead neighbor");
                    assert!(
                        dt.tet(nb).neighbors.contains(&Some(id)),
                        "asymmetric adjacency"
                    );
                    // Shared face vertices must match.
                    let mut face: Vec<usize> = FACES[i].iter().map(|&k| t.verts[k]).collect();
                    face.sort_unstable();
                    let mut other: Vec<usize> = dt.tet(nb).verts.to_vec();
                    other.sort_unstable();
                    assert!(face.iter().all(|v| other.contains(v)));
                }
            }
        }
    }
}
