//! Adaptive robust predicates `orient3d` and `insphere`.
//!
//! Each predicate first evaluates the determinant in plain f64 alongside a
//! *permanent* (the same computation with every subtraction replaced by an
//! addition of absolute values). If the magnitude of the determinant exceeds
//! a forward-error bound proportional to the permanent, the f64 sign is
//! provably correct and is returned; otherwise we fall back to an exact
//! evaluation with expansion arithmetic ([`crate::expansion`]).
//!
//! Sign conventions follow Shewchuk:
//!
//! * `orient3d(a, b, c, d) > 0` iff `d` lies *below* the plane through
//!   `a, b, c`, where below means the side from which `a, b, c` appear in
//!   counterclockwise order.
//! * `insphere(a, b, c, d, e) > 0` iff `e` lies inside the circumsphere of
//!   the tetrahedron `(a, b, c, d)`, **assuming** `orient3d(a,b,c,d) > 0`.
//!   (For negatively oriented tetrahedra the sign flips.)

use crate::expansion::{two_diff, Expansion};
use crate::vec3::Vec3;

/// Counters for the adaptive-stage dispatch (how often each precision
/// level resolved a predicate). Useful for tests and tuning; counting is
/// relaxed-atomic and effectively free.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static FILTER: AtomicU64 = AtomicU64::new(0);
    pub static EXACT_DIFF: AtomicU64 = AtomicU64::new(0);
    pub static FULL_EXACT: AtomicU64 = AtomicU64::new(0);

    pub fn reset() {
        FILTER.store(0, Ordering::Relaxed);
        EXACT_DIFF.store(0, Ordering::Relaxed);
        FULL_EXACT.store(0, Ordering::Relaxed);
    }

    /// `(filter, exact-diff shortcut, full exact)` counts.
    pub fn snapshot() -> (u64, u64, u64) {
        (
            FILTER.load(Ordering::Relaxed),
            EXACT_DIFF.load(Ordering::Relaxed),
            FULL_EXACT.load(Ordering::Relaxed),
        )
    }

    #[inline]
    pub(super) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// True when `x = fl(a - b)` is the exact difference (two_diff tail is
/// zero) — common for mesh coordinates on structured or rational grids.
#[inline]
fn diff_is_exact(a: f64, b: f64) -> bool {
    two_diff(a, b).1 == 0.0
}

/// Machine epsilon for the error bounds: 2^-53 (half an ulp at 1.0).
const EPS: f64 = 1.1102230246251565e-16;

/// Forward-error coefficient for the 3x3 orientation determinant.
const O3D_ERRBOUND: f64 = (7.0 + 56.0 * EPS) * EPS;

/// Forward-error coefficient for the 4x4 insphere determinant.
const ISP_ERRBOUND: f64 = (16.0 + 224.0 * EPS) * EPS;

/// Qualitative result of an orientation test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    Negative,
    Zero,
    Positive,
}

impl Orientation {
    fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Less => Orientation::Negative,
            std::cmp::Ordering::Equal => Orientation::Zero,
            std::cmp::Ordering::Greater => Orientation::Positive,
        }
    }
}

/// Non-robust f64 orientation determinant (used where speed matters and the
/// caller tolerates sign errors near degeneracy, e.g. quality metrics).
#[inline]
pub fn orient3d_fast(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let adz = a.z - d.z;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let bdz = b.z - d.z;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let cdz = c.z - d.z;
    adx * (bdy * cdz - bdz * cdy) + ady * (bdz * cdx - bdx * cdz) + adz * (bdx * cdy - bdy * cdx)
}

/// Robust orientation test; the returned sign is exact.
pub fn orient3d(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Orientation {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let adz = a.z - d.z;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let bdz = b.z - d.z;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let cdz = c.z - d.z;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        stats::bump(&stats::FILTER);
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    // Adaptive stage (Shewchuk's structure): when every coordinate
    // difference is exactly representable — the common case for mesh
    // coordinates — the determinant of the *differences* is the true
    // determinant, and single-component expansions evaluate it exactly at
    // a fraction of the full-precision cost.
    let diffs_exact = diff_is_exact(a.x, d.x)
        && diff_is_exact(a.y, d.y)
        && diff_is_exact(a.z, d.z)
        && diff_is_exact(b.x, d.x)
        && diff_is_exact(b.y, d.y)
        && diff_is_exact(b.z, d.z)
        && diff_is_exact(c.x, d.x)
        && diff_is_exact(c.y, d.y)
        && diff_is_exact(c.z, d.z);
    if diffs_exact {
        stats::bump(&stats::EXACT_DIFF);
        let e = Expansion::from_f64;
        let m1 = e(bdy).mul(&e(cdz)).sub(&e(bdz).mul(&e(cdy)));
        let m2 = e(bdz).mul(&e(cdx)).sub(&e(bdx).mul(&e(cdz)));
        let m3 = e(bdx).mul(&e(cdy)).sub(&e(bdy).mul(&e(cdx)));
        let sign = e(adx)
            .mul(&m1)
            .add(&e(ady).mul(&m2))
            .add(&e(adz).mul(&m3))
            .sign();
        return Orientation::from_sign(sign);
    }
    stats::bump(&stats::FULL_EXACT);
    Orientation::from_sign(orient3d_exact_sign(a, b, c, d))
}

fn orient3d_exact_sign(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> i32 {
    let adx = Expansion::from_diff(a.x, d.x);
    let ady = Expansion::from_diff(a.y, d.y);
    let adz = Expansion::from_diff(a.z, d.z);
    let bdx = Expansion::from_diff(b.x, d.x);
    let bdy = Expansion::from_diff(b.y, d.y);
    let bdz = Expansion::from_diff(b.z, d.z);
    let cdx = Expansion::from_diff(c.x, d.x);
    let cdy = Expansion::from_diff(c.y, d.y);
    let cdz = Expansion::from_diff(c.z, d.z);

    let m1 = bdy.mul(&cdz).sub(&bdz.mul(&cdy));
    let m2 = bdz.mul(&cdx).sub(&bdx.mul(&cdz));
    let m3 = bdx.mul(&cdy).sub(&bdy.mul(&cdx));
    adx.mul(&m1).add(&ady.mul(&m2)).add(&adz.mul(&m3)).sign()
}

/// Robust insphere test; the returned sign is exact.
///
/// Positive means `e` is strictly inside the circumsphere of the positively
/// oriented tetrahedron `(a, b, c, d)`.
pub fn insphere(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> Orientation {
    let aex = a.x - e.x;
    let aey = a.y - e.y;
    let aez = a.z - e.z;
    let bex = b.x - e.x;
    let bey = b.y - e.y;
    let bez = b.z - e.z;
    let cex = c.x - e.x;
    let cey = c.y - e.y;
    let cez = c.z - e.z;
    let dex = d.x - e.x;
    let dey = d.y - e.y;
    let dez = d.z - e.z;

    // Pairwise 2x2 minors in the (x, y) coordinates, with their permanents.
    let ab = aex * bey - bex * aey;
    let ab_p = (aex * bey).abs() + (bex * aey).abs();
    let bc = bex * cey - cex * bey;
    let bc_p = (bex * cey).abs() + (cex * bey).abs();
    let cd = cex * dey - dex * cey;
    let cd_p = (cex * dey).abs() + (dex * cey).abs();
    let da = dex * aey - aex * dey;
    let da_p = (dex * aey).abs() + (aex * dey).abs();
    let ac = aex * cey - cex * aey;
    let ac_p = (aex * cey).abs() + (cex * aey).abs();
    let bd = bex * dey - dex * bey;
    let bd_p = (bex * dey).abs() + (dex * bey).abs();

    // 3x3 minors (xyz) and their permanents.
    let abc = aez * bc - bez * ac + cez * ab;
    let abc_p = aez.abs() * bc_p + bez.abs() * ac_p + cez.abs() * ab_p;
    let bcd = bez * cd - cez * bd + dez * bc;
    let bcd_p = bez.abs() * cd_p + cez.abs() * bd_p + dez.abs() * bc_p;
    let cda = cez * da + dez * ac + aez * cd;
    let cda_p = cez.abs() * da_p + dez.abs() * ac_p + aez.abs() * cd_p;
    let dab = dez * ab + aez * bd + bez * da;
    let dab_p = dez.abs() * ab_p + aez.abs() * bd_p + bez.abs() * da_p;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);
    let permanent = dlift * abc_p + clift * dab_p + blift * cda_p + alift * bcd_p;
    let errbound = ISP_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        stats::bump(&stats::FILTER);
        return Orientation::from_sign(if det > 0.0 { 1 } else { -1 });
    }
    let diffs_exact = [a, b, c, d]
        .iter()
        .all(|p| diff_is_exact(p.x, e.x) && diff_is_exact(p.y, e.y) && diff_is_exact(p.z, e.z));
    if diffs_exact {
        stats::bump(&stats::EXACT_DIFF);
        return Orientation::from_sign(insphere_from_diffs(
            [aex, aey, aez],
            [bex, bey, bez],
            [cex, cey, cez],
            [dex, dey, dez],
        ));
    }
    stats::bump(&stats::FULL_EXACT);
    Orientation::from_sign(insphere_exact_sign(a, b, c, d, e))
}

/// Exact insphere determinant from already-exact coordinate differences
/// (single-component expansion inputs: much shorter intermediate
/// expansions than the general exact path).
fn insphere_from_diffs(ad: [f64; 3], bd: [f64; 3], cd: [f64; 3], dd: [f64; 3]) -> i32 {
    let e = Expansion::from_f64;
    let (aex, aey, aez) = (e(ad[0]), e(ad[1]), e(ad[2]));
    let (bex, bey, bez) = (e(bd[0]), e(bd[1]), e(bd[2]));
    let (cex, cey, cez) = (e(cd[0]), e(cd[1]), e(cd[2]));
    let (dex, dey, dez) = (e(dd[0]), e(dd[1]), e(dd[2]));

    let xy2 = |px: &Expansion, py: &Expansion, qx: &Expansion, qy: &Expansion| {
        px.mul(qy).sub(&qx.mul(py))
    };
    let ab = xy2(&aex, &aey, &bex, &bey);
    let bc = xy2(&bex, &bey, &cex, &cey);
    let cd_ = xy2(&cex, &cey, &dex, &dey);
    let da = xy2(&dex, &dey, &aex, &aey);
    let ac = xy2(&aex, &aey, &cex, &cey);
    let bd_ = xy2(&bex, &bey, &dex, &dey);

    let abc = aez.mul(&bc).sub(&bez.mul(&ac)).add(&cez.mul(&ab));
    let bcd = bez.mul(&cd_).sub(&cez.mul(&bd_)).add(&dez.mul(&bc));
    let cda = cez.mul(&da).add(&dez.mul(&ac)).add(&aez.mul(&cd_));
    let dab = dez.mul(&ab).add(&aez.mul(&bd_)).add(&bez.mul(&da));

    let lift = |x: &Expansion, y: &Expansion, z: &Expansion| x.mul(x).add(&y.mul(y)).add(&z.mul(z));
    let alift = lift(&aex, &aey, &aez);
    let blift = lift(&bex, &bey, &bez);
    let clift = lift(&cex, &cey, &cez);
    let dlift = lift(&dex, &dey, &dez);

    dlift
        .mul(&abc)
        .sub(&clift.mul(&dab))
        .add(&blift.mul(&cda))
        .sub(&alift.mul(&bcd))
        .sign()
}

fn insphere_exact_sign(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> i32 {
    let ex = |p: Vec3| {
        (
            Expansion::from_diff(p.x, e.x),
            Expansion::from_diff(p.y, e.y),
            Expansion::from_diff(p.z, e.z),
        )
    };
    let (aex, aey, aez) = ex(a);
    let (bex, bey, bez) = ex(b);
    let (cex, cey, cez) = ex(c);
    let (dex, dey, dez) = ex(d);

    let xy2 = |px: &Expansion, py: &Expansion, qx: &Expansion, qy: &Expansion| {
        px.mul(qy).sub(&qx.mul(py))
    };
    let ab = xy2(&aex, &aey, &bex, &bey);
    let bc = xy2(&bex, &bey, &cex, &cey);
    let cd = xy2(&cex, &cey, &dex, &dey);
    let da = xy2(&dex, &dey, &aex, &aey);
    let ac = xy2(&aex, &aey, &cex, &cey);
    let bd = xy2(&bex, &bey, &dex, &dey);

    let abc = aez.mul(&bc).sub(&bez.mul(&ac)).add(&cez.mul(&ab));
    let bcd = bez.mul(&cd).sub(&cez.mul(&bd)).add(&dez.mul(&bc));
    let cda = cez.mul(&da).add(&dez.mul(&ac)).add(&aez.mul(&cd));
    let dab = dez.mul(&ab).add(&aez.mul(&bd)).add(&bez.mul(&da));

    let lift = |x: &Expansion, y: &Expansion, z: &Expansion| x.mul(x).add(&y.mul(y)).add(&z.mul(z));
    let alift = lift(&aex, &aey, &aez);
    let blift = lift(&bex, &bey, &bez);
    let clift = lift(&cex, &cey, &cez);
    let dlift = lift(&dex, &dey, &dez);

    dlift
        .mul(&abc)
        .sub(&clift.mul(&dab))
        .add(&blift.mul(&cda))
        .sub(&alift.mul(&bcd))
        .sign()
}

/// Circumcenter and squared circumradius of a tetrahedron (f64 arithmetic;
/// returns `None` for (near-)degenerate tetrahedra).
pub fn circumsphere(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Option<(Vec3, f64)> {
    let ba = b - a;
    let ca = c - a;
    let da = d - a;
    let denom = 2.0 * ba.dot(ca.cross(da));
    if denom.abs() < 1e-30 {
        return None;
    }
    let num = ba.norm2() * ca.cross(da) + ca.norm2() * da.cross(ba) + da.norm2() * ba.cross(ca);
    let center = a + num / denom;
    let r2 = center.dist2(a);
    if r2.is_finite() {
        Some((center, r2))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    const B: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    const C: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    #[test]
    fn orient3d_basic() {
        // With d *below* the plane z=0 (i.e. z < 0), a,b,c are CCW seen from
        // below... verify both sides are consistent and opposite.
        let up = Vec3::new(0.0, 0.0, 1.0);
        let dn = Vec3::new(0.0, 0.0, -1.0);
        let s_up = orient3d(A, B, C, up);
        let s_dn = orient3d(A, B, C, dn);
        assert_ne!(s_up, s_dn);
        assert_ne!(s_up, Orientation::Zero);
        // Shewchuk convention: (0,0,1) is *above* the CCW plane abc, so the
        // determinant for d above is negative.
        assert_eq!(s_up, Orientation::Negative);
        assert_eq!(s_dn, Orientation::Positive);
    }

    #[test]
    fn orient3d_coplanar() {
        let d = Vec3::new(0.3, 0.4, 0.0);
        assert_eq!(orient3d(A, B, C, d), Orientation::Zero);
    }

    #[test]
    fn orient3d_near_degenerate_exact() {
        // d is displaced off the plane by far less than f64 evaluation noise
        // would resolve at this scale.
        let scale = 1e10;
        let a = Vec3::new(scale, scale, 0.0);
        let b = Vec3::new(scale + 1.0, scale, 0.0);
        let c = Vec3::new(scale, scale + 1.0, 0.0);
        let d_above = Vec3::new(scale + 0.3, scale + 0.3, 1e-12);
        let d_on = Vec3::new(scale + 0.3, scale + 0.3, 0.0);
        assert_eq!(orient3d(a, b, c, d_above), Orientation::Negative);
        assert_eq!(orient3d(a, b, c, d_on), Orientation::Zero);
    }

    #[test]
    fn insphere_basic() {
        let d = Vec3::new(0.0, 0.0, -1.0); // positively oriented (a,b,c,d)
        assert_eq!(orient3d(A, B, C, d), Orientation::Positive);
        // Circumsphere of this tet contains the origin-ish interior point.
        let inside = Vec3::new(0.25, 0.25, -0.25);
        let outside = Vec3::new(10.0, 10.0, 10.0);
        assert_eq!(insphere(A, B, C, d, inside), Orientation::Positive);
        assert_eq!(insphere(A, B, C, d, outside), Orientation::Negative);
    }

    #[test]
    fn insphere_cospherical() {
        // Unit sphere through 4 points; 5th point also on the sphere.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(-1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let e = Vec3::new(0.0, -1.0, 0.0);
        assert_eq!(insphere(a, b, c, d, e), Orientation::Zero);
    }

    #[test]
    fn insphere_sign_flips_with_orientation() {
        let d = Vec3::new(0.0, 0.0, -1.0);
        let p = Vec3::new(0.25, 0.25, -0.25);
        let s1 = insphere(A, B, C, d, p);
        // Swapping two vertices flips the tetrahedron orientation and must
        // flip the insphere sign.
        let s2 = insphere(B, A, C, d, p);
        assert_ne!(s1, s2);
    }

    #[test]
    fn circumsphere_regular() {
        let d = Vec3::new(0.0, 0.0, 1.0);
        let (ctr, r2) = circumsphere(A, B, C, d).unwrap();
        for p in [A, B, C, d] {
            assert!((ctr.dist2(p) - r2).abs() < 1e-12);
        }
        // Degenerate: coplanar points have no circumsphere.
        assert!(circumsphere(A, B, C, Vec3::new(0.5, 0.5, 0.0)).is_none());
    }

    #[test]
    fn consistency_fast_vs_robust() {
        // On well-separated points the fast determinant agrees with the
        // robust sign.
        let pts = [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(1.5, -0.2, 0.4),
            Vec3::new(-0.3, 1.1, 0.9),
            Vec3::new(0.6, 0.7, -1.2),
        ];
        let f = orient3d_fast(pts[0], pts[1], pts[2], pts[3]);
        let r = orient3d(pts[0], pts[1], pts[2], pts[3]);
        assert_eq!(r, Orientation::from_sign(if f > 0.0 { 1 } else { -1 }));
    }
}
