//! Floating-point expansion arithmetic after Shewchuk.
//!
//! An *expansion* represents a real number exactly as a sum of f64
//! components, ordered by increasing magnitude and pairwise nonoverlapping.
//! All operations here are exact: no information is lost, so determinant
//! signs computed through expansions are the true signs. This is the same
//! machinery that backs the "geometric predicates (4,000 lines of C)"
//! dependency cited by the paper [Shewchuk 1997].
//!
//! The primitives (`two_sum`, `two_product`, `fast_expansion_sum_zeroelim`,
//! `scale_expansion_zeroelim`) follow the classical algorithms; the
//! [`Expansion`] type composes them into a small exact-arithmetic calculator
//! used by the exact fallbacks in [`crate::predicates`].

/// Error-free transform: returns `(x, y)` with `x = fl(a+b)` and `a+b = x+y`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// `two_sum` specialization valid when `|a| >= |b|`.
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    (x, b - bvirt)
}

/// Error-free transform for subtraction: `a - b = x + y` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// Veltkamp splitter for dekker-style products: 2^27 + 1.
const SPLITTER: f64 = 134_217_729.0;

/// Split `a` into high and low halves whose product terms are exact.
#[inline]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    let alo = a - ahi;
    (ahi, alo)
}

/// Error-free transform for multiplication: `a * b = x + y` exactly.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// Sum two expansions (given as slices of nonoverlapping components in
/// increasing-magnitude order), eliminating zero components.
pub fn fast_expansion_sum_zeroelim(e: &[f64], f: &[f64], h: &mut Vec<f64>) {
    h.clear();
    if e.is_empty() {
        h.extend_from_slice(f);
        h.retain(|&c| c != 0.0);
        return;
    }
    if f.is_empty() {
        h.extend_from_slice(e);
        h.retain(|&c| c != 0.0);
        return;
    }

    let mut eindex = 0usize;
    let mut findex = 0usize;
    let mut enow = e[0];
    let mut fnow = f[0];

    let mut q;
    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        eindex += 1;
    } else {
        q = fnow;
        findex += 1;
    }

    let mut hh;
    if eindex < e.len() && findex < f.len() {
        enow = e[eindex];
        fnow = f[findex];
        loop {
            let qnew;
            if (fnow > enow) == (fnow > -enow) {
                let (s, e_) = fast_two_sum(enow, q);
                qnew = s;
                hh = e_;
                eindex += 1;
            } else {
                let (s, e_) = fast_two_sum(fnow, q);
                qnew = s;
                hh = e_;
                findex += 1;
            }
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
            if eindex >= e.len() || findex >= f.len() {
                break;
            }
            enow = e[eindex];
            fnow = f[findex];
        }
    }
    while eindex < e.len() {
        let (s, e_) = two_sum(q, e[eindex]);
        q = s;
        hh = e_;
        eindex += 1;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    while findex < f.len() {
        let (s, e_) = two_sum(q, f[findex]);
        q = s;
        hh = e_;
        findex += 1;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
}

/// Multiply expansion `e` by scalar `b`, eliminating zero components.
pub fn scale_expansion_zeroelim(e: &[f64], b: f64, h: &mut Vec<f64>) {
    h.clear();
    if e.is_empty() || b == 0.0 {
        h.push(0.0);
        return;
    }
    let (bhi, blo) = split(b);

    let (mut q, hh0) = {
        let x = e[0] * b;
        let (ehi, elo) = split(e[0]);
        let err1 = x - ehi * bhi;
        let err2 = err1 - elo * bhi;
        let err3 = err2 - ehi * blo;
        (x, elo * blo - err3)
    };
    if hh0 != 0.0 {
        h.push(hh0);
    }
    for &enow in &e[1..] {
        let (product1, product0) = {
            let x = enow * b;
            let (ehi, elo) = split(enow);
            let err1 = x - ehi * bhi;
            let err2 = err1 - elo * bhi;
            let err3 = err2 - ehi * blo;
            (x, elo * blo - err3)
        };
        let (sum, hh) = two_sum(q, product0);
        if hh != 0.0 {
            h.push(hh);
        }
        let (qnew, hh) = fast_two_sum(product1, sum);
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
}

/// An exact multi-component floating-point number.
///
/// Components are stored in increasing-magnitude order and are pairwise
/// nonoverlapping, so `self.components.iter().sum()` loses precision but
/// the *sign* of the expansion is the sign of its largest (last) component.
#[derive(Clone, Debug, Default)]
pub struct Expansion {
    components: Vec<f64>,
}

impl Expansion {
    /// The exact zero.
    pub fn zero() -> Self {
        Expansion {
            components: Vec::new(),
        }
    }

    /// An expansion holding the single component `v`.
    pub fn from_f64(v: f64) -> Self {
        if v == 0.0 {
            Self::zero()
        } else {
            Expansion {
                components: vec![v],
            }
        }
    }

    /// Exact product of two f64 values.
    pub fn from_product(a: f64, b: f64) -> Self {
        let (x, y) = two_product(a, b);
        let mut components = Vec::with_capacity(2);
        if y != 0.0 {
            components.push(y);
        }
        if x != 0.0 {
            components.push(x);
        }
        Expansion { components }
    }

    /// Exact difference of two f64 values.
    pub fn from_diff(a: f64, b: f64) -> Self {
        let (x, y) = two_diff(a, b);
        let mut components = Vec::with_capacity(2);
        if y != 0.0 {
            components.push(y);
        }
        if x != 0.0 {
            components.push(x);
        }
        Expansion { components }
    }

    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Exact sum.
    pub fn add(&self, other: &Expansion) -> Expansion {
        let mut h = Vec::with_capacity(self.components.len() + other.components.len());
        fast_expansion_sum_zeroelim(&self.components, &other.components, &mut h);
        if h.len() == 1 && h[0] == 0.0 {
            h.clear();
        }
        Expansion { components: h }
    }

    /// Exact difference.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> Expansion {
        Expansion {
            components: self.components.iter().map(|c| -c).collect(),
        }
    }

    /// Exact product with a scalar.
    pub fn scale(&self, b: f64) -> Expansion {
        if b == 0.0 || self.components.is_empty() {
            return Self::zero();
        }
        let mut h = Vec::with_capacity(2 * self.components.len());
        scale_expansion_zeroelim(&self.components, b, &mut h);
        if h.len() == 1 && h[0] == 0.0 {
            h.clear();
        }
        Expansion { components: h }
    }

    /// Exact product of two expansions (distributes `scale` over the
    /// components of the shorter operand and sums the partial products).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let (small, big) = if self.components.len() <= other.components.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut acc = Expansion::zero();
        for &c in &small.components {
            acc = acc.add(&big.scale(c));
        }
        acc
    }

    /// Approximate value (correct to within one ulp of the exact value).
    pub fn estimate(&self) -> f64 {
        self.components.iter().sum()
    }

    /// The exact sign: -1, 0, or +1.
    pub fn sign(&self) -> i32 {
        match self.components.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(&c) if c < 0.0 => -1,
            _ => 0,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.sign() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact() {
        let (x, y) = two_sum(1e16, 1.0);
        // x + y must equal the true sum exactly.
        assert_eq!(x, 1e16); // 1.0 is below the ulp of 1e16 at this magnitude? No: ulp(1e16)=2. Round to even keeps 1e16.
        assert_eq!(y, 1.0);
    }

    #[test]
    fn two_product_exact() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-30);
        let (x, y) = two_product(a, b);
        // a*b = 1 + 2^-29 + 2^-60; x misses the 2^-60 tail.
        assert_eq!(y, 2f64.powi(-60));
        assert_eq!(x, 1.0 + 2f64.powi(-29));
    }

    #[test]
    fn expansion_add_sub() {
        let a = Expansion::from_f64(1e16);
        let b = Expansion::from_f64(1.0);
        let s = a.add(&b);
        assert_eq!(s.estimate(), 1e16 + 1.0);
        let d = s.sub(&a);
        assert_eq!(d.estimate(), 1.0);
        assert_eq!(d.sign(), 1);
        let z = d.sub(&b);
        assert!(z.is_zero());
    }

    #[test]
    fn expansion_mul() {
        let a = Expansion::from_f64(1.0 + 2f64.powi(-40));
        let sq = a.mul(&a);
        // (1+e)^2 = 1 + 2e + e^2 exactly.
        let expect = Expansion::from_f64(1.0)
            .add(&Expansion::from_f64(2f64.powi(-39)))
            .add(&Expansion::from_f64(2f64.powi(-80)));
        assert!(sq.sub(&expect).is_zero());
    }

    #[test]
    fn sign_of_tiny_difference() {
        // (a*b - c*d) where the difference is far below f64 rounding of
        // the naive computation.
        let a = 1.0 + 2f64.powi(-52);
        let naive = a * a - (1.0 + 2f64.powi(-51));
        // naive is 0 in f64 arithmetic (a*a rounds to 1+2^-51)...
        assert_eq!(naive, 0.0);
        // ...but the exact value is +2^-104.
        let exact = Expansion::from_product(a, a).sub(&Expansion::from_f64(1.0 + 2f64.powi(-51)));
        assert_eq!(exact.sign(), 1);
        assert_eq!(exact.estimate(), 2f64.powi(-104));
    }

    #[test]
    fn from_product_zero() {
        assert!(Expansion::from_product(0.0, 5.0).is_zero());
        assert!(Expansion::from_f64(0.0).is_zero());
        assert_eq!(Expansion::zero().estimate(), 0.0);
    }
}
