//! Minimal 3-component vector used throughout the workspace.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point or vector in 3-space.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn dist2(self, o: Vec3) -> f64 {
        (self - o).norm2()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm2(), 25.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn min_max_index() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], 3.0);
        let mut c = a;
        c[1] = 9.0;
        assert_eq!(c.y, 9.0);
    }

    #[test]
    fn distances() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.dist(b), 3.0);
        assert_eq!(a.dist2(b), 9.0);
    }
}
