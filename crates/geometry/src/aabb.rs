//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;

/// An axis-aligned box, possibly empty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// An empty box (min = +inf, max = -inf); grows to fit on `expand`.
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Smallest box containing all `points` (empty box for no points).
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Grow to include `p`.
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grow to include another box.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths (zero vector for an empty box).
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Length of the space diagonal.
    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }

    /// Closed containment test.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Box inflated by `pad` on every side.
    pub fn inflated(&self, pad: f64) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(pad),
            max: self.max + Vec3::splat(pad),
        }
    }

    /// Index (0..3) of the longest axis.
    pub fn longest_axis(&self) -> usize {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let b = Aabb::from_points([
            Vec3::new(0.0, 1.0, 2.0),
            Vec3::new(3.0, -1.0, 0.0),
            Vec3::new(1.0, 0.5, 5.0),
        ]);
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(3.0, 1.0, 5.0));
        assert!(b.contains(Vec3::new(1.0, 0.0, 1.0)));
        assert!(!b.contains(Vec3::new(4.0, 0.0, 1.0)));
        assert_eq!(b.longest_axis(), 2);
        assert_eq!(b.center(), Vec3::new(1.5, 0.0, 2.5));
    }

    #[test]
    fn empty_box() {
        let b = Aabb::empty();
        assert!(b.is_empty());
        assert_eq!(b.extent(), Vec3::ZERO);
        assert!(!b.contains(Vec3::ZERO));
        let mut b2 = b;
        b2.expand(Vec3::ZERO);
        assert!(!b2.is_empty());
        assert!(b2.contains(Vec3::ZERO));
    }

    #[test]
    fn inflate_union() {
        let a = Aabb::from_points([Vec3::ZERO, Vec3::splat(1.0)]);
        let b = Aabb::from_points([Vec3::splat(2.0), Vec3::splat(3.0)]);
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(1.5)));
        let i = a.inflated(0.5);
        assert!(i.contains(Vec3::splat(-0.25)));
        assert_eq!(i.diagonal(), (3.0f64 * 4.0).sqrt());
    }
}
