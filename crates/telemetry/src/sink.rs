//! Pluggable report sinks: human-readable table, JSON-lines, no-op.

use crate::report::Report;
use std::io::{self, Write};

/// Destination for a finished [`Report`].
pub trait Sink {
    /// Write one finished report to the destination.
    fn emit(&mut self, report: &Report) -> io::Result<()>;
}

/// Renders [`Report::to_table`] to any writer (typically stdout).
pub struct TableSink<W: Write>(pub W);

impl<W: Write> Sink for TableSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        self.0.write_all(report.to_table().as_bytes())
    }
}

/// Writes [`Report::to_json_lines`] to any writer (typically a
/// `BENCH_*.jsonl` file).
pub struct JsonLinesSink<W: Write>(pub W);

impl<W: Write> Sink for JsonLinesSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        self.0.write_all(report.to_json_lines().as_bytes())
    }
}

/// Discards the report.
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&mut self, _report: &Report) -> io::Result<()> {
        Ok(())
    }
}

/// Sink selected by the environment, for the bench binaries:
///
/// - `PMG_TELEMETRY=off` (or unset) → [`NoopSink`];
/// - `PMG_TELEMETRY=table` → [`TableSink`] on stdout;
/// - `PMG_TELEMETRY=json` → [`JsonLinesSink`] on the file named by
///   `PMG_TELEMETRY_FILE` (stdout when unset).
///
/// Callers that want collection on should also call
/// [`crate::set_enabled`]`(true)` when this returns a non-noop sink.
pub fn sink_from_env() -> io::Result<Box<dyn Sink>> {
    match std::env::var("PMG_TELEMETRY").as_deref() {
        Ok("table") => Ok(Box::new(TableSink(io::stdout()))),
        Ok("json") => match std::env::var("PMG_TELEMETRY_FILE") {
            Ok(path) => Ok(Box::new(JsonLinesSink(std::fs::File::create(path)?))),
            Err(_) => Ok(Box::new(JsonLinesSink(io::stdout()))),
        },
        _ => Ok(Box::new(NoopSink)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseRecord;

    fn tiny_report() -> Report {
        Report {
            phases: vec![PhaseRecord {
                path: "solve".into(),
                total_s: 0.5,
                count: 2,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn table_sink_writes_table() {
        let mut buf = Vec::new();
        TableSink(&mut buf).emit(&tiny_report()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("solve"));
        assert!(text.contains("count"));
    }

    #[test]
    fn json_sink_roundtrips() {
        let mut buf = Vec::new();
        JsonLinesSink(&mut buf).emit(&tiny_report()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(Report::from_json_lines(&text).unwrap(), tiny_report());
    }

    #[test]
    fn noop_sink_accepts_anything() {
        NoopSink.emit(&tiny_report()).unwrap();
    }
}
