//! Latency summaries: percentile estimation over recorded samples.
//!
//! The solver daemon records one sample per request per phase (queue,
//! setup, solve) and publishes p50/p90/p99 gauges from them at report
//! time. The estimator is the *nearest-rank on a sorted copy* definition
//! — deterministic, exact for the sample set (no streaming sketch), and
//! cheap at the sample counts a single daemon sees.

/// The quantiles the daemon publishes for every latency phase.
pub const SUMMARY_QUANTILES: [(u32, f64); 3] = [(50, 0.50), (90, 0.90), (99, 0.99)];

/// Nearest-rank percentile of `samples` (q in `[0, 1]`): the smallest
/// sample such that at least `q · n` samples are ≤ it. Returns `None`
/// for an empty slice. NaN samples sort last and are never selected
/// unless every sample is NaN.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let q = q.clamp(0.0, 1.0);
    // Nearest rank: ceil(q * n), 1-based; q = 0 maps to the minimum.
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1)])
}

/// Publish `p50`/`p90`/`p99` gauges for one latency phase under
/// `{prefix}_p{q}` (e.g. `serve/latency/solve_p99`), in seconds. Empty
/// sample sets publish nothing, so the gauges only exist once at least
/// one request has completed the phase.
pub fn publish_percentiles(prefix: &str, samples: &[f64]) {
    for (label, q) in SUMMARY_QUANTILES {
        if let Some(v) = percentile(samples, q) {
            crate::gauge_set(&format!("{prefix}_p{label}"), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_percentile() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.0], q), Some(7.0));
        }
    }

    #[test]
    fn nearest_rank_definition() {
        // Classic nearest-rank worked example: 5 sorted samples.
        let s = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&s, 0.05), Some(15.0));
        assert_eq!(percentile(&s, 0.30), Some(20.0));
        assert_eq!(percentile(&s, 0.40), Some(20.0));
        assert_eq!(percentile(&s, 0.50), Some(35.0));
        assert_eq!(percentile(&s, 1.00), Some(50.0));
    }

    #[test]
    fn order_does_not_matter() {
        let shuffled = [40.0, 15.0, 50.0, 20.0, 35.0];
        assert_eq!(percentile(&shuffled, 0.50), Some(35.0));
        assert_eq!(percentile(&shuffled, 0.99), Some(50.0));
    }

    #[test]
    fn p99_needs_a_hundred_samples_to_leave_the_max() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.50), Some(50.0));
    }
}
