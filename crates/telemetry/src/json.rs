//! Minimal dependency-free JSON: a writer and a parser shared by the
//! JSON-lines sink and the `pmg-serve` wire protocol.
//!
//! Numbers round-trip **exactly**: [`write_num`] uses Rust's
//! shortest-round-trip `f64` `Display`, so a solution vector serialized
//! here and parsed back is bitwise identical — the property the solver
//! daemon's "same bits as an offline solve" guarantee rests on.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also what non-finite numbers serialize to).
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number; always held as `f64`.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object, in insertion order (duplicate keys keep the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number to `out`. Rust's shortest-round-trip `Display`
/// for `f64` guarantees `parse` recovers the identical value; non-finite
/// values (not representable in JSON) are written as `null`.
pub fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append an integer to `out` (no exponent form, exact at any magnitude).
pub fn write_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Parse one JSON document (used per line by the JSON-lines reader).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume a run of unescaped bytes at once.
                        let start = *pos;
                        while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                        );
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_string_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}f µ");
        let v = parse(&out).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\nd\te\u{1}f µ".into()));
    }

    #[test]
    fn roundtrip_numbers_exact() {
        for x in [0.0, -1.5, 1.0 / 3.0, 6.02e23, 1e-300, f64::MAX] {
            let mut out = String::new();
            write_num(&mut out, x);
            assert_eq!(parse(&out).unwrap().as_f64().unwrap(), x, "{x}");
        }
        let mut out = String::new();
        write_num(&mut out, f64::NAN);
        assert_eq!(parse(&out).unwrap(), Value::Null);
    }

    #[test]
    fn parses_nested_object() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-3.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("e").unwrap(), &Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
