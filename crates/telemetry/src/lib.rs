//! Solver telemetry: hierarchical phase timers, typed counters/gauges/
//! series, and pluggable report sinks.
//!
//! The paper's entire evaluation (Figs. 10–13, Table 2) is per-phase
//! timing breakdowns — coarsening, remeshing, `R A Rᵀ`, smoother setup,
//! solve. This crate is the one place those breakdowns are recorded and
//! reported from, across every layer of the workspace.
//!
//! # Model
//!
//! Telemetry is a process-global registry (like `tracing`'s global
//! subscriber) so that instrumentation points deep inside the stack —
//! the MIS inside `coarsen_level`, the per-level smoother inside a
//! V-cycle — need no plumbed-through handle:
//!
//! - **Phases** are RAII scopes ([`scope`]) that nest via a thread-local
//!   path stack: opening `"mis"` inside `"coarsen"` inside `"setup"`
//!   records under `setup/coarsen/mis`. A parent's time is inclusive of
//!   its children.
//! - **Counters** ([`counter_add`]) are summed `u64`s (iterations, lost
//!   vertices); increments from any thread merge into one value.
//! - **Gauges** ([`gauge_set`]) are last-write-wins `f64`s (per-level
//!   rows/nnz, operator complexity).
//! - **Series** ([`series_set`] / [`series_push`]) are `f64` vectors
//!   (residual histories).
//! - The BSP machine model's per-phase statistics (`pmg-parallel`'s
//!   `PhaseStats`) bridge into the same [`Report`] as
//!   [`SimPhaseRecord`]s, so modeled time and wall time land in one
//!   artifact.
//!
//! Collection is **off by default**: every recording call first checks
//! one relaxed atomic and returns immediately when disabled — the no-op
//! path performs no allocation and takes no lock (asserted by the
//! `noop_alloc` test with a counting allocator). Enable with
//! [`set_enabled`], snapshot with [`snapshot`], and emit through a
//! [`Sink`]: human-readable table, JSON-lines (`BENCH_*.jsonl`-style
//! trajectories, round-trippable via [`Report::from_json_lines`]), or
//! no-op.
//!
//! The phase-name schema used by the solver stack is documented in
//! `docs/telemetry.md` (stable slash-hierarchical phase names, counter
//! families like `rap/plan_*` and `pool/*`, and the JSON-lines format)
//! and summarized in the repository README.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod json;
mod report;
mod sink;
pub mod stats;

pub use report::{PhaseRecord, Report, SimPhaseRecord};
pub use sink::{sink_from_env, JsonLinesSink, NoopSink, Sink, TableSink};

static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct State {
    /// Full slash-joined path → accumulated seconds and enter count.
    phases: BTreeMap<String, PhaseAccum>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
    labels: BTreeMap<String, String>,
}

#[derive(Clone, Copy, Default)]
struct PhaseAccum {
    total_s: f64,
    count: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

thread_local! {
    /// This thread's open-scope path, slash-joined ("setup/coarsen/mis").
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Turn collection on or off (off by default). Disabling does not clear
/// already-recorded data; use [`reset`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled. Call sites that must build a
/// scope name dynamically (e.g. `format!("level{n}")`) should check this
/// first — or use the [`scoped!`] macro, which does — so the no-op path
/// stays allocation-free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded phases, counters, gauges, series, and labels.
pub fn reset() {
    let mut s = state().lock().unwrap();
    *s = State::default();
}

/// RAII phase timer returned by [`scope`]; records on drop.
pub struct Scope {
    /// Length of the thread-local path before this scope pushed its name
    /// (`usize::MAX` when the scope is inactive).
    prev_len: usize,
    start: Instant,
}

impl Scope {
    const INACTIVE: usize = usize::MAX;
}

/// Open a nested timing scope. The name lands under the path of the
/// scopes currently open on this thread; drop the guard to record.
#[inline]
pub fn scope(name: &str) -> Scope {
    if !enabled() {
        // Instant::now() is unavoidable for the struct, but cheap (vDSO)
        // and allocation-free; the path stack is untouched.
        return Scope {
            prev_len: Scope::INACTIVE,
            start: Instant::now(),
        };
    }
    let prev_len = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        prev
    });
    Scope {
        prev_len,
        start: Instant::now(),
    }
}

/// [`scope`] for an owned (formatted) name. Prefer [`scoped!`], which
/// skips the formatting entirely when telemetry is disabled.
#[inline]
pub fn scope_owned(name: String) -> Scope {
    scope(&name)
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.prev_len == Scope::INACTIVE {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        PATH.with(|p| {
            let mut p = p.borrow_mut();
            {
                let path: &str = &p;
                let mut s = state().lock().unwrap();
                let acc = s.phases.entry(path.to_string()).or_default();
                acc.total_s += elapsed;
                acc.count += 1;
            }
            p.truncate(self.prev_len);
        });
    }
}

/// Open a scope with a formatted name, formatting only when telemetry is
/// enabled: `let _g = pmg_telemetry::scoped!("level{lvl}");`. The guard
/// is an `Option<Scope>`; keep it bound for the scope's extent.
#[macro_export]
macro_rules! scoped {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            ::std::option::Option::Some($crate::scope_owned(format!($($arg)*)))
        } else {
            ::std::option::Option::None
        }
    };
}

/// Add `delta` to the named counter (merged across threads).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut s = state().lock().unwrap();
    *s.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge (last write wins).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut s = state().lock().unwrap();
    s.gauges.insert(name.to_string(), value);
}

/// Replace the named series.
#[inline]
pub fn series_set(name: &str, values: Vec<f64>) {
    if !enabled() {
        return;
    }
    let mut s = state().lock().unwrap();
    s.series.insert(name.to_string(), values);
}

/// Append one value to the named series.
#[inline]
pub fn series_push(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut s = state().lock().unwrap();
    s.series.entry(name.to_string()).or_default().push(value);
}

/// Attach a free-form label to the report (run id, problem name, ...).
#[inline]
pub fn label(name: &str, value: &str) {
    if !enabled() {
        return;
    }
    let mut s = state().lock().unwrap();
    s.labels.insert(name.to_string(), value.to_string());
}

/// Snapshot everything recorded so far into a [`Report`]. Recording may
/// continue afterwards; the snapshot is a copy.
pub fn snapshot() -> Report {
    let s = state().lock().unwrap();
    Report {
        labels: s.labels.clone(),
        phases: s
            .phases
            .iter()
            .map(|(path, acc)| PhaseRecord {
                path: path.clone(),
                total_s: acc.total_s,
                count: acc.count,
            })
            .collect(),
        counters: s.counters.clone(),
        gauges: s.gauges.clone(),
        series: s.series.clone(),
        sim_phases: Vec::new(),
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Telemetry state is process-global; tests that enable/reset it must
    // not interleave.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _g = test_guard();
        reset();
        set_enabled(false);
        {
            let _a = scope("setup");
            counter_add("c", 5);
            gauge_set("g", 1.0);
            series_push("s", 2.0);
        }
        let r = snapshot();
        assert!(r.phases.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.series.is_empty());
    }

    #[test]
    fn scopes_nest_into_paths() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        {
            let _a = scope("setup");
            {
                let _b = scope("coarsen");
                let _c = scope("mis");
            }
            let _d = scope("rap");
        }
        {
            let _a = scope("setup");
            let _b = scope("coarsen");
        }
        set_enabled(false);
        let r = snapshot();
        let paths: Vec<&str> = r.phases.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["setup", "setup/coarsen", "setup/coarsen/mis", "setup/rap"]
        );
        assert_eq!(r.phase("setup").unwrap().count, 2);
        assert_eq!(r.phase("setup/coarsen").unwrap().count, 2);
        assert_eq!(r.phase("setup/coarsen/mis").unwrap().count, 1);
        // Parent time is inclusive of child time.
        assert!(r.phase("setup").unwrap().total_s >= r.phase("setup/coarsen").unwrap().total_s);
    }

    #[test]
    fn scoped_macro_formats_lazily() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        for lvl in 0..3 {
            let _s = scope("solve");
            let _l = crate::scoped!("level{lvl}");
        }
        set_enabled(false);
        let r = snapshot();
        assert!(r.phase("solve/level0").is_some());
        assert!(r.phase("solve/level2").is_some());
    }

    #[test]
    fn counters_gauges_series() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        counter_add("iters", 3);
        counter_add("iters", 4);
        gauge_set("rows", 10.0);
        gauge_set("rows", 20.0);
        series_push("res", 1.0);
        series_push("res", 0.5);
        series_set("res2", vec![9.0]);
        label("problem", "spheres");
        set_enabled(false);
        let r = snapshot();
        assert_eq!(r.counters["iters"], 7);
        assert_eq!(r.gauges["rows"], 20.0);
        assert_eq!(r.series["res"], vec![1.0, 0.5]);
        assert_eq!(r.series["res2"], vec![9.0]);
        assert_eq!(r.labels["problem"], "spheres");
    }

    #[test]
    fn counters_merge_across_threads() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for _ in 0..250 {
                        counter_add("thread_total", 1);
                    }
                    let _sc = scope_owned(format!("worker{t}"));
                    counter_add(&format!("per_thread/{t}"), 1);
                });
            }
        });
        set_enabled(false);
        let r = snapshot();
        assert_eq!(r.counters["thread_total"], 1000);
        for t in 0..4 {
            assert_eq!(r.counters[&format!("per_thread/{t}")], 1);
            // Each worker's scope path is rooted at its own thread.
            assert_eq!(r.phase(&format!("worker{t}")).unwrap().count, 1);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        counter_add("x", 1);
        let _ = scope("p");
        reset();
        set_enabled(false);
        let r = snapshot();
        assert!(r.phases.is_empty() && r.counters.is_empty());
    }
}
