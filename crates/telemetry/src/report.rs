//! The structured telemetry report: what a snapshot looks like, the
//! human-readable table rendering, and the JSON-lines round-trip.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One accumulated phase (slash-joined hierarchical path).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRecord {
    /// Slash-joined hierarchical phase path, e.g. `"setup/rap"`.
    pub path: String,
    /// Total seconds across all entries (inclusive of child phases).
    pub total_s: f64,
    /// Number of times the scope was entered.
    pub count: u64,
}

/// One phase of the BSP machine model (`pmg-parallel::sim::PhaseStats`),
/// bridged into the report so modeled and wall time are one artifact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimPhaseRecord {
    /// Phase name as registered with the BSP simulator.
    pub name: String,
    /// Modeled seconds under the machine model.
    pub modeled_s: f64,
    /// Modeled seconds spent in communication terms only.
    pub modeled_comm_s: f64,
    /// Wall-clock seconds actually spent on this host.
    pub wall_s: f64,
    /// Flops summed across all ranks.
    pub total_flops: u64,
    /// Flops on the most loaded rank.
    pub max_flops: u64,
    /// Point-to-point messages summed across all ranks.
    pub total_msgs: u64,
    /// Bytes moved in point-to-point messages, summed across all ranks.
    pub total_bytes: u64,
    /// Number of BSP supersteps (barrier-to-barrier rounds).
    pub supersteps: u64,
    /// Flop load balance `average / maximum` across ranks.
    pub load_balance: f64,
}

/// A full telemetry snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Free-form string labels (run metadata: problem size, ranks, ...).
    pub labels: BTreeMap<String, String>,
    /// Sorted by path (lexicographic, which groups children under
    /// parents because paths are slash-joined).
    pub phases: Vec<PhaseRecord>,
    /// Monotonic event counters, keyed by slash-joined name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins numeric gauges, keyed by slash-joined name.
    pub gauges: BTreeMap<String, f64>,
    /// Appended numeric series (e.g. per-iteration residuals), keyed by name.
    pub series: BTreeMap<String, Vec<f64>>,
    /// BSP machine-model phases bridged from `pmg-parallel`.
    pub sim_phases: Vec<SimPhaseRecord>,
}

impl Report {
    /// Look up a phase by its full path.
    pub fn phase(&self, path: &str) -> Option<&PhaseRecord> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Direct and transitive children of `path` (prefix match on the
    /// slash-joined hierarchy).
    pub fn children(&self, path: &str) -> impl Iterator<Item = &PhaseRecord> {
        let prefix = format!("{path}/");
        self.phases
            .iter()
            .filter(move |p| p.path.starts_with(&prefix))
    }

    /// Bridge one BSP-sim phase into the report.
    pub fn add_sim_phase(&mut self, rec: SimPhaseRecord) {
        self.sim_phases.push(rec);
    }

    /// Render the human-readable table (the table sink's payload).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.labels.is_empty() {
            let _ = writeln!(out, "labels:");
            for (k, v) in &self.labels {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "{:<44} {:>12} {:>8}", "phase", "total", "count");
            // Phases are path-sorted, so any recorded ancestor precedes its
            // descendants. Render each path relative to its deepest
            // *recorded* ancestor — intermediate path components that never
            // got their own scope (e.g. `level0` in `precond/level0/smooth`)
            // stay visible instead of collapsing into a bare leaf name.
            let mut printed: Vec<&str> = Vec::new();
            for p in &self.phases {
                let ancestor = printed
                    .iter()
                    .filter(|q| {
                        p.path.starts_with(**q) && p.path.as_bytes().get(q.len()) == Some(&b'/')
                    })
                    .max_by_key(|q| q.len());
                let (depth, name) = match ancestor {
                    Some(q) => (q.matches('/').count() + 1, &p.path[q.len() + 1..]),
                    None => (0, p.path.as_str()),
                };
                printed.push(&p.path);
                let _ = writeln!(
                    out,
                    "{:<44} {:>12} {:>8}",
                    format!("{}{}", "  ".repeat(depth), name),
                    fmt_secs(p.total_s),
                    p.count
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<42} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<42} {v:>12.6}");
            }
        }
        if !self.series.is_empty() {
            let _ = writeln!(out, "series:");
            for (k, v) in &self.series {
                let first = v.first().copied().unwrap_or(f64::NAN);
                let last = v.last().copied().unwrap_or(f64::NAN);
                let _ = writeln!(
                    out,
                    "  {k:<42} {:>5} values  {first:.3e} -> {last:.3e}",
                    v.len()
                );
            }
        }
        if !self.sim_phases.is_empty() {
            let _ = writeln!(
                out,
                "{:<20} {:>12} {:>12} {:>12} {:>14} {:>8}",
                "sim phase", "modeled", "comm", "wall", "flops", "balance"
            );
            for s in &self.sim_phases {
                let _ = writeln!(
                    out,
                    "{:<20} {:>12} {:>12} {:>12} {:>14} {:>8.3}",
                    s.name,
                    fmt_secs(s.modeled_s),
                    fmt_secs(s.modeled_comm_s),
                    fmt_secs(s.wall_s),
                    s.total_flops,
                    s.load_balance
                );
            }
        }
        out
    }

    /// Serialize as JSON-lines: one self-describing record per line.
    /// [`Report::from_json_lines`] recovers an identical report.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.labels {
            out.push_str("{\"type\":\"label\",\"name\":");
            json::write_str(&mut out, k);
            out.push_str(",\"value\":");
            json::write_str(&mut out, v);
            out.push_str("}\n");
        }
        for p in &self.phases {
            out.push_str("{\"type\":\"phase\",\"path\":");
            json::write_str(&mut out, &p.path);
            out.push_str(",\"total_s\":");
            json::write_num(&mut out, p.total_s);
            out.push_str(",\"count\":");
            json::write_u64(&mut out, p.count);
            out.push_str("}\n");
        }
        for (k, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::write_str(&mut out, k);
            out.push_str(",\"value\":");
            json::write_u64(&mut out, *v);
            out.push_str("}\n");
        }
        for (k, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json::write_str(&mut out, k);
            out.push_str(",\"value\":");
            json::write_num(&mut out, *v);
            out.push_str("}\n");
        }
        for (k, vals) in &self.series {
            out.push_str("{\"type\":\"series\",\"name\":");
            json::write_str(&mut out, k);
            out.push_str(",\"values\":[");
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_num(&mut out, *v);
            }
            out.push_str("]}\n");
        }
        for s in &self.sim_phases {
            out.push_str("{\"type\":\"sim_phase\",\"name\":");
            json::write_str(&mut out, &s.name);
            let _ = write!(out, ",\"modeled_s\":");
            json::write_num(&mut out, s.modeled_s);
            let _ = write!(out, ",\"modeled_comm_s\":");
            json::write_num(&mut out, s.modeled_comm_s);
            let _ = write!(out, ",\"wall_s\":");
            json::write_num(&mut out, s.wall_s);
            let _ = write!(
                out,
                ",\"total_flops\":{},\"max_flops\":{},\"total_msgs\":{},\"total_bytes\":{},\"supersteps\":{},\"load_balance\":",
                s.total_flops, s.max_flops, s.total_msgs, s.total_bytes, s.supersteps
            );
            json::write_num(&mut out, s.load_balance);
            out.push_str("}\n");
        }
        out
    }

    /// Parse a JSON-lines document produced by [`Report::to_json_lines`].
    /// Unknown record types are ignored (forward compatibility).
    pub fn from_json_lines(input: &str) -> Result<Report, String> {
        let mut r = Report::default();
        for (ln, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            let typ = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing \"type\"", ln + 1))?;
            let str_field = |key: &str| -> Result<String, String> {
                v.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing \"{key}\"", ln + 1))
            };
            let num_field = |key: &str| -> Result<f64, String> {
                match v.get(key) {
                    Some(Value::Null) => Ok(f64::NAN),
                    Some(x) => x
                        .as_f64()
                        .ok_or_else(|| format!("line {}: non-numeric \"{key}\"", ln + 1)),
                    None => Err(format!("line {}: missing \"{key}\"", ln + 1)),
                }
            };
            match typ {
                "label" => {
                    r.labels.insert(str_field("name")?, str_field("value")?);
                }
                "phase" => {
                    r.phases.push(PhaseRecord {
                        path: str_field("path")?,
                        total_s: num_field("total_s")?,
                        count: num_field("count")? as u64,
                    });
                }
                "counter" => {
                    r.counters
                        .insert(str_field("name")?, num_field("value")? as u64);
                }
                "gauge" => {
                    r.gauges.insert(str_field("name")?, num_field("value")?);
                }
                "series" => {
                    let vals = match v.get("values") {
                        Some(Value::Arr(items)) => items
                            .iter()
                            .map(|x| match x {
                                Value::Num(n) => Ok(*n),
                                Value::Null => Ok(f64::NAN),
                                other => {
                                    Err(format!("line {}: bad series value {other:?}", ln + 1))
                                }
                            })
                            .collect::<Result<Vec<f64>, String>>()?,
                        _ => return Err(format!("line {}: missing \"values\"", ln + 1)),
                    };
                    r.series.insert(str_field("name")?, vals);
                }
                "sim_phase" => {
                    r.sim_phases.push(SimPhaseRecord {
                        name: str_field("name")?,
                        modeled_s: num_field("modeled_s")?,
                        modeled_comm_s: num_field("modeled_comm_s")?,
                        wall_s: num_field("wall_s")?,
                        total_flops: num_field("total_flops")? as u64,
                        max_flops: num_field("max_flops")? as u64,
                        total_msgs: num_field("total_msgs")? as u64,
                        total_bytes: num_field("total_bytes")? as u64,
                        supersteps: num_field("supersteps")? as u64,
                        load_balance: num_field("load_balance")?,
                    });
                }
                _ => {}
            }
        }
        Ok(r)
    }
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report {
            labels: BTreeMap::from([("problem".to_string(), "spheres \"tiny\"".to_string())]),
            phases: vec![
                PhaseRecord {
                    path: "setup".into(),
                    total_s: 1.25,
                    count: 1,
                },
                PhaseRecord {
                    path: "setup/coarsen".into(),
                    total_s: 0.75,
                    count: 3,
                },
                PhaseRecord {
                    path: "setup/coarsen/mis".into(),
                    total_s: 1.0 / 3.0,
                    count: 3,
                },
                PhaseRecord {
                    path: "solve".into(),
                    total_s: 2.5e-4,
                    count: 1,
                },
            ],
            counters: BTreeMap::from([("solve/iterations".to_string(), 21u64)]),
            gauges: BTreeMap::from([("mg/operator_complexity".to_string(), 1.1875)]),
            series: BTreeMap::from([("solve/residuals".to_string(), vec![1.0, 0.1, 1e-3, 9.5e-5])]),
            sim_phases: Vec::new(),
        };
        r.add_sim_phase(SimPhaseRecord {
            name: "solve".into(),
            modeled_s: 0.25,
            modeled_comm_s: 0.05,
            wall_s: 0.125,
            total_flops: 123456789,
            max_flops: 7000000,
            total_msgs: 42,
            total_bytes: 1 << 20,
            supersteps: 99,
            load_balance: 0.875,
        });
        r
    }

    #[test]
    fn json_lines_roundtrip_identical() {
        let r = sample_report();
        let text = r.to_json_lines();
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let back = Report::from_json_lines(&text).unwrap();
        assert_eq!(back, r);
        // And a second round-trip is a fixed point.
        assert_eq!(back.to_json_lines(), text);
    }

    #[test]
    fn from_json_lines_skips_unknown_and_blank() {
        let text = "\n{\"type\":\"frobnicate\",\"x\":1}\n{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n";
        let r = Report::from_json_lines(text).unwrap();
        assert_eq!(r.counters["c"], 3);
    }

    #[test]
    fn from_json_lines_reports_bad_line() {
        let err = Report::from_json_lines("{\"type\":\"phase\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(Report::from_json_lines("not json\n").is_err());
    }

    #[test]
    fn table_contains_phases_and_metrics() {
        let t = sample_report().to_table();
        assert!(t.contains("mis"));
        assert!(t.contains("solve/iterations"));
        assert!(t.contains("operator_complexity"));
        assert!(t.contains("residuals"));
        assert!(t.contains("sim phase"));
        // Children are indented under parents.
        assert!(t.contains("    mis"));
    }

    #[test]
    fn table_keeps_unrecorded_intermediate_components() {
        // `level0` never got its own scope: the leaves must render as
        // `level0/smooth` under `precond`, not as bare `smooth`.
        let r = Report {
            phases: vec![
                PhaseRecord {
                    path: "precond".into(),
                    total_s: 1.0,
                    count: 2,
                },
                PhaseRecord {
                    path: "precond/level0/smooth".into(),
                    total_s: 0.5,
                    count: 4,
                },
                PhaseRecord {
                    path: "precond/level1/coarse".into(),
                    total_s: 0.1,
                    count: 2,
                },
            ],
            ..Default::default()
        };
        let t = r.to_table();
        assert!(t.contains("  level0/smooth"), "{t}");
        assert!(t.contains("  level1/coarse"), "{t}");
    }

    #[test]
    fn phase_lookup_and_children() {
        let r = sample_report();
        assert_eq!(r.phase("setup/coarsen").unwrap().count, 3);
        assert!(r.phase("nope").is_none());
        let kids: Vec<&str> = r.children("setup").map(|p| p.path.as_str()).collect();
        assert_eq!(kids, vec!["setup/coarsen", "setup/coarsen/mis"]);
    }
}
