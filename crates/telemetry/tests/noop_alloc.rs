//! With telemetry disabled, the hot-path entry points must not allocate:
//! solver inner loops (V-cycle levels, smoother sweeps) call them every
//! iteration, and the acceptance bar is near-zero overhead when off.
//!
//! Asserted with a counting global allocator. This lives in its own
//! integration-test binary so the `#[global_allocator]` does not leak
//! into other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over a few trials of `f`. The counter is
/// process-global, so a concurrent harness thread (test spawn, capture
/// buffers) can charge unrelated allocations to one trial; a hot path
/// that really allocates does so in *every* trial, so the minimum still
/// catches regressions while ignoring one-off background noise.
fn min_allocations_during(mut f: impl FnMut()) -> u64 {
    (0..5).map(|_| allocations_during(&mut f)).min().unwrap()
}

/// The enabled flag is process-global: the two tests must not interleave.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_hot_path_allocates_nothing() {
    let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pmg_telemetry::set_enabled(false);
    // Warm up lazy statics (thread-local, registry) outside the counted
    // region: first use may legitimately allocate once.
    {
        let _s = pmg_telemetry::scope("warmup");
        pmg_telemetry::counter_add("warmup", 1);
    }
    let n = min_allocations_during(|| {
        for i in 0..10_000u64 {
            let _outer = pmg_telemetry::scope("solve");
            let _inner = pmg_telemetry::scoped!("level{i}");
            pmg_telemetry::counter_add("iterations", 1);
            pmg_telemetry::gauge_set("rows", i as f64);
            pmg_telemetry::series_push("residuals", 1.0);
        }
    });
    assert_eq!(n, 0, "disabled telemetry hot path allocated {n} times");
}

#[test]
fn enabled_then_disabled_returns_to_zero() {
    let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pmg_telemetry::set_enabled(true);
    {
        let _s = pmg_telemetry::scope("setup");
        pmg_telemetry::counter_add("c", 1);
    }
    pmg_telemetry::set_enabled(false);
    let n = min_allocations_during(|| {
        for _ in 0..1_000 {
            let _s = pmg_telemetry::scope("setup");
            pmg_telemetry::counter_add("c", 1);
        }
    });
    assert_eq!(n, 0, "post-disable hot path allocated {n} times");
}
