//! One level of automatic coarsening (§3, §4.8): MIS vertex selection,
//! Delaunay remeshing of the selected set, and the restriction operator
//! from linear tetrahedral shape functions.

use crate::classify::{
    classify_mesh_parallel, classify_mesh_transport, modified_mis_graph, VertexClasses,
};
use crate::mis::{parallel_mis, parallel_mis_transport, MisOrdering};
use pmg_geometry::{Delaunay, Vec3};
use pmg_mesh::{ElementKind, Mesh};
use pmg_partition::{recursive_coordinate_bisection, Graph};
use pmg_sparse::{CooBuilder, CsrMatrix};

/// Options controlling one coarsening step.
#[derive(Clone, Copy, Debug)]
pub struct CoarsenOptions {
    /// MIS vertex ordering heuristic (§4.7).
    pub ordering: MisOrdering,
    /// Number of virtual processors for the parallel MIS.
    pub nproc: usize,
    /// Face identification normal tolerance used when reclassifying.
    pub face_tol: f64,
    /// Recompute the topological classification from the coarse tet mesh
    /// (the paper reclassifies the third and subsequent grids).
    pub reclassify: bool,
    /// Interpolation weights below `-extrapolation_tol` are rejected and
    /// the vertex falls back to a nearby element / nearest-vertex rule.
    pub extrapolation_tol: f64,
    /// Apply the §4.6 MIS-graph modification (disable only for ablation
    /// studies — thin regions lose their vertex cover without it).
    pub modify_graph: bool,
}

impl Default for CoarsenOptions {
    fn default() -> Self {
        CoarsenOptions {
            ordering: MisOrdering::NaturalExteriorRandomInterior(0x9e3779b9),
            nproc: 1,
            face_tol: 0.7,
            reclassify: false,
            extrapolation_tol: 0.5,
            modify_graph: true,
        }
    }
}

/// The product of one coarsening step.
pub struct CoarseLevel {
    /// Fine-vertex indices promoted to the coarse grid (ascending).
    pub selected: Vec<u32>,
    /// Scalar restriction `R` (n_coarse × n_fine): row `c` holds the coarse
    /// basis function of vertex `c` evaluated at the fine vertices.
    pub restriction: CsrMatrix,
    /// Coarse vertex coordinates.
    pub coords: Vec<Vec3>,
    /// Coarse vertex connectivity (from the Delaunay remesh).
    pub graph: Graph,
    /// Coarse vertex classification (inherited or recomputed).
    pub classes: VertexClasses,
    /// Coarse tetrahedra (positive-volume orientation).
    pub tets: Vec<[u32; 4]>,
    /// Fine vertices that needed the nearest-vertex fallback.
    pub lost_vertices: usize,
}

/// The MIS inputs shared by the in-process and transport coarsening paths:
/// the (possibly §4.6-modified) selection graph, per-vertex topological
/// ranks, the virtual-processor assignment, and the selection order. Both
/// paths derive these identically from the replicated level geometry, so
/// the two MIS variants see bitwise-identical inputs.
fn mis_inputs(
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    opts: &CoarsenOptions,
) -> (Graph, Vec<u8>, Vec<u32>, Vec<u32>) {
    let n = coords.len();
    let mgraph = if opts.modify_graph {
        modified_mis_graph(graph, classes)
    } else {
        graph.clone()
    };
    let ranks = classes.ranks();
    let order = opts.ordering.order_with_graph(&mgraph, &ranks);
    let proc = if opts.nproc > 1 {
        recursive_coordinate_bisection(coords, opts.nproc)
    } else {
        vec![0u32; n]
    };
    (mgraph, ranks, proc, order)
}

/// Coarsen one grid level.
pub fn coarsen_level(
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    opts: &CoarsenOptions,
) -> CoarseLevel {
    let n = coords.len();
    assert_eq!(graph.num_vertices(), n);
    assert_eq!(classes.class.len(), n);

    // 1. MIS on the modified graph, rank = topological class.
    let sel_mask = {
        let _t = pmg_telemetry::scope("mis");
        let (mgraph, ranks, proc, order) = mis_inputs(coords, graph, classes, opts);
        parallel_mis(&mgraph, &ranks, &proc, &order)
    };
    let reclassify = |mesh: &Mesh| -> Result<VertexClasses, pmg_comm::CommError> {
        Ok(classify_mesh_parallel(mesh, opts.face_tol, opts.nproc))
    };
    match coarsen_from_mask(coords, graph, classes, opts, &sel_mask, reclassify) {
        Ok(lvl) => lvl,
        Err(e) => unreachable!("in-process reclassification cannot fail: {e}"),
    }
}

/// [`coarsen_level`] run SPMD over a real [`pmg_comm::Transport`]: the MIS
/// executes through [`parallel_mis_transport`] (a bitwise drop-in for
/// [`parallel_mis`], §4.2) and the reclassification through
/// [`classify_mesh_transport`] (the §4.5 face-ID merge collective); the
/// remesh and restriction steps are pure functions of the replicated level
/// geometry and the (identical) MIS mask, so every rank produces the
/// **bitwise-identical** [`CoarseLevel`].
///
/// `tag` namespaces the MIS rounds' point-to-point traffic per grid level
/// (collectives carry their own tag).
pub fn coarsen_level_transport<T: pmg_comm::Transport>(
    t: &mut T,
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    opts: &CoarsenOptions,
    tag: u32,
) -> Result<CoarseLevel, pmg_comm::CommError> {
    let n = coords.len();
    assert_eq!(graph.num_vertices(), n);
    assert_eq!(classes.class.len(), n);

    let sel_mask = {
        let _t = pmg_telemetry::scope("mis");
        let (mgraph, ranks, proc, order) = mis_inputs(coords, graph, classes, opts);
        parallel_mis_transport(t, &mgraph, &ranks, &proc, &order, tag)?
    };
    let reclassify = |mesh: &Mesh| classify_mesh_transport(t, mesh, opts.face_tol, opts.nproc);
    coarsen_from_mask(coords, graph, classes, opts, &sel_mask, reclassify)
}

/// Steps 2–5 of one coarsening pass (remesh, restriction, coarse graph,
/// reclassification) from an already-computed MIS mask. Deterministic and
/// communication-free except for the injected `reclassify` step, so the
/// in-process and transport paths share it verbatim — the parity argument
/// for distributed setup reduces to "same mask, same classifier output".
fn coarsen_from_mask(
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    opts: &CoarsenOptions,
    sel_mask: &[bool],
    reclassify: impl FnOnce(&Mesh) -> Result<VertexClasses, pmg_comm::CommError>,
) -> Result<CoarseLevel, pmg_comm::CommError> {
    let n = coords.len();
    let selected: Vec<u32> = (0..n as u32).filter(|&v| sel_mask[v as usize]).collect();
    let nc = selected.len();
    let mut coarse_of = vec![u32::MAX; n];
    for (c, &f) in selected.iter().enumerate() {
        coarse_of[f as usize] = c as u32;
    }
    let coarse_coords: Vec<Vec3> = selected.iter().map(|&f| coords[f as usize]).collect();

    // 2. Delaunay remesh of the coarse vertex set.
    let _delaunay_scope = pmg_telemetry::scope("delaunay");
    let dt = if nc >= 5 {
        Delaunay::new(&coarse_coords)
    } else {
        None
    };
    let mut tets: Vec<[u32; 4]> = Vec::new();
    if let Some(dt) = &dt {
        for (_, t) in dt.real_tets() {
            // Delaunay tets carry the Shewchuk orientation (negative
            // standard volume); swap two vertices for the mesh convention.
            let v = t.verts;
            tets.push([
                dt.canonical_index(v[1]) as u32,
                dt.canonical_index(v[0]) as u32,
                dt.canonical_index(v[2]) as u32,
                dt.canonical_index(v[3]) as u32,
            ]);
        }
    }
    drop(_delaunay_scope);

    // 3. Restriction operator.
    let _restriction_scope = pmg_telemetry::scope("restriction");
    let mut b = CooBuilder::new(nc, n);
    let mut lost = 0usize;
    let mut hint = 0usize;
    for f in 0..n {
        if let Some(&c) = coarse_of.get(f).filter(|&&c| c != u32::MAX) {
            b.push(c as usize, f, 1.0);
            continue;
        }
        let p = coords[f];
        let mut done = false;
        if let Some(dt) = &dt {
            if let Some(t0) = dt.locate(p, hint) {
                hint = t0;
                if let Some((verts, w)) = best_interpolant(dt, t0, p, opts.extrapolation_tol) {
                    for (vi, wi) in verts.iter().zip(w.iter()) {
                        if wi.abs() > 1e-14 {
                            b.push(dt.canonical_index(*vi), f, *wi);
                        }
                    }
                    done = true;
                }
            }
        }
        if !done {
            // Lost vertex: inject from the nearest selected vertex (first
            // try graph neighbors, then a linear scan).
            lost += 1;
            let nearest = graph
                .neighbors(f)
                .iter()
                .filter(|&&w| coarse_of[w as usize] != u32::MAX)
                .min_by(|&&a, &&b2| {
                    let da = coords[a as usize].dist2(p);
                    let db = coords[b2 as usize].dist2(p);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|&w| coarse_of[w as usize] as usize)
                .or_else(|| {
                    (0..nc).min_by(|&a, &b2| {
                        let da = coarse_coords[a].dist2(p);
                        let db = coarse_coords[b2].dist2(p);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                });
            if let Some(c) = nearest {
                b.push(c, f, 1.0);
            }
        }
    }
    let restriction = b.build();
    drop(_restriction_scope);
    pmg_telemetry::counter_add("coarsen/lost_vertices", lost as u64);

    // 4. Coarse vertex graph from the remesh (fallback: contracted fine
    // graph when no triangulation exists).
    let coarse_graph = if tets.is_empty() {
        contracted_graph(graph, &coarse_of, nc)
    } else {
        let mut edges = Vec::new();
        for t in &tets {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((t[i], t[j]));
                }
            }
        }
        Graph::from_edges(nc, edges)
    };

    // 5. Coarse classification: inherit, or reclassify from the coarse tet
    // mesh geometry (the injected classifier: the §4.5 parallel face
    // identification in-process, its transport twin under SPMD).
    let classes_out = if opts.reclassify && !tets.is_empty() {
        let flat: Vec<u32> = tets.iter().flatten().copied().collect();
        let mesh = Mesh::new(
            coarse_coords.clone(),
            ElementKind::Tet4,
            flat,
            vec![0; tets.len()],
        );
        reclassify(&mesh)?
    } else {
        VertexClasses {
            class: selected
                .iter()
                .map(|&f| classes.class[f as usize])
                .collect(),
            faces: selected
                .iter()
                .map(|&f| classes.faces[f as usize].clone())
                .collect(),
        }
    };

    Ok(CoarseLevel {
        selected,
        restriction,
        coords: coarse_coords,
        graph: coarse_graph,
        classes: classes_out,
        tets,
        lost_vertices: lost,
    })
}

/// Find the best interpolating tet for `p`, starting from located tet `t0`:
/// breadth-first over neighbors, keeping real tets only, scored by their
/// minimum barycentric weight. Accepts the best candidate whose minimum
/// weight exceeds `-tol` (the paper's −ε extrapolation allowance).
fn best_interpolant(dt: &Delaunay, t0: usize, p: Vec3, tol: f64) -> Option<([usize; 4], [f64; 4])> {
    const MAX_VISIT: usize = 64;
    let mut best: Option<([usize; 4], [f64; 4], f64)> = None;
    let mut visited = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::from([t0]);
    visited.insert(t0);
    while let Some(t) = queue.pop_front() {
        if visited.len() > MAX_VISIT {
            break;
        }
        let tet = dt.tet(t);
        let is_real = tet.verts.iter().all(|&v| !dt.is_bounding_vertex(v));
        if is_real {
            let w = dt.barycentric(t, p);
            if w.iter().all(|x| x.is_finite()) {
                let score = w.iter().cloned().fold(f64::INFINITY, f64::min);
                if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    best = Some((tet.verts, w, score));
                }
                if score >= 0.0 {
                    break; // inside this tet: no better candidate exists
                }
            }
        }
        for nb in tet.neighbors.into_iter().flatten() {
            if visited.insert(nb) {
                queue.push_back(nb);
            }
        }
    }
    best.filter(|(_, _, s)| *s > -tol).map(|(v, w, _)| (v, w))
}

/// Fallback coarse graph: connect coarse vertices whose fine originals are
/// within graph distance 2 (i.e. share a deleted fine neighbor).
fn contracted_graph(fine: &Graph, coarse_of: &[u32], nc: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 0..fine.num_vertices() {
        let cv = coarse_of[v];
        for &w in fine.neighbors(v) {
            let cw = coarse_of[w as usize];
            if cv != u32::MAX && cw != u32::MAX && cv < cw {
                edges.push((cv, cw));
            }
            // Distance-2 via deleted vertex v.
            if cv == u32::MAX {
                for &w2 in fine.neighbors(v) {
                    let cw2 = coarse_of[w2 as usize];
                    if cw != u32::MAX && cw2 != u32::MAX && cw < cw2 {
                        edges.push((cw, cw2));
                    }
                }
            }
        }
    }
    Graph::from_edges(nc, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_mesh, VertexClass};
    use pmg_mesh::generators::cube;

    fn setup(n: usize) -> (Vec<Vec3>, Graph, VertexClasses) {
        let m = cube(n);
        let g = m.vertex_graph();
        let c = classify_mesh(&m, 0.7);
        (m.coords.clone(), g, c)
    }

    #[test]
    fn coarsen_cube_basics() {
        let (coords, g, c) = setup(6); // 343 vertices
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        let n = coords.len();
        let nc = lvl.selected.len();
        assert!(nc > n / 30 && nc < n / 2, "nc = {nc} of {n}");
        assert_eq!(lvl.restriction.nrows(), nc);
        assert_eq!(lvl.restriction.ncols(), n);
        assert!(!lvl.tets.is_empty());
        // Corners of the cube always survive.
        let corner_ids: Vec<u32> = (0..n as u32)
            .filter(|&v| c.class[v as usize] == VertexClass::Corner)
            .collect();
        for cv in corner_ids {
            assert!(lvl.selected.contains(&cv), "corner {cv} was deleted");
        }
    }

    #[test]
    fn restriction_columns_are_partition_of_unity() {
        let (coords, g, c) = setup(5);
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        // Column sums: Σ_c R[c][f] = 1 for every fine vertex (linear tet
        // shape functions sum to one; injection and fallback are 1).
        let rt = lvl.restriction.transpose();
        for f in 0..coords.len() {
            let (_, vals) = rt.row(f);
            let sum: f64 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "column {f} sums to {sum}");
        }
    }

    #[test]
    fn selected_columns_are_injection() {
        let (coords, g, c) = setup(4);
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        for (cidx, &f) in lvl.selected.iter().enumerate() {
            let (cols, vals) = lvl.restriction.row(cidx);
            let k = cols.binary_search(&(f as usize)).expect("diagonal entry");
            assert_eq!(vals[k], 1.0);
        }
        // And a selected fine vertex appears in no other coarse row.
        let rt = lvl.restriction.transpose();
        for &f in &lvl.selected {
            let (cols, _) = rt.row(f as usize);
            assert_eq!(cols.len(), 1);
        }
    }

    #[test]
    fn restriction_reproduces_linear_functions() {
        // R applied as interpolation: for u_c = linear function at coarse
        // vertices, (Rᵀ u_c)(f) = that function at the fine vertex — exact
        // for linear tet interpolation wherever the vertex is interpolated
        // (not lost).
        let (coords, g, c) = setup(5);
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        let lin = |p: Vec3| 2.0 * p.x - 3.0 * p.y + 0.5 * p.z + 1.0;
        let uc: Vec<f64> = lvl.coords.iter().map(|&p| lin(p)).collect();
        let mut uf = vec![0.0; coords.len()];
        lvl.restriction.spmv_transpose(&uc, &mut uf);
        let mut bad = 0;
        for f in 0..coords.len() {
            if (uf[f] - lin(coords[f])).abs() > 1e-9 {
                bad += 1;
            }
        }
        // Only lost vertices (nearest-vertex fallback) may deviate.
        assert!(
            bad <= lvl.lost_vertices,
            "bad={bad} lost={}",
            lvl.lost_vertices
        );
        // On a convex cube, losses should be rare.
        assert!(
            lvl.lost_vertices * 20 <= coords.len(),
            "lost={}",
            lvl.lost_vertices
        );
    }

    #[test]
    fn repeated_coarsening_shrinks() {
        let (coords, g, c) = setup(6);
        let mut cur = (coords, g, c);
        let mut sizes = vec![cur.0.len()];
        for depth in 0..4 {
            let opts = CoarsenOptions {
                reclassify: depth >= 1,
                ..Default::default()
            };
            let lvl = coarsen_level(&cur.0, &cur.1, &cur.2, &opts);
            if lvl.selected.len() < 10 {
                break;
            }
            sizes.push(lvl.selected.len());
            cur = (lvl.coords, lvl.graph, lvl.classes);
        }
        assert!(sizes.len() >= 3, "coarsening stalled: {sizes:?}");
        for w in sizes.windows(2) {
            assert!(w[1] * 2 < w[0] * 2 && w[1] < w[0], "{sizes:?}");
        }
    }

    #[test]
    fn thin_plate_keeps_both_surfaces() {
        // §4.6 end-to-end: coarsening a thin plate keeps vertices on both
        // z-surfaces.
        let m = pmg_mesh::generators::thin_plate(10, 10.0, 0.3);
        let g = m.vertex_graph();
        let c = classify_mesh(&m, 0.7);
        let lvl = coarsen_level(&m.coords, &g, &c, &CoarsenOptions::default());
        let top = lvl.coords.iter().filter(|p| p.z > 0.2).count();
        let bottom = lvl.coords.iter().filter(|p| p.z < 0.1).count();
        assert!(top >= 4, "top surface decimated: {top}");
        assert!(bottom >= 4, "bottom surface decimated: {bottom}");
    }

    #[test]
    fn tets_have_positive_volume() {
        let (coords, g, c) = setup(4);
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        for t in &lvl.tets {
            let p: Vec<Vec3> = t.iter().map(|&v| lvl.coords[v as usize]).collect();
            let vol = (p[1] - p[0]).cross(p[2] - p[0]).dot(p[3] - p[0]) / 6.0;
            assert!(vol > 0.0, "tet volume {vol}");
        }
    }

    #[test]
    fn tiny_input_fallback() {
        // 4 vertices in a line: no triangulation possible; injection +
        // nearest-vertex fallback must still produce a valid restriction.
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]);
        let c = VertexClasses::all_interior(4);
        let lvl = coarsen_level(&coords, &g, &c, &CoarsenOptions::default());
        assert!(!lvl.selected.is_empty());
        let rt = lvl.restriction.transpose();
        for f in 0..4 {
            let (_, vals) = rt.row(f);
            let sum: f64 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transport_coarsening_matches_in_process_exactly() {
        // The distributed-setup parity cornerstone: one coarsening pass
        // over a real transport — MIS rounds and the face-ID merge
        // collective included — reproduces `coarsen_level` bitwise, on
        // every rank, for several rank counts.
        let (coords, g, c) = setup(5);
        for nranks in [1usize, 2, 3] {
            let opts = CoarsenOptions {
                nproc: 4,
                reclassify: true,
                ..Default::default()
            };
            let want = coarsen_level(&coords, &g, &c, &opts);
            let outs = {
                let coords = coords.clone();
                let g = g.clone();
                let c = c.clone();
                pmg_comm::LocalTransport::run_ranks(nranks, move |mut t| {
                    coarsen_level_transport(&mut t, &coords, &g, &c, &opts, 0x40).unwrap()
                })
            };
            for (r, got) in outs.iter().enumerate() {
                assert_eq!(got.selected, want.selected, "ranks={nranks} r={r}");
                assert_eq!(got.tets, want.tets, "ranks={nranks} r={r}");
                assert_eq!(got.lost_vertices, want.lost_vertices);
                assert_eq!(got.classes.class, want.classes.class);
                assert_eq!(got.classes.faces, want.classes.faces);
                assert_eq!(got.graph, want.graph, "ranks={nranks} r={r}");
                let (gr, gw) = (&got.restriction, &want.restriction);
                assert_eq!(gr.nrows(), gw.nrows());
                assert_eq!(gr.nnz(), gw.nnz());
                for row in 0..gr.nrows() {
                    let (ci, vi) = gr.row(row);
                    let (cj, vj) = gw.row(row);
                    assert_eq!(ci, cj, "ranks={nranks} r={r} row {row}");
                    for (a, b) in vi.iter().zip(vj) {
                        assert_eq!(a.to_bits(), b.to_bits(), "ranks={nranks} r={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn nproc_variants_cover_domain() {
        let (coords, g, c) = setup(5);
        for nproc in [1, 4, 9] {
            let opts = CoarsenOptions {
                nproc,
                ..Default::default()
            };
            let lvl = coarsen_level(&coords, &g, &c, &opts);
            assert!(!lvl.selected.is_empty());
            // MIS invariants on the modified graph.
            let mg = modified_mis_graph(&g, &c);
            let mask: Vec<bool> = {
                let mut m = vec![false; coords.len()];
                for &s in &lvl.selected {
                    m[s as usize] = true;
                }
                m
            };
            assert!(crate::mis::is_independent(&mg, &mask), "nproc={nproc}");
            assert!(crate::mis::is_maximal(&mg, &mask), "nproc={nproc}");
        }
    }
}
