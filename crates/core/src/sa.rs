//! Smoothed aggregation AMG baseline (Vanek, Mandel & Brezina).
//!
//! §8 of the paper names smoothed aggregation as the alternative
//! unstructured multigrid algorithm to "evaluate (and make publicly
//! available)"; we implement it as the comparison method for the benches.
//! Aggregates are built greedily on the strength-of-connection graph of the
//! vertex blocks, the tentative prolongator injects the rigid translation
//! modes, and one damped-Jacobi smoothing step is applied to the
//! prolongator.

use crate::mg::{expand_restriction, MgHierarchy, MgLevel, MgOptions, Smoother};
use pmg_geometry::Vec3;
use pmg_parallel::{DistMatrix, Layout, Sim};
use pmg_partition::recursive_coordinate_bisection;
#[allow(unused_imports)]
use pmg_solver::Chebyshev;
use pmg_solver::{BlockJacobi, CoarseDirect};
use pmg_sparse::{CooBuilder, CsrMatrix};
use std::sync::Arc;

/// Smoothed aggregation options.
#[derive(Clone, Copy, Debug)]
pub struct SaOptions {
    /// Strength threshold θ: vertices v, w are strongly coupled when
    /// `‖A_vw‖_F > θ √(‖A_vv‖_F ‖A_ww‖_F)`.
    pub theta: f64,
    /// Prolongator smoothing weight numerator (ω = weight / λ_max).
    pub omega_scale: f64,
    /// Hierarchy options shared with the geometric path.
    pub mg: MgOptions,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            theta: 0.08,
            omega_scale: 4.0 / 3.0,
            mg: MgOptions::default(),
        }
    }
}

/// Vertex-block strength matrix: `s[v][w] = ‖A_vw‖_F` condensed from the
/// dof-level operator.
fn block_strength(a: &CsrMatrix, dofs: usize) -> CsrMatrix {
    let nv = a.nrows() / dofs;
    let mut b = CooBuilder::new(nv, nv);
    for (i, j, v) in a.iter() {
        b.push(i / dofs, j / dofs, v * v);
    }
    let mut s = b.build();
    // Frobenius norms.
    for i in 0..nv {
        for v in s.row_vals_mut(i) {
            *v = v.sqrt();
        }
    }
    s
}

/// Greedy aggregation (Vanek's three passes). Returns the aggregate id per
/// vertex and the number of aggregates.
pub fn aggregate(strength: &CsrMatrix, theta: f64) -> (Vec<u32>, usize) {
    let nv = strength.nrows();
    let diag = strength.diag();
    let strong =
        |v: usize, w: usize, s: f64| -> bool { v != w && s > theta * (diag[v] * diag[w]).sqrt() };
    let mut agg = vec![u32::MAX; nv];
    let mut nagg = 0u32;

    // Pass 1: seed aggregates from vertices whose strong neighborhood is
    // fully unaggregated.
    for v in 0..nv {
        if agg[v] != u32::MAX {
            continue;
        }
        let (cols, vals) = strength.row(v);
        let nbrs: Vec<usize> = cols
            .iter()
            .zip(vals)
            .filter(|&(&w, &s)| strong(v, w, s))
            .map(|(&w, _)| w)
            .collect();
        if nbrs.iter().any(|&w| agg[w] != u32::MAX) {
            continue;
        }
        agg[v] = nagg;
        for &w in &nbrs {
            agg[w] = nagg;
        }
        nagg += 1;
    }
    // Pass 2: attach stragglers to the strongest neighboring aggregate.
    for v in 0..nv {
        if agg[v] != u32::MAX {
            continue;
        }
        let (cols, vals) = strength.row(v);
        let mut best: Option<(u32, f64)> = None;
        for (&w, &s) in cols.iter().zip(vals) {
            if strong(v, w, s) && agg[w] != u32::MAX && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((agg[w], s));
            }
        }
        if let Some((a, _)) = best {
            agg[v] = a;
        }
    }
    // Pass 3: remaining vertices form their own aggregates (with any still
    // unaggregated strong neighbors).
    for v in 0..nv {
        if agg[v] != u32::MAX {
            continue;
        }
        agg[v] = nagg;
        let (cols, vals) = strength.row(v);
        for (&w, &s) in cols.iter().zip(vals) {
            if strong(v, w, s) && agg[w] == u32::MAX {
                agg[w] = nagg;
            }
        }
        nagg += 1;
    }
    (agg, nagg as usize)
}

/// Tentative scalar prolongator: aggregate-piecewise-constant columns,
/// normalized (`P_tent[v][agg] = 1/√|agg|`).
fn tentative(agg: &[u32], nagg: usize) -> CsrMatrix {
    let mut counts = vec![0usize; nagg];
    for &a in agg {
        counts[a as usize] += 1;
    }
    let mut b = CooBuilder::new(agg.len(), nagg);
    for (v, &a) in agg.iter().enumerate() {
        b.push(v, a as usize, 1.0 / (counts[a as usize] as f64).sqrt());
    }
    b.build()
}

/// Estimate `λ_max(D⁻¹ A)` with a few power iterations.
fn lambda_max_dinv_a(a: &CsrMatrix) -> f64 {
    let n = a.nrows();
    let dinv: Vec<f64> = a
        .diag()
        .iter()
        .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
        .collect();
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let mut lam = 1.0;
    let mut y = vec![0.0; n];
    for _ in 0..10 {
        a.spmv(&x, &mut y);
        for (yi, di) in y.iter_mut().zip(&dinv) {
            *yi *= di;
        }
        lam = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if lam <= 0.0 {
            return 1.0;
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / lam;
        }
    }
    lam
}

/// Build one SA level: returns the dof-level restriction `R = Pᵀ` and the
/// aggregate centroids.
fn sa_coarsen(
    a: &CsrMatrix,
    coords: &[Vec3],
    dofs: usize,
    opts: &SaOptions,
) -> Option<(CsrMatrix, Vec<Vec3>)> {
    let strength = block_strength(a, dofs);
    let (mut agg, mut nagg) = aggregate(&strength, opts.theta);
    if nagg * 2 >= coords.len() && opts.theta > 0.0 {
        // Threshold filtered out everything (wide stencils dilute the
        // normalized couplings): retry with pure graph aggregation.
        (agg, nagg) = aggregate(&strength, 0.0);
    }
    if nagg == 0 || nagg * 10 >= coords.len() * 9 {
        return None; // stalled
    }
    let p_tent_scalar = tentative(&agg, nagg);
    let p_tent = expand_restriction(&p_tent_scalar.transpose(), dofs).transpose();
    // Smooth: P = (I − ω D⁻¹ A) P_tent.
    let lam = lambda_max_dinv_a(a);
    let omega = opts.omega_scale / lam.max(1e-12);
    let mut ap = a.matmul(&p_tent);
    let dinv_omega: Vec<f64> = a
        .diag()
        .iter()
        .map(|&d| if d != 0.0 { omega / d } else { 0.0 })
        .collect();
    ap.scale_rows(&dinv_omega);
    let p = p_tent.add_scaled(&ap, -1.0);

    // Aggregate centroids for partitioning the coarse grid.
    let mut centroid = vec![Vec3::ZERO; nagg];
    let mut counts = vec![0usize; nagg];
    for (v, &ag) in agg.iter().enumerate() {
        centroid[ag as usize] += coords[v];
        counts[ag as usize] += 1;
    }
    for (c, &n) in centroid.iter_mut().zip(&counts) {
        *c = *c / (n.max(1) as f64);
    }
    Some((p.transpose(), centroid))
}

/// Build a smoothed-aggregation hierarchy compatible with the geometric
/// one (same level structure, same cycles).
pub fn build_sa_hierarchy(
    sim: &mut Sim,
    a_fine: &CsrMatrix,
    coords: &[Vec3],
    opts: SaOptions,
) -> MgHierarchy {
    let nranks = sim.num_ranks();
    let dofs = opts.mg.dofs_per_vertex;
    assert_eq!(a_fine.nrows(), coords.len() * dofs);
    let make_layout = |coords: &[Vec3]| -> Arc<Layout> {
        let part = recursive_coordinate_bisection(coords, nranks);
        Layout::expand_dofs(&Layout::from_part(part, nranks), dofs)
    };

    let mut levels = Vec::new();
    let mut coarsen_info = Vec::new();
    let mut cur_a = a_fine.clone();
    let mut cur_coords = coords.to_vec();
    let mut cur_layout = make_layout(&cur_coords);

    loop {
        let n = cur_a.nrows();
        let at_bottom = n <= opts.mg.coarse_dof_threshold
            || levels.len() + 1 >= opts.mg.max_levels
            || cur_coords.len() < 8;
        let next = if at_bottom {
            None
        } else {
            sim.phase("mesh setup");
            sa_coarsen(&cur_a, &cur_coords, dofs, &opts)
        };
        match next {
            None => {
                sim.phase("matrix setup");
                let da = DistMatrix::from_global(&cur_a, cur_layout.clone(), cur_layout.clone());
                let smoother = Smoother::BlockJacobi(BlockJacobi::new(
                    &da,
                    opts.mg.blocks_per_1000,
                    opts.mg.omega,
                ));
                let coarse = CoarseDirect::new(&da);
                levels.push(MgLevel {
                    a: da,
                    smoother,
                    r: None,
                    p: None,
                    coarse: Some(coarse),
                    num_vertices: cur_coords.len(),
                    r_global: None,
                    rap_plan: None,
                });
                break;
            }
            Some((r_dof, c_coords)) => {
                coarsen_info.push((c_coords.len(), 0));
                sim.phase("matrix setup");
                let mut rap_plan = pmg_sparse::RapPlan::new(&cur_a, &r_dof);
                let a_coarse = rap_plan.execute(&cur_a);
                let coarse_layout = make_layout(&c_coords);
                let da = DistMatrix::from_global(&cur_a, cur_layout.clone(), cur_layout.clone());
                let dr = DistMatrix::from_global(&r_dof, coarse_layout.clone(), cur_layout.clone());
                let dp = DistMatrix::from_global(
                    &r_dof.transpose(),
                    cur_layout.clone(),
                    coarse_layout.clone(),
                );
                let smoother = Smoother::BlockJacobi(BlockJacobi::new(
                    &da,
                    opts.mg.blocks_per_1000,
                    opts.mg.omega,
                ));
                levels.push(MgLevel {
                    a: da,
                    smoother,
                    r: Some(dr),
                    p: Some(dp),
                    coarse: None,
                    num_vertices: cur_coords.len(),
                    r_global: Some(r_dof),
                    rap_plan: Some(rap_plan),
                });
                cur_a = a_coarse;
                cur_coords = c_coords;
                cur_layout = coarse_layout;
            }
        }
    }
    MgHierarchy {
        levels,
        opts: opts.mg,
        coarsen_info,
        fine_mf: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmg_parallel::{DistVec, MachineModel};
    use pmg_solver::{pcg, PcgOptions};

    fn scalar_laplacian(n: usize) -> (CsrMatrix, Vec<Vec3>) {
        let m = pmg_mesh::generators::cube(n);
        let g = m.vertex_graph();
        let nv = m.num_vertices();
        let mut b = CooBuilder::new(nv, nv);
        for v in 0..nv {
            b.push(v, v, g.degree(v) as f64 + 1.0);
            for &w in g.neighbors(v) {
                b.push(v, w as usize, -1.0);
            }
        }
        (b.build(), m.coords.clone())
    }

    #[test]
    fn aggregation_covers_all_vertices() {
        let (a, _) = scalar_laplacian(6);
        let s = block_strength(&a, 1);
        // The 26-neighbor stencil dilutes normalized couplings below the
        // usual 0.08; aggregate on the raw graph.
        let (agg, nagg) = aggregate(&s, 0.0);
        assert!(nagg > 0);
        assert!(agg.iter().all(|&x| (x as usize) < nagg));
        // Aggregates shrink the grid substantially.
        assert!(nagg * 4 < agg.len(), "nagg={nagg} of {}", agg.len());
    }

    #[test]
    fn tentative_columns_unit_norm() {
        let agg = vec![0u32, 0, 1, 1, 1];
        let p = tentative(&agg, 2);
        let pt = p.transpose();
        for c in 0..2 {
            let (_, vals) = pt.row(c);
            let norm: f64 = vals.iter().map(|v| v * v).sum::<f64>();
            assert!((norm - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn sa_pcg_converges_fast() {
        let (a, coords) = scalar_laplacian(9);
        let mut sim = Sim::new(2, MachineModel::default());
        let opts = SaOptions {
            mg: MgOptions {
                dofs_per_vertex: 1,
                coarse_dof_threshold: 60,
                cycle: crate::mg::CycleType::V,
                ..Default::default()
            },
            ..Default::default()
        };
        let mg = build_sa_hierarchy(&mut sim, &a, &coords, opts);
        assert!(mg.num_levels() >= 2);
        let layout = mg.levels[0].a.row_layout().clone();
        let n = a.nrows();
        let bg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = DistVec::from_global(layout.clone(), &bg);
        let mut x = DistVec::zeros(layout);
        let res = pcg(
            &mut sim,
            &mg.levels[0].a,
            &mg,
            &b,
            &mut x,
            PcgOptions {
                rtol: 1e-8,
                max_iters: 80,
                ..Default::default()
            },
        );
        assert!(res.converged);
        assert!(res.iterations < 40, "{} iterations", res.iterations);
    }

    #[test]
    fn lambda_max_positive() {
        let (a, _) = scalar_laplacian(4);
        let lam = lambda_max_dinv_a(&a);
        // D^{-1}A of a Laplacian-like operator has λ_max in (1, 2].
        assert!(lam > 0.5 && lam < 3.0, "λ = {lam}");
    }
}
