#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in the numeric kernels
#![warn(missing_docs)]

//! # Prometheus-rs
//!
//! A reproduction of *"Parallel Multigrid Solver for 3D Unstructured Finite
//! Element Problems"* (Adams & Demmel, SC 1999) — a fully automatic
//! geometric multigrid solver for unstructured finite element problems: the
//! user provides only the fine grid (vertices, connectivity, coordinates,
//! and the assembled operator), and the solver builds the entire grid
//! hierarchy itself.
//!
//! Pipeline per level (§3-§4 of the paper):
//!
//! 1. **Classify** vertices topologically ([`classify`]): identify boundary
//!    *faces* by a normal-tolerance BFS over boundary facets, then label
//!    each vertex interior / surface / edge / corner.
//! 2. **Modify** the MIS graph ([`classify::modified_mis_graph`]): remove
//!    edges between exterior vertices that share no face, so thin regions
//!    keep a vertex cover (§4.6).
//! 3. **Coarsen** with a maximal independent set ([`mis`]): rank-ordered so
//!    corners survive, then edges, then surfaces, then interiors; natural
//!    order on the boundary, random inside (§4.7).
//! 4. **Remesh** the selected vertices with Delaunay tetrahedra and build
//!    the **restriction operator** from linear tet shape functions
//!    ([`coarsen`]), recovering "lost" fine vertices from nearby elements.
//! 5. Form **Galerkin coarse operators** `A_c = R A Rᵀ` and recurse
//!    ([`mg`]); solve with FMG-preconditioned CG ([`solver`]).
//!
//! A smoothed-aggregation AMG baseline ([`sa`]) is included as the paper's
//! named alternative (Vanek et al., their future-work comparison).

pub mod classify;
pub mod coarsen;
pub mod fingerprint;
pub mod ingest;
pub mod inspect;
pub mod mg;
pub mod mis;
pub mod sa;
pub mod solver;
pub mod spmd;

pub use classify::{
    classify_mesh, classify_mesh_parallel, classify_mesh_transport, classify_vertices,
    identify_faces, identify_faces_parallel, identify_faces_transport, modified_mis_graph,
    VertexClass, VertexClasses,
};
pub use coarsen::{coarsen_level, coarsen_level_transport, CoarseLevel, CoarsenOptions};
pub use fingerprint::{fingerprint_hex, parse_fingerprint_hex, solver_fingerprint};
pub use ingest::{
    plan_ingest, plan_ingest_with_part, scatter_seeds, CoarseSeed, IngestPlan, RankSeed,
};
pub use inspect::{classify_mesh_levels, tets_to_obj, LevelInfo};
pub use mg::{CycleType, FineOperator, MgHierarchy, MgOptions};
pub use mis::{greedy_mis, parallel_mis, parallel_mis_transport, MisOrdering};
pub use sa::{build_sa_hierarchy, SaOptions};
pub use solver::{Prometheus, PrometheusOptions, SolveSummary};
pub use spmd::{
    solve_threads, solve_threads_multi, solve_threads_multi_opts, solve_threads_opts, spmd_pcg,
    spmd_pcg_multi, DistributedSetup, PhaseWaits, RankHierarchy, SpmdMultiOutcome,
    SpmdSolveOutcome,
};
