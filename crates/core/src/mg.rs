//! The multigrid hierarchy: Galerkin coarse operators, V-cycle, and full
//! multigrid (the "Epimetheus" layer plus Figure 1 of the paper).

use crate::classify::VertexClasses;
use crate::coarsen::{coarsen_level, CoarseLevel, CoarsenOptions};
use pmg_geometry::Vec3;
use pmg_parallel::{DistMatFree, DistMatrix, DistVec, Layout, Sim, SimOperator};
use pmg_partition::{recursive_coordinate_bisection, Graph};
use pmg_solver::{BlockJacobi, Chebyshev, CoarseDirect, Precond};
use pmg_sparse::{CooBuilder, CsrMatrix, MatrixFreeFactory, RapPlan};
use std::sync::Arc;

/// Multigrid cycle used as the CG preconditioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleType {
    /// One V-cycle (Figure 1).
    V,
    /// One full multigrid cycle (the paper's choice, §2: "we use the 'full'
    /// multigrid algorithm (FMG) in our numerical experiments").
    Fmg,
    /// W-cycle: visit the coarse grid twice per level (more robust on hard
    /// coefficients, more coarse-grid work).
    W,
}

/// Which smoother the hierarchy uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SmootherType {
    /// The paper's smoother: damped block Jacobi, blocks from the graph
    /// partitioner.
    BlockJacobi,
    /// Chebyshev polynomial smoothing of the given degree (no
    /// factorizations, no inner products).
    Chebyshev {
        /// Polynomial degree of one smoothing application.
        degree: usize,
    },
}

/// Which backend applies the fine-grid (level 0) operator during the
/// solve. Coarse Galerkin levels are always assembled — they are small,
/// reused by RAP, and their sparsity is the product pattern, not an
/// element loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FineOperator {
    /// Assembled CSR (promoted to BSR3 for 3-dof problems): the default.
    #[default]
    Assembled,
    /// Element-loop on-the-fly apply: the fine matrix is never promoted
    /// to BSR3 and the solve-time `A x` walks the element geometry
    /// instead of assembled rows. Requires a
    /// [`MatrixFreeFactory`] at build time (see
    /// [`MgHierarchy::build_with_factory`]).
    MatrixFree,
}

impl FineOperator {
    /// Read the backend from `PMG_FINE_OP` (`matrixfree` / `mf` selects
    /// the matrix-free path; anything else, or unset, is assembled).
    pub fn from_env() -> FineOperator {
        match std::env::var("PMG_FINE_OP") {
            Ok(v) if v.eq_ignore_ascii_case("matrixfree") || v.eq_ignore_ascii_case("mf") => {
                FineOperator::MatrixFree
            }
            _ => FineOperator::Assembled,
        }
    }
}

/// A smoother bound to one grid level.
pub enum Smoother {
    /// The paper's damped block Jacobi.
    BlockJacobi(BlockJacobi),
    /// Chebyshev polynomial smoother.
    Chebyshev(Chebyshev),
}

impl Smoother {
    fn build(sim: &mut Sim, a: &DistMatrix, opts: &MgOptions) -> Smoother {
        match opts.smoother {
            SmootherType::BlockJacobi => {
                Smoother::BlockJacobi(BlockJacobi::new(a, opts.blocks_per_1000, opts.omega))
            }
            SmootherType::Chebyshev { degree } => {
                Smoother::Chebyshev(Chebyshev::new(sim, a, degree, 30.0))
            }
        }
    }

    /// `sweeps` stationary smoothing passes on `A x = b`. The operator is
    /// only *applied* here, so assembled and matrix-free backends are both
    /// accepted; the smoother's setup-time factorizations always come from
    /// the assembled matrix handed to `Smoother::build`.
    pub fn smooth(
        &self,
        sim: &mut Sim,
        a: &dyn SimOperator,
        b: &DistVec,
        x: &mut DistVec,
        sweeps: usize,
    ) {
        match self {
            Smoother::BlockJacobi(s) => s.smooth(sim, a, b, x, sweeps),
            Smoother::Chebyshev(s) => s.smooth(sim, a, b, x, sweeps),
        }
    }
}

/// Hierarchy construction and cycling options (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct MgOptions {
    /// Maximum number of grid levels (including the fine grid).
    pub max_levels: usize,
    /// Solve directly once a grid has at most this many dofs.
    pub coarse_dof_threshold: usize,
    /// Pre/post smoothing steps (paper: one of each).
    pub pre_smooth: usize,
    /// Post-smoothing steps per level visit.
    pub post_smooth: usize,
    /// Block-Jacobi damping.
    pub omega: f64,
    /// Paper: 6 blocks per 1000 unknowns.
    pub blocks_per_1000: f64,
    /// V-cycle or W-cycle preconditioner.
    pub cycle: CycleType,
    /// Degrees of freedom per vertex (3 for elasticity, 1 for scalar
    /// tests).
    pub dofs_per_vertex: usize,
    /// Smoother family; see [`SmootherType`].
    pub smoother: SmootherType,
    /// Coarsening (MIS + remesh) options per level.
    pub coarsen: CoarsenOptions,
    /// Route 3-dof level operators through 3x3 BSR storage (numerically
    /// identical to the scalar path; off only for A/B comparisons).
    pub block3: bool,
    /// Fine-grid (level 0) apply backend; see [`FineOperator`].
    pub fine_operator: FineOperator,
    /// Thread-pool size for this solver's parallel kernels. `None` uses
    /// the process-global pool (sized by `PMG_THREADS`); `Some(n)` gives
    /// the solver a dedicated pool of `n` threads. Results are bitwise
    /// identical either way — the pool only changes who does the work.
    pub threads: Option<usize>,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            max_levels: 10,
            coarse_dof_threshold: 600,
            pre_smooth: 1,
            post_smooth: 1,
            omega: 0.6,
            blocks_per_1000: 6.0,
            cycle: CycleType::Fmg,
            dofs_per_vertex: 3,
            smoother: SmootherType::BlockJacobi,
            coarsen: CoarsenOptions::default(),
            block3: true,
            fine_operator: FineOperator::Assembled,
            threads: None,
        }
    }
}

/// One grid of the hierarchy.
pub struct MgLevel {
    /// The level operator, partitioned over the virtual ranks.
    pub a: DistMatrix,
    /// This level's smoother (factored once at setup).
    pub smoother: Smoother,
    /// Restriction to the next coarser grid (`None` on the coarsest).
    pub r: Option<DistMatrix>,
    /// Prolongation from the next coarser grid (`Rᵀ`).
    pub p: Option<DistMatrix>,
    /// Direct solver (only on the coarsest level).
    pub coarse: Option<CoarseDirect>,
    /// Vertices on this grid.
    pub num_vertices: usize,
    /// Global (dof-level) restriction, kept so a new fine operator can be
    /// re-Galerkin-ed through the existing grids (the paper's "matrix
    /// setup" phase, repeated per Newton iteration while the "mesh setup"
    /// phase is amortized).
    pub r_global: Option<CsrMatrix>,
    /// Cached symbolic plan of `R A Rᵀ` for this level's operator. Built
    /// with the hierarchy; [`MgHierarchy::update_operator`] re-executes it
    /// numerically in O(nnz) while this level's sparsity pattern is
    /// unchanged, and rebuilds it transparently otherwise.
    pub rap_plan: Option<RapPlan>,
}

/// The assembled hierarchy; implements [`Precond`] as one MG cycle.
pub struct MgHierarchy {
    /// The grids, finest first.
    pub levels: Vec<MgLevel>,
    /// The options the hierarchy was built with.
    pub opts: MgOptions,
    /// Per-level coarsening diagnostics (level 1..): selected counts, lost
    /// vertices.
    pub coarsen_info: Vec<(usize, usize)>,
    /// Matrix-free fine-grid apply (`Some` iff
    /// `opts.fine_operator == MatrixFree`). The assembled `levels[0].a`
    /// is still kept — Galerkin products and smoother factorizations need
    /// it — but every solve-time level-0 `A x` routes through this
    /// operator instead.
    pub fine_mf: Option<DistMatFree>,
}

/// Expand a scalar (per-vertex) restriction to `dofs` unknowns per vertex.
pub fn expand_restriction(r: &CsrMatrix, dofs: usize) -> CsrMatrix {
    let mut b = CooBuilder::new(r.nrows() * dofs, r.ncols() * dofs);
    for (c, f, w) in r.iter() {
        for d in 0..dofs {
            b.push(c * dofs + d, f * dofs + d, w);
        }
    }
    b.build()
}

impl MgHierarchy {
    /// Build the hierarchy from the fine operator and fine-grid geometry.
    /// All grid and matrix setup work is charged to the sim phases
    /// `"mesh setup"` (coarsening: MIS, Delaunay, restriction) and
    /// `"matrix setup"` (Galerkin products, smoother factorizations).
    ///
    /// Telemetry: records the scopes `coarsen` (with `mis` / `delaunay` /
    /// `restriction` / `classify` children from [`coarsen_level`]), `rap`,
    /// `smoother`, and `coarse_direct` under the caller's current path
    /// (`setup/...` when driven by `Prometheus`), plus per-level
    /// `mg/level{i}/rows|nnz` gauges and `mg/operator_complexity`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        sim: &mut Sim,
        a_fine: &CsrMatrix,
        coords: &[Vec3],
        graph: &Graph,
        classes: &VertexClasses,
        opts: MgOptions,
    ) -> MgHierarchy {
        Self::build_with_factory(sim, a_fine, coords, graph, classes, opts, None)
    }

    /// [`build`](Self::build), plus an optional matrix-free factory for
    /// the fine-grid apply. Required when
    /// `opts.fine_operator == FineOperator::MatrixFree`: once the fine
    /// layout is partitioned, the factory builds one element-loop kernel
    /// per rank and the hierarchy routes every solve-time level-0 `A x`
    /// through them (the assembled fine matrix stays — in scalar CSR form
    /// only, never promoted to BSR3 — for Galerkin products and smoother
    /// factorizations).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_factory(
        sim: &mut Sim,
        a_fine: &CsrMatrix,
        coords: &[Vec3],
        graph: &Graph,
        classes: &VertexClasses,
        opts: MgOptions,
        factory: Option<&dyn MatrixFreeFactory>,
    ) -> MgHierarchy {
        let nranks = sim.num_ranks();
        let dofs = opts.dofs_per_vertex;
        assert_eq!(a_fine.nrows(), coords.len() * dofs);

        let make_layout = |coords: &[Vec3]| -> Arc<Layout> {
            let part = recursive_coordinate_bisection(coords, nranks);
            let vlayout = Layout::from_part(part, nranks);
            Layout::expand_dofs(&vlayout, dofs)
        };
        // Level operators of 3-dof displacement problems run blocked
        // (BSR3); R/P and scalar problems stay on the scalar CSR path.
        // A matrix-free fine grid skips the promotion: its assembled copy
        // is only read by RAP and the smoother setup, so carrying a second
        // (BSR3) image of the largest matrix would waste exactly the
        // memory the matrix-free path exists to save.
        let make_da = move |a: &CsrMatrix, l: &Arc<Layout>, promote: bool| -> DistMatrix {
            if promote && dofs == 3 && opts.block3 {
                DistMatrix::from_global_blocked(a, l.clone(), l.clone())
            } else {
                DistMatrix::from_global(a, l.clone(), l.clone())
            }
        };

        let mut levels: Vec<MgLevel> = Vec::new();
        let mut coarsen_info = Vec::new();
        let fine_nnz = a_fine.nnz();
        let mut total_nnz = 0usize;

        let mut cur_a = a_fine.clone();
        let mut cur_coords = coords.to_vec();
        let mut cur_graph = graph.clone();
        let mut cur_classes = classes.clone();
        let mut cur_layout = make_layout(&cur_coords);

        loop {
            let n = cur_a.nrows();
            let lvl_index = levels.len();
            let promote = lvl_index != 0 || opts.fine_operator == FineOperator::Assembled;
            total_nnz += cur_a.nnz();
            if pmg_telemetry::enabled() {
                pmg_telemetry::gauge_set(&format!("mg/level{lvl_index}/rows"), n as f64);
                pmg_telemetry::gauge_set(&format!("mg/level{lvl_index}/nnz"), cur_a.nnz() as f64);
            }
            let at_bottom = n <= opts.coarse_dof_threshold
                || lvl_index + 1 >= opts.max_levels
                || cur_coords.len() < 24;

            if at_bottom {
                sim.phase("matrix setup");
                let da = make_da(&cur_a, &cur_layout, promote);
                let smoother = {
                    let _t = pmg_telemetry::scope("smoother");
                    Smoother::build(sim, &da, &opts)
                };
                let coarse = {
                    let _t = pmg_telemetry::scope("coarse_direct");
                    CoarseDirect::new(&da)
                };
                charge_setup_flops(sim);
                levels.push(MgLevel {
                    a: da,
                    smoother,
                    r: None,
                    p: None,
                    coarse: Some(coarse),
                    num_vertices: cur_coords.len(),
                    r_global: None,
                    rap_plan: None,
                });
                break;
            }

            // Coarsen the grid (mesh setup).
            sim.phase("mesh setup");
            let mut copts = opts.coarsen;
            copts.nproc = nranks;
            // Paper: reclassify the third and subsequent grids.
            copts.reclassify = lvl_index >= 1;
            let cl: CoarseLevel = {
                let _t = pmg_telemetry::scope("coarsen");
                coarsen_level(&cur_coords, &cur_graph, &cur_classes, &copts)
            };
            let nc = cl.selected.len();
            coarsen_info.push((nc, cl.lost_vertices));
            charge_setup_flops(sim);

            if nc * 100 >= cur_coords.len() * 95 || nc < 4 {
                // Coarsening stalled: finish with a direct solve here.
                sim.phase("matrix setup");
                let da = make_da(&cur_a, &cur_layout, promote);
                let smoother = {
                    let _t = pmg_telemetry::scope("smoother");
                    Smoother::build(sim, &da, &opts)
                };
                let coarse = {
                    let _t = pmg_telemetry::scope("coarse_direct");
                    CoarseDirect::new(&da)
                };
                charge_setup_flops(sim);
                levels.push(MgLevel {
                    a: da,
                    smoother,
                    r: None,
                    p: None,
                    coarse: Some(coarse),
                    num_vertices: cur_coords.len(),
                    r_global: None,
                    rap_plan: None,
                });
                break;
            }

            // Galerkin coarse operator and distributed operators (matrix
            // setup).
            sim.phase("matrix setup");
            let r_dof = expand_restriction(&cl.restriction, dofs);
            let ((a_coarse, rap_plan), _) = {
                let _t = pmg_telemetry::scope("rap");
                pmg_sparse::flops::measure(|| {
                    let mut plan = RapPlan::new(&cur_a, &r_dof);
                    let ac = plan.execute(&cur_a);
                    (ac, plan)
                })
            };
            let coarse_layout = make_layout(&cl.coords);
            let da = make_da(&cur_a, &cur_layout, promote);
            let dr = DistMatrix::from_global(&r_dof, coarse_layout.clone(), cur_layout.clone());
            let dp = DistMatrix::from_global(
                &r_dof.transpose(),
                cur_layout.clone(),
                coarse_layout.clone(),
            );
            let smoother = {
                let _t = pmg_telemetry::scope("smoother");
                Smoother::build(sim, &da, &opts)
            };
            charge_setup_flops(sim);

            levels.push(MgLevel {
                a: da,
                smoother,
                r: Some(dr),
                p: Some(dp),
                coarse: None,
                num_vertices: cur_coords.len(),
                r_global: Some(r_dof),
                rap_plan: Some(rap_plan),
            });

            cur_a = a_coarse;
            cur_coords = cl.coords;
            cur_graph = cl.graph;
            cur_classes = cl.classes;
            cur_layout = coarse_layout;
        }

        if pmg_telemetry::enabled() {
            pmg_telemetry::gauge_set("mg/levels", levels.len() as f64);
            // Σ nnz(A_l) / nnz(A_0): the grid-complexity measure the AMG
            // literature reports alongside iteration counts.
            pmg_telemetry::gauge_set(
                "mg/operator_complexity",
                total_nnz as f64 / fine_nnz.max(1) as f64,
            );
        }
        let fine_mf = if opts.fine_operator == FineOperator::MatrixFree {
            let factory = factory.expect(
                "MgOptions.fine_operator = MatrixFree needs a matrix-free factory: \
                 call MgHierarchy::build_with_factory (or Prometheus::from_mesh, which \
                 wires the FEM element loop in automatically)",
            );
            sim.phase("matrix setup");
            let mf = {
                let _t = pmg_telemetry::scope("matfree_setup");
                DistMatFree::from_factory(levels[0].a.row_layout().clone(), factory)
            };
            Some(mf)
        } else {
            None
        };
        MgHierarchy {
            levels,
            opts,
            coarsen_info,
            fine_mf,
        }
    }

    /// The operator PCG and the cycles apply on the finest grid: the
    /// matrix-free kernels when installed, the assembled matrix otherwise.
    pub fn fine_op(&self) -> &dyn SimOperator {
        match &self.fine_mf {
            Some(mf) => mf,
            None => &self.levels[0].a,
        }
    }

    /// The apply operator for level `lvl` (level 0 routes through
    /// [`fine_op`](Self::fine_op)).
    pub fn level_op(&self, lvl: usize) -> &dyn SimOperator {
        if lvl == 0 {
            self.fine_op()
        } else {
            &self.levels[lvl].a
        }
    }

    /// Re-run the *matrix setup* phase only: push a new fine operator
    /// through the existing restriction operators (Galerkin products),
    /// refactor the smoothers and the coarse direct solve, but keep the
    /// grids, layouts, and restriction operators. This is what each Newton
    /// iteration pays in the paper (the mesh setup is amortized, §6).
    ///
    /// Each level's Galerkin product re-executes its cached [`RapPlan`]
    /// numerically — no symbolic work — as long as the level's sparsity
    /// pattern is unchanged (the common case: Newton only changes values).
    /// A pattern change is detected and the plan rebuilt transparently.
    pub fn update_operator(&mut self, sim: &mut Sim, a_fine: &CsrMatrix) {
        sim.phase("matrix setup");
        // Any installed matrix-free kernels linearize the *previous*
        // operator; drop them so the hierarchy falls back to the fresh
        // assembled matrix until install_fine_matrix_free is called again.
        self.fine_mf = None;
        let dofs = self.opts.dofs_per_vertex;
        let mut cur = a_fine.clone();
        for lvl in 0..self.levels.len() {
            let row_layout = self.levels[lvl].a.row_layout().clone();
            assert_eq!(
                cur.nrows(),
                row_layout.num_global(),
                "operator size changed"
            );
            let promote = lvl != 0 || self.opts.fine_operator == FineOperator::Assembled;
            let da = if promote && dofs == 3 && self.opts.block3 {
                DistMatrix::from_global_blocked(&cur, row_layout.clone(), row_layout)
            } else {
                DistMatrix::from_global(&cur, row_layout.clone(), row_layout)
            };
            let opts = self.opts;
            let smoother = {
                let _t = pmg_telemetry::scope("smoother");
                Smoother::build(sim, &da, &opts)
            };
            let level = &mut self.levels[lvl];
            let next = level.r_global.is_some().then(|| {
                let _t = pmg_telemetry::scope("rap");
                let planned = level.rap_plan.as_ref().is_some_and(|p| p.matches(&cur));
                if !planned {
                    let r = level.r_global.as_ref().expect("checked above");
                    let (plan, _) = pmg_sparse::flops::measure(|| RapPlan::new(&cur, r));
                    level.rap_plan = Some(plan);
                }
                let plan = level.rap_plan.as_mut().expect("plan set above");
                let (ac, _) = pmg_sparse::flops::measure(|| plan.execute(&cur));
                ac
            });
            if level.coarse.is_some() {
                let _t = pmg_telemetry::scope("coarse_direct");
                level.coarse = Some(CoarseDirect::new(&da));
            }
            level.a = da;
            level.smoother = smoother;
            match next {
                Some(ac) => cur = ac,
                None => break,
            }
        }
        charge_setup_flops(sim);
    }

    /// (Re-)install the matrix-free fine-grid apply from a factory built
    /// at the current linearization point.
    /// [`update_operator`](Self::update_operator) drops the previous
    /// kernels (they froze the old tangent); call this after it to put
    /// the solve back on the matrix-free path.
    pub fn install_fine_matrix_free(&mut self, factory: &dyn MatrixFreeFactory) {
        let _t = pmg_telemetry::scope("matfree_setup");
        self.fine_mf = Some(DistMatFree::from_factory(
            self.levels[0].a.row_layout().clone(),
            factory,
        ));
    }

    /// Number of grid levels in the hierarchy.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Grid sizes (vertices per level), finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.num_vertices).collect()
    }

    /// One V-cycle at `lvl` for right-hand side `r`; returns the correction.
    pub fn vcycle(&self, sim: &mut Sim, lvl: usize, r: &DistVec) -> DistVec {
        self.cycle(sim, lvl, r, 1)
    }

    /// One W-cycle (two coarse-grid visits per level).
    pub fn wcycle(&self, sim: &mut Sim, lvl: usize, r: &DistVec) -> DistVec {
        self.cycle(sim, lvl, r, 2)
    }

    /// The µ-cycle: `mu` = 1 gives the V-cycle, `mu` = 2 the W-cycle.
    ///
    /// Telemetry: each level records `level{lvl}/smooth`, `level{lvl}/
    /// restrict`, `level{lvl}/prolong` and (on the coarsest) `level{lvl}/
    /// coarse` under the caller's current path. The scopes are opened
    /// around individual kernels — not the recursion — so every level's
    /// records are siblings, ready for flat per-level aggregation.
    fn cycle(&self, sim: &mut Sim, lvl: usize, r: &DistVec, mu: usize) -> DistVec {
        let level = &self.levels[lvl];
        let mut x = DistVec::zeros(r.layout().clone());
        if let Some(direct) = &level.coarse {
            let _t = pmg_telemetry::scoped!("level{lvl}/coarse");
            direct.apply(sim, r, &mut x);
            return x;
        }
        {
            let _t = pmg_telemetry::scoped!("level{lvl}/smooth");
            level
                .smoother
                .smooth(sim, self.level_op(lvl), r, &mut x, self.opts.pre_smooth);
        }

        let rmat = level.r.as_ref().expect("non-coarsest level has R");
        let pmat = level.p.as_ref().expect("non-coarsest level has P");
        for _ in 0..mu {
            let mut rc = DistVec::zeros(rmat.row_layout().clone());
            {
                let _t = pmg_telemetry::scoped!("level{lvl}/restrict");
                let mut res = DistVec::zeros(r.layout().clone());
                self.level_op(lvl).spmv(sim, &x, &mut res);
                res.aypx(sim, -1.0, r); // res = r - A x
                rmat.spmv(sim, &res, &mut rc);
            }
            let xc = self.cycle(sim, lvl + 1, &rc, mu);
            {
                let _t = pmg_telemetry::scoped!("level{lvl}/prolong");
                let mut corr = DistVec::zeros(r.layout().clone());
                pmat.spmv(sim, &xc, &mut corr);
                x.axpy(sim, 1.0, &corr);
            }
            if self.levels[lvl + 1].coarse.is_some() {
                break; // next level is a direct solve: revisiting is a no-op
            }
        }

        {
            let _t = pmg_telemetry::scoped!("level{lvl}/smooth");
            level
                .smoother
                .smooth(sim, self.level_op(lvl), r, &mut x, self.opts.post_smooth);
        }
        x
    }

    /// One full multigrid cycle: restrict the right-hand side to every
    /// grid, solve the coarsest directly, then work back up — prolongate,
    /// correct with a V-cycle on each grid (§2).
    pub fn fmg(&self, sim: &mut Sim, r: &DistVec) -> DistVec {
        let nl = self.levels.len();
        // Restrict r through all levels.
        let mut rs: Vec<DistVec> = Vec::with_capacity(nl);
        rs.push(r.clone());
        for lvl in 0..nl - 1 {
            let _t = pmg_telemetry::scoped!("level{lvl}/restrict");
            let rmat = self.levels[lvl].r.as_ref().unwrap();
            let mut rc = DistVec::zeros(rmat.row_layout().clone());
            rmat.spmv(sim, &rs[lvl], &mut rc);
            rs.push(rc);
        }
        // Coarsest: direct solve.
        let mut x = {
            let _t = pmg_telemetry::scoped!("level{}/coarse", nl - 1);
            let level = &self.levels[nl - 1];
            let mut z = DistVec::zeros(rs[nl - 1].layout().clone());
            level
                .coarse
                .as_ref()
                .unwrap()
                .apply(sim, &rs[nl - 1], &mut z);
            z
        };
        // Work up: prolongate, V-cycle-correct.
        for lvl in (0..nl - 1).rev() {
            let pmat = self.levels[lvl].p.as_ref().unwrap();
            let mut xf = DistVec::zeros(pmat.row_layout().clone());
            {
                let _t = pmg_telemetry::scoped!("level{lvl}/prolong");
                pmat.spmv(sim, &x, &mut xf);
            }
            // Residual on this grid, then V-cycle correction.
            let mut res = DistVec::zeros(xf.layout().clone());
            self.level_op(lvl).spmv(sim, &xf, &mut res);
            res.aypx(sim, -1.0, &rs[lvl]);
            let corr = self.vcycle(sim, lvl, &res);
            xf.axpy(sim, 1.0, &corr);
            x = xf;
        }
        x
    }
}

impl Precond for MgHierarchy {
    fn apply(&self, sim: &mut Sim, r: &DistVec, z: &mut DistVec) {
        let _t = pmg_telemetry::scope("precond");
        let x = match self.opts.cycle {
            CycleType::V => self.vcycle(sim, 0, r),
            CycleType::W => self.wcycle(sim, 0, r),
            CycleType::Fmg => self.fmg(sim, r),
        };
        z.copy_from(&x);
    }
}

/// Move the globally counted setup flops into the current sim phase,
/// distributed evenly over ranks (setup kernels are data-parallel; their
/// load balance mirrors the vertex partition, which RCB keeps even).
fn charge_setup_flops(sim: &mut Sim) {
    let total = pmg_sparse::flops::total();
    pmg_sparse::flops::reset();
    let per = total / sim.num_ranks() as u64;
    sim.compute(&vec![per; sim.num_ranks()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_mesh;
    use pmg_parallel::MachineModel;
    use pmg_solver::{pcg, PcgOptions};

    /// 3D Laplacian (scalar) on an n^3-element cube mesh with Dirichlet
    /// conditions baked in by keeping the operator SPD: A = graph Laplacian
    /// + identity.
    fn scalar_problem(n: usize) -> (CsrMatrix, Vec<Vec3>, Graph, VertexClasses) {
        let m = pmg_mesh::generators::cube(n);
        let g = m.vertex_graph();
        let classes = classify_mesh(&m, 0.7);
        let nv = m.num_vertices();
        let mut b = CooBuilder::new(nv, nv);
        for v in 0..nv {
            b.push(v, v, g.degree(v) as f64 + 1.0);
            for &w in g.neighbors(v) {
                b.push(v, w as usize, -1.0);
            }
        }
        (b.build(), m.coords.clone(), g, classes)
    }

    fn opts_scalar() -> MgOptions {
        MgOptions {
            dofs_per_vertex: 1,
            coarse_dof_threshold: 60,
            ..Default::default()
        }
    }

    #[test]
    fn hierarchy_builds_multiple_levels() {
        let (a, coords, g, c) = scalar_problem(8); // 729 vertices
        let mut sim = Sim::new(2, MachineModel::default());
        let mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
        assert!(mg.num_levels() >= 2, "levels: {:?}", mg.level_sizes());
        let sizes = mg.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "{sizes:?}");
        }
        assert!(mg.levels.last().unwrap().coarse.is_some());
    }

    #[test]
    fn vcycle_reduces_error() {
        let (a, coords, g, c) = scalar_problem(8);
        let mut sim = Sim::new(1, MachineModel::default());
        let mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
        let layout = mg.levels[0].a.row_layout().clone();
        let n = a.nrows();
        let bg: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let b = DistVec::from_global(layout.clone(), &bg);
        // Stationary iteration x <- x + Vcycle(b - A x) must contract.
        let mut x = DistVec::zeros(layout.clone());
        let mut norms = Vec::new();
        for _ in 0..4 {
            let mut r = DistVec::zeros(layout.clone());
            mg.levels[0].a.spmv(&mut sim, &x, &mut r);
            r.aypx(&mut sim, -1.0, &b);
            norms.push(r.norm2(&mut sim));
            let corr = mg.vcycle(&mut sim, 0, &r);
            x.axpy(&mut sim, 1.0, &corr);
        }
        assert!(
            norms[3] < 0.2 * norms[0],
            "V-cycle contraction too weak: {norms:?}"
        );
    }

    #[test]
    fn mg_pcg_converges_fast() {
        let (a, coords, g, c) = scalar_problem(10); // 1331 vertices
        for p in [1, 4] {
            let mut sim = Sim::new(p, MachineModel::default());
            let mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
            let layout = mg.levels[0].a.row_layout().clone();
            let n = a.nrows();
            let bg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b = DistVec::from_global(layout.clone(), &bg);
            let mut x = DistVec::zeros(layout.clone());
            sim.phase("solve");
            let res = pcg(
                &mut sim,
                &mg.levels[0].a,
                &mg,
                &b,
                &mut x,
                PcgOptions {
                    rtol: 1e-8,
                    max_iters: 60,
                    ..Default::default()
                },
            );
            assert!(res.converged, "p={p}: {res:?}");
            assert!(res.iterations < 25, "p={p}: {} iters", res.iterations);
            // Verify against the serial operator.
            let xg = x.to_global();
            let mut ax = vec![0.0; n];
            a.spmv(&xg, &mut ax);
            let err: f64 = ax
                .iter()
                .zip(&bg)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = bg.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(err < 1e-6 * bn);
        }
    }

    #[test]
    fn fmg_cycle_beats_vcycle_start() {
        // FMG produces a better initial correction than a single V-cycle
        // (it nails the coarse content first).
        let (a, coords, g, c) = scalar_problem(9);
        let mut sim = Sim::new(1, MachineModel::default());
        let mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
        let layout = mg.levels[0].a.row_layout().clone();
        let n = a.nrows();
        let bg = vec![1.0; n];
        let b = DistVec::from_global(layout.clone(), &bg);
        let resid_after = |x: &DistVec, sim: &mut Sim| {
            let mut r = DistVec::zeros(layout.clone());
            mg.levels[0].a.spmv(sim, x, &mut r);
            r.aypx(sim, -1.0, &b);
            r.norm2(sim)
        };
        let xv = mg.vcycle(&mut sim, 0, &b);
        let xf = mg.fmg(&mut sim, &b);
        let rv = resid_after(&xv, &mut sim);
        let rf = resid_after(&xf, &mut sim);
        assert!(rf <= rv * 1.5, "fmg {rf} vs vcycle {rv}");
    }

    #[test]
    fn update_operator_matches_rebuild() {
        // Updating the hierarchy with a scaled operator must solve the
        // scaled system just as well as a fresh hierarchy.
        let (a, coords, g, c) = scalar_problem(8);
        let mut sim = Sim::new(2, MachineModel::default());
        let mut mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
        let mut a2 = a.clone();
        a2.scale(3.0);
        mg.update_operator(&mut sim, &a2);
        let layout = mg.levels[0].a.row_layout().clone();
        let n = a.nrows();
        let bg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let b = DistVec::from_global(layout.clone(), &bg);
        let mut x = DistVec::zeros(layout);
        let res = pcg(
            &mut sim,
            &mg.levels[0].a,
            &mg,
            &b,
            &mut x,
            PcgOptions {
                rtol: 1e-8,
                max_iters: 60,
                ..Default::default()
            },
        );
        assert!(res.converged);
        assert!(res.iterations < 25, "{} iters after update", res.iterations);
        let xg = x.to_global();
        let mut ax = vec![0.0; n];
        a2.spmv(&xg, &mut ax);
        let err: f64 = ax
            .iter()
            .zip(&bg)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = bg.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-6 * bn);
    }

    #[test]
    fn expand_restriction_blocks() {
        let mut b = CooBuilder::new(1, 2);
        b.push(0, 0, 0.25);
        b.push(0, 1, 0.75);
        let r = b.build();
        let r3 = expand_restriction(&r, 3);
        assert_eq!(r3.nrows(), 3);
        assert_eq!(r3.ncols(), 6);
        assert_eq!(r3.get(0, 0), 0.25);
        assert_eq!(r3.get(1, 4), 0.75);
        assert_eq!(r3.get(0, 1), 0.0);
    }

    #[test]
    fn preconditioner_is_linear() {
        // M(a r1 + b r2) == a M r1 + b M r2 — required for CG.
        let (a, coords, g, c) = scalar_problem(6);
        let mut sim = Sim::new(1, MachineModel::default());
        let mg = MgHierarchy::build(&mut sim, &a, &coords, &g, &c, opts_scalar());
        let layout = mg.levels[0].a.row_layout().clone();
        let n = a.nrows();
        let r1g: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let r2g: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let r1 = DistVec::from_global(layout.clone(), &r1g);
        let r2 = DistVec::from_global(layout.clone(), &r2g);
        let combo_g: Vec<f64> = r1g
            .iter()
            .zip(&r2g)
            .map(|(a, b)| 2.0 * a - 3.0 * b)
            .collect();
        let combo = DistVec::from_global(layout.clone(), &combo_g);
        let mut z1 = DistVec::zeros(layout.clone());
        let mut z2 = DistVec::zeros(layout.clone());
        let mut zc = DistVec::zeros(layout.clone());
        mg.apply(&mut sim, &r1, &mut z1);
        mg.apply(&mut sim, &r2, &mut z2);
        mg.apply(&mut sim, &combo, &mut zc);
        let z1g = z1.to_global();
        let z2g = z2.to_global();
        let zcg = zc.to_global();
        for i in 0..n {
            let expect = 2.0 * z1g[i] - 3.0 * z2g[i];
            assert!(
                (zcg[i] - expect).abs() < 1e-8 * (1.0 + expect.abs()),
                "nonlinear preconditioner at {i}"
            );
        }
    }
}
