//! Face identification and topological vertex classification (§4.3-§4.6).
//!
//! Boundary facets (including material interfaces) are grouped into *faces*
//! — maximal "flat" manifolds — by a breadth-first search that admits a
//! facet only while its normal stays within `arccos(TOL)` of both the root
//! facet's normal and its neighbor's (Figure 3 of the paper). Vertices are
//! then classified by how many faces touch them: 1 = surface, 2 = edge,
//! more = corner; vertices on no facet are interior. The face sets also
//! drive the *modified MIS graph*: edges between exterior vertices that
//! share no face are removed, and corner-corner edges are removed so
//! corners are never deleted (§4.6).

use pmg_mesh::facets::{facet_adjacency, vertex_to_facets, Facet};
use pmg_partition::Graph;

/// Topological class of a vertex; doubles as the MIS rank (§4.4: interior
/// 0, surface 1, edge 2, corner 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum VertexClass {
    /// Touches no boundary face.
    Interior = 0,
    /// On exactly one face.
    Surface = 1,
    /// On two faces (a crease between them).
    Edge = 2,
    /// On three or more faces.
    Corner = 3,
}

impl VertexClass {
    /// MIS ordering rank of the class (higher survives coarsening longer).
    pub fn rank(self) -> u8 {
        self as u8
    }
}

/// Classification of all vertices of one grid.
#[derive(Clone, Debug)]
pub struct VertexClasses {
    /// Topological class per vertex.
    pub class: Vec<VertexClass>,
    /// Sorted face ids touching each vertex (empty for interior vertices).
    pub faces: Vec<Vec<u32>>,
}

impl VertexClasses {
    /// All-interior classification (used when no boundary data exists).
    pub fn all_interior(n: usize) -> VertexClasses {
        VertexClasses {
            class: vec![VertexClass::Interior; n],
            faces: vec![Vec::new(); n],
        }
    }

    /// Per-vertex MIS ranks (the §4.4 heuristic input).
    pub fn ranks(&self) -> Vec<u8> {
        self.class.iter().map(|c| c.rank()).collect()
    }

    /// Number of vertices with class `c`.
    pub fn count(&self, c: VertexClass) -> usize {
        self.class.iter().filter(|&&x| x == c).count()
    }
}

/// The face identification algorithm (Figure 3): returns a face id per
/// facet. `tol` is the cosine tolerance (−1 < TOL ≤ 1); facets join a face
/// only while `root_norm·f1_norm > tol` and `f_norm·f1_norm > tol`.
pub fn identify_faces(facets: &[Facet], adjacency: &Graph, tol: f64) -> Vec<u32> {
    let n = facets.len();
    let mut face_id = vec![0u32; n];
    let mut current = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if face_id[root] != 0 {
            continue;
        }
        current += 1;
        let root_norm = facets[root].normal;
        face_id[root] = current;
        queue.push_back(root);
        while let Some(f) = queue.pop_front() {
            let fn_ = facets[f].normal;
            for &f1 in adjacency.neighbors(f) {
                let f1 = f1 as usize;
                if face_id[f1] != 0 {
                    continue;
                }
                let n1 = facets[f1].normal;
                if root_norm.dot(n1) > tol && fn_.dot(n1) > tol {
                    face_id[f1] = current;
                    queue.push_back(f1);
                }
            }
        }
    }
    face_id
}

/// The parallel face identification algorithm (§4.5): facets are divided
/// among `nproc` processors; each processor runs the serial algorithm on
/// its own facets (seeded by already-identified ghost facets from
/// higher-numbered processors), and face ids that meet across a boundary
/// are merged through the face-id graph `G_fid`, each facet taking the
/// largest id reachable from its own.
pub fn identify_faces_parallel(
    facets: &[Facet],
    adjacency: &Graph,
    tol: f64,
    proc_of_facet: &[u32],
    nproc: usize,
) -> Vec<u32> {
    let n = facets.len();
    assert_eq!(proc_of_facet.len(), n);
    let mut face_id = vec![0u32; n];
    // Unique ids per processor: id = proc * n + local_counter (the paper's
    // <p, Current_ID> tuple flattened).
    let stride = n as u32 + 1;
    let mut fid_edges: Vec<(u32, u32)> = Vec::new();

    // Processors run from highest to lowest (the highest "starts the
    // process"); each sees seeds (already-identified neighbor facets on
    // higher processors).
    for p in (0..nproc as u32).rev() {
        let mut counter = 0u32;
        for root in 0..n {
            if proc_of_facet[root] != p || face_id[root] != 0 {
                continue;
            }
            counter += 1;
            let my_id = p * stride + counter;
            let root_norm = facets[root].normal;
            face_id[root] = my_id;
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(f) = queue.pop_front() {
                let fn_ = facets[f].normal;
                for &f1 in adjacency.neighbors(f) {
                    let f1 = f1 as usize;
                    let n1 = facets[f1].normal;
                    let admissible = root_norm.dot(n1) > tol && fn_.dot(n1) > tol;
                    if !admissible {
                        continue;
                    }
                    if proc_of_facet[f1] != p {
                        // Cross-processor seed: if already identified, link
                        // the two ids in G_fid.
                        if face_id[f1] != 0 {
                            fid_edges.push((face_id[f1], my_id));
                        }
                        continue;
                    }
                    if face_id[f1] == 0 {
                        face_id[f1] = my_id;
                        queue.push_back(f1);
                    } else if face_id[f1] != my_id {
                        fid_edges.push((face_id[f1], my_id));
                    }
                }
            }
        }
    }

    // Global reduction of G_fid: every facet takes the largest id reachable
    // from its own (union-find by max).
    let mut ids: Vec<u32> = face_id.clone();
    ids.sort_unstable();
    ids.dedup();
    let index_of = |id: u32| ids.binary_search(&id).unwrap();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in &fid_edges {
        let (ra, rb) = (
            find(&mut parent, index_of(a)),
            find(&mut parent, index_of(b)),
        );
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Max id per component.
    let mut max_of = vec![0u32; ids.len()];
    for (k, &id) in ids.iter().enumerate() {
        let r = find(&mut parent, k);
        max_of[r] = max_of[r].max(id);
    }
    face_id
        .iter()
        .map(|&id| {
            let r = find(&mut parent, index_of(id));
            max_of[r]
        })
        .collect()
}

/// SPMD face identification over a real [`Transport`](pmg_comm::Transport) (§4.5): the virtual
/// processors of [`identify_faces_parallel`] are distributed round-robin
/// over the transport ranks (`p % size == rank`), each rank runs the
/// per-processor BFS passes **only for its own processors**, and the
/// per-processor id assignments plus face-id-graph edges are merged in one
/// allgather — the paper's face-ID merge collective.
///
/// Why this reproduces the serial-loop result bitwise:
///
/// * a processor's BFS pass reads other processors' `face_id` state only
///   to *record* `G_fid` edges, never to steer its own traversal (it
///   assigns ids only to own-processor facets, and only its own pass
///   writes those), so every pass is a pure function of
///   `(facets, adjacency, tol, proc_of_facet, p)` and can run on any rank;
/// * in the serial high→low processor loop, a cross-processor neighbor
///   `f1` is "already identified" at processor `p`'s turn **iff**
///   `proc_of_facet[f1] > p` — a condition computable locally from the
///   replicated `proc_of_facet` — so each rank records the candidate pair
///   `(f1, my_id)` for exactly those neighbors and the edge
///   `(face_id[f1], my_id)` is completed after the allgather;
/// * the union-find max-merge's result depends only on the edge *set*,
///   not the order edges are processed.
pub fn identify_faces_transport<T: pmg_comm::Transport>(
    t: &mut T,
    facets: &[Facet],
    adjacency: &Graph,
    tol: f64,
    proc_of_facet: &[u32],
    nproc: usize,
) -> Result<Vec<u32>, pmg_comm::CommError> {
    let n = facets.len();
    assert_eq!(proc_of_facet.len(), n);
    let (rank, size) = (t.rank(), t.size());
    let stride = n as u32 + 1;

    // Local work: the per-processor passes this rank owns. `face_id` is
    // written only at own-processor facets, so one array serves all of
    // this rank's processors.
    let mut face_id = vec![0u32; n];
    let mut assigned: Vec<(u32, u32)> = Vec::new(); // (facet, id)
    let mut edges: Vec<(u32, u32)> = Vec::new(); // intra-processor id pairs
    let mut candidates: Vec<(u32, u32)> = Vec::new(); // (facet f1, my_id)
    for p in (0..nproc as u32).rev() {
        if p as usize % size != rank {
            continue;
        }
        let mut counter = 0u32;
        for root in 0..n {
            if proc_of_facet[root] != p || face_id[root] != 0 {
                continue;
            }
            counter += 1;
            let my_id = p * stride + counter;
            let root_norm = facets[root].normal;
            face_id[root] = my_id;
            assigned.push((root as u32, my_id));
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(f) = queue.pop_front() {
                let fn_ = facets[f].normal;
                for &f1 in adjacency.neighbors(f) {
                    let f1 = f1 as usize;
                    let n1 = facets[f1].normal;
                    let admissible = root_norm.dot(n1) > tol && fn_.dot(n1) > tol;
                    if !admissible {
                        continue;
                    }
                    if proc_of_facet[f1] != p {
                        // In the serial high→low loop, f1 is already
                        // identified at p's turn exactly when its
                        // processor comes later, i.e. is higher.
                        if proc_of_facet[f1] > p {
                            candidates.push((f1 as u32, my_id));
                        }
                        continue;
                    }
                    if face_id[f1] == 0 {
                        face_id[f1] = my_id;
                        assigned.push((f1 as u32, my_id));
                        queue.push_back(f1);
                    } else if face_id[f1] != my_id {
                        edges.push((face_id[f1], my_id));
                    }
                }
            }
        }
    }

    // The face-ID merge collective: one allgather of (assignments,
    // intra-processor edges, cross-processor candidates).
    let mut blob = Vec::new();
    let put_pairs = |blob: &mut Vec<u8>, pairs: &[(u32, u32)]| {
        blob.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &(a, b) in pairs {
            blob.extend_from_slice(&a.to_le_bytes());
            blob.extend_from_slice(&b.to_le_bytes());
        }
    };
    put_pairs(&mut blob, &assigned);
    put_pairs(&mut blob, &edges);
    put_pairs(&mut blob, &candidates);
    let parts = pmg_comm::allgather(t, &blob)?;

    // Reconstruct the full id assignment and edge set (identical on every
    // rank: same parts, same rank order).
    let mut face_id = vec![0u32; n];
    let mut fid_edges: Vec<(u32, u32)> = Vec::new();
    let mut all_candidates: Vec<(u32, u32)> = Vec::new();
    for part in &parts {
        let mut at = 0usize;
        let take_pairs = |at: &mut usize| {
            let cnt = u32::from_le_bytes(part[*at..*at + 4].try_into().unwrap()) as usize;
            *at += 4;
            let mut out = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let a = u32::from_le_bytes(part[*at..*at + 4].try_into().unwrap());
                let b = u32::from_le_bytes(part[*at + 4..*at + 8].try_into().unwrap());
                *at += 8;
                out.push((a, b));
            }
            out
        };
        for (f, id) in take_pairs(&mut at) {
            face_id[f as usize] = id;
        }
        fid_edges.extend(take_pairs(&mut at));
        all_candidates.extend(take_pairs(&mut at));
    }
    for (f1, my_id) in all_candidates {
        fid_edges.push((face_id[f1 as usize], my_id));
    }

    // Global reduction of G_fid — the same union-find max-merge as
    // `identify_faces_parallel` (order-independent outcome).
    let mut ids: Vec<u32> = face_id.clone();
    ids.sort_unstable();
    ids.dedup();
    let index_of = |id: u32| ids.binary_search(&id).unwrap();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in &fid_edges {
        let (ra, rb) = (
            find(&mut parent, index_of(a)),
            find(&mut parent, index_of(b)),
        );
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut max_of = vec![0u32; ids.len()];
    for (k, &id) in ids.iter().enumerate() {
        let r = find(&mut parent, k);
        max_of[r] = max_of[r].max(id);
    }
    Ok(face_id
        .iter()
        .map(|&id| {
            let r = find(&mut parent, index_of(id));
            max_of[r]
        })
        .collect())
}

/// Classify vertices from facet face-ids (§4.4 item 1).
pub fn classify_vertices(num_vertices: usize, facets: &[Facet], face_ids: &[u32]) -> VertexClasses {
    let v2f = vertex_to_facets(num_vertices, facets);
    let mut class = Vec::with_capacity(num_vertices);
    let mut faces = Vec::with_capacity(num_vertices);
    for lists in &v2f {
        let mut ids: Vec<u32> = lists.iter().map(|&f| face_ids[f as usize]).collect();
        ids.sort_unstable();
        ids.dedup();
        let c = match ids.len() {
            0 => VertexClass::Interior,
            1 => VertexClass::Surface,
            2 => VertexClass::Edge,
            _ => VertexClass::Corner,
        };
        class.push(c);
        faces.push(ids);
    }
    VertexClasses { class, faces }
}

/// Convenience: extract facets, identify faces, classify (the full §4.3/4.4
/// pipeline on a mesh).
pub fn classify_mesh(mesh: &pmg_mesh::Mesh, tol: f64) -> VertexClasses {
    let _t = pmg_telemetry::scope("classify");
    let facets = pmg_mesh::boundary_facets(mesh);
    let adj = facet_adjacency(&facets);
    let ids = identify_faces(&facets, &adj, tol);
    classify_vertices(mesh.num_vertices(), &facets, &ids)
}

/// The same pipeline with the §4.5 parallel face identification: facets
/// are distributed geometrically (RCB of facet centroids, standing in for
/// the vertex-partition-induced distribution) and the per-processor face
/// ids merged through the face-id graph.
pub fn classify_mesh_parallel(mesh: &pmg_mesh::Mesh, tol: f64, nproc: usize) -> VertexClasses {
    let _t = pmg_telemetry::scope("classify");
    let facets = pmg_mesh::boundary_facets(mesh);
    let adj = facet_adjacency(&facets);
    if nproc <= 1 || facets.is_empty() {
        let ids = identify_faces(&facets, &adj, tol);
        return classify_vertices(mesh.num_vertices(), &facets, &ids);
    }
    let centroids = pmg_mesh::facet_centroids(mesh, &facets);
    let proc = pmg_partition::recursive_coordinate_bisection(&centroids, nproc);
    let ids = identify_faces_parallel(&facets, &adj, tol, &proc, nproc);
    classify_vertices(mesh.num_vertices(), &facets, &ids)
}

/// The classification pipeline run SPMD over a real [`Transport`](pmg_comm::Transport): same
/// facet distribution as [`classify_mesh_parallel`] (RCB of facet
/// centroids over `nproc` virtual processors), but the per-processor
/// face-identification passes execute on the transport ranks and merge
/// through [`identify_faces_transport`]'s allgather. Produces the
/// **bitwise-identical** [`VertexClasses`] on every rank — the oracle
/// parity `RankHierarchy::build_distributed` relies on.
pub fn classify_mesh_transport<T: pmg_comm::Transport>(
    t: &mut T,
    mesh: &pmg_mesh::Mesh,
    tol: f64,
    nproc: usize,
) -> Result<VertexClasses, pmg_comm::CommError> {
    let _t = pmg_telemetry::scope("classify");
    let facets = pmg_mesh::boundary_facets(mesh);
    let adj = facet_adjacency(&facets);
    if nproc <= 1 || facets.is_empty() {
        // Degenerate distribution: the serial pass is replicated (cheap,
        // deterministic, and identical on every rank by construction).
        let ids = identify_faces(&facets, &adj, tol);
        return Ok(classify_vertices(mesh.num_vertices(), &facets, &ids));
    }
    let centroids = pmg_mesh::facet_centroids(mesh, &facets);
    let proc = pmg_partition::recursive_coordinate_bisection(&centroids, nproc);
    let ids = identify_faces_transport(t, &facets, &adj, tol, &proc, nproc)?;
    Ok(classify_vertices(mesh.num_vertices(), &facets, &ids))
}

/// The modified MIS graph (§4.6): drop edges between exterior vertices
/// that share no face (so one feature cannot decimate another across a thin
/// region), and drop corner-corner edges entirely (corners are never
/// deleted).
pub fn modified_mis_graph(g: &Graph, classes: &VertexClasses) -> Graph {
    let n = g.num_vertices();
    let mut edges = Vec::new();
    for v in 0..n {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if v >= w {
                continue;
            }
            let cv = classes.class[v];
            let cw = classes.class[w];
            let both_exterior = cv != VertexClass::Interior && cw != VertexClass::Interior;
            if both_exterior {
                if cv == VertexClass::Corner && cw == VertexClass::Corner {
                    continue; // corners never suppress each other
                }
                let share = classes.faces[v]
                    .iter()
                    .any(|f| classes.faces[w].binary_search(f).is_ok());
                if !share {
                    continue;
                }
            }
            edges.push((v as u32, w as u32));
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmg_geometry::Vec3;
    use pmg_mesh::generators::{block, thin_plate};
    use pmg_mesh::{boundary_facets, facet_adjacency};

    #[test]
    fn cube_has_six_faces_and_correct_classes() {
        let m = block(3, 3, 3, Vec3::splat(1.0), |_| 0);
        let facets = boundary_facets(&m);
        let adj = facet_adjacency(&facets);
        let ids = identify_faces(&facets, &adj, 0.7);
        let mut unique: Vec<u32> = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 6, "a cube has six flat faces");
        let classes = classify_vertices(m.num_vertices(), &facets, &ids);
        assert_eq!(classes.count(VertexClass::Corner), 8);
        assert_eq!(classes.count(VertexClass::Edge), 12 * 2); // 2 interior verts per edge
        assert_eq!(classes.count(VertexClass::Surface), 6 * 4); // 4 per face
        assert_eq!(classes.count(VertexClass::Interior), 2 * 2 * 2);
    }

    #[test]
    fn classify_mesh_shortcut_matches() {
        let m = block(2, 2, 2, Vec3::splat(1.0), |_| 0);
        let c = classify_mesh(&m, 0.7);
        assert_eq!(c.count(VertexClass::Corner), 8);
        assert_eq!(c.count(VertexClass::Interior), 1);
    }

    #[test]
    fn interface_creates_faces() {
        // Two materials split a 2x1x1 bar: the interface plane is a face on
        // each side; every vertex is exterior.
        let m = block(2, 1, 1, Vec3::new(2.0, 1.0, 1.0), |c| {
            if c.x < 1.0 {
                0
            } else {
                1
            }
        });
        let c = classify_mesh(&m, 0.7);
        assert_eq!(c.count(VertexClass::Interior), 0);
        // The 4 interface vertices touch many faces -> corners.
        let interface: Vec<usize> = m
            .vertices_where(|p| (p.x - 1.0).abs() < 1e-12)
            .iter()
            .map(|&v| v as usize)
            .collect();
        for v in interface {
            assert_eq!(c.class[v], VertexClass::Corner);
        }
    }

    #[test]
    fn tol_controls_face_granularity() {
        // On a sphere-ish surface a loose TOL merges everything; TOL→1
        // fragments. Use the spheres mesh boundary as a curved surface.
        let m = pmg_mesh::sphere_in_cube(&pmg_mesh::SpheresParams::tiny());
        let facets = boundary_facets(&m);
        let adj = facet_adjacency(&facets);
        let loose = identify_faces(&facets, &adj, 0.2);
        let tight = identify_faces(&facets, &adj, 0.999);
        let count = |ids: &[u32]| {
            let mut u = ids.to_vec();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        assert!(count(&loose) < count(&tight));
    }

    #[test]
    fn parallel_face_id_equivalent_partition() {
        // The parallel algorithm must produce the same *partition* of
        // facets into faces as the serial one on a flat-faced mesh (ids
        // differ, groupings must not).
        let m = block(4, 3, 2, Vec3::new(4.0, 3.0, 2.0), |_| 0);
        let facets = boundary_facets(&m);
        let adj = facet_adjacency(&facets);
        let serial = identify_faces(&facets, &adj, 0.7);
        for nproc in [1, 2, 5] {
            let proc: Vec<u32> = (0..facets.len()).map(|f| (f % nproc) as u32).collect();
            let par = identify_faces_parallel(&facets, &adj, 0.7, &proc, nproc);
            // Same grouping: build normalized keys.
            let key = |ids: &[u32]| {
                let mut groups = std::collections::HashMap::new();
                let mut sig = Vec::new();
                for &id in ids {
                    let next = groups.len() as u32;
                    let e = groups.entry(id).or_insert(next);
                    sig.push(*e);
                }
                sig
            };
            assert_eq!(key(&serial), key(&par), "nproc={nproc}");
        }
    }

    #[test]
    fn transport_face_id_matches_serial_loop_exactly() {
        // The distributed §4.5 merge must reproduce identify_faces_parallel
        // bit for bit (same ids, not merely the same grouping), for any
        // rank count and processor count.
        let m = block(4, 3, 2, Vec3::new(4.0, 3.0, 2.0), |_| 0);
        let facets = boundary_facets(&m);
        let adj = facet_adjacency(&facets);
        for nproc in [1usize, 2, 5, 7] {
            let proc: Vec<u32> = (0..facets.len()).map(|f| (f % nproc) as u32).collect();
            let reference = identify_faces_parallel(&facets, &adj, 0.7, &proc, nproc);
            for nranks in [1usize, 2, 3] {
                let facets = facets.clone();
                let adj = adj.clone();
                let proc = proc.clone();
                let outs = pmg_comm::LocalTransport::run_ranks(nranks, move |mut t| {
                    identify_faces_transport(&mut t, &facets, &adj, 0.7, &proc, nproc).unwrap()
                });
                for (r, ids) in outs.iter().enumerate() {
                    assert_eq!(ids, &reference, "nproc={nproc} nranks={nranks} rank={r}");
                }
            }
        }
    }

    #[test]
    fn transport_classification_matches_parallel() {
        // Full pipeline parity on a curved boundary (spheres): transport
        // classification must equal classify_mesh_parallel exactly.
        let m = pmg_mesh::sphere_in_cube(&pmg_mesh::SpheresParams::tiny());
        for nproc in [2usize, 4] {
            let reference = classify_mesh_parallel(&m, 0.7, nproc);
            let outs = {
                let m = m.clone();
                pmg_comm::LocalTransport::run_ranks(2, move |mut t| {
                    classify_mesh_transport(&mut t, &m, 0.7, nproc).unwrap()
                })
            };
            for c in &outs {
                assert_eq!(c.class, reference.class, "nproc={nproc}");
                assert_eq!(c.faces, reference.faces, "nproc={nproc}");
            }
        }
    }

    #[test]
    fn modified_graph_protects_thin_plate() {
        // §4.6: on a thin plate the unmodified MIS lets the top surface
        // delete the bottom surface. The modified graph removes top-bottom
        // edges (different faces), so both surfaces keep vertices.
        let m = thin_plate(8, 8.0, 0.25);
        let g = m.vertex_graph();
        let c = classify_mesh(&m, 0.7);
        let mg = modified_mis_graph(&g, &c);
        assert!(mg.num_edges() < g.num_edges());
        // Check: no surviving edge connects a top-surface vertex to a
        // bottom-surface vertex.
        let top: Vec<bool> = m.coords.iter().map(|p| p.z > 0.2).collect();
        for v in 0..g.num_vertices() {
            if c.class[v] != VertexClass::Surface {
                continue;
            }
            for &w in mg.neighbors(v) {
                let w = w as usize;
                if c.class[w] == VertexClass::Surface {
                    assert_eq!(
                        top[v], top[w],
                        "surface-surface edge crosses the plate thickness"
                    );
                }
            }
        }
    }

    #[test]
    fn corner_corner_edges_removed() {
        let m = block(1, 1, 1, Vec3::splat(1.0), |_| 0);
        let g = m.vertex_graph();
        let c = classify_mesh(&m, 0.7);
        // All 8 vertices of a single hex are corners.
        assert_eq!(c.count(VertexClass::Corner), 8);
        let mg = modified_mis_graph(&g, &c);
        assert_eq!(mg.num_edges(), 0);
        // MIS on the modified graph selects all corners.
        let sel = crate::mis::greedy_mis(&mg, &(0..8).collect::<Vec<u32>>());
        assert!(sel.iter().all(|&s| s));
    }

    #[test]
    fn all_interior_passthrough() {
        let c = VertexClasses::all_interior(5);
        assert_eq!(c.ranks(), vec![0; 5]);
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]);
        let mg = modified_mis_graph(&g, &c);
        assert_eq!(mg, g);
    }
}
