//! Hierarchy fingerprints: one `u64` that identifies "the same solver
//! setup" across process boundaries.
//!
//! A multigrid hierarchy is a pure function of the fine mesh
//! (coordinates and connectivity) and the construction options, so a fingerprint over
//! exactly those inputs is a sound cache key for warm hierarchies: two
//! requests with equal fingerprints may share one setup (and one batched
//! solve), two requests with different fingerprints never may. The solver
//! daemon (`pmg-serve`) keys its warm-hierarchy cache on this value.
//!
//! The hash is the same FNV-1a scheme the symbolic caches already use
//! (`RapPlan`'s pattern fingerprint, the halo-plan ghost fingerprint, the
//! assembly geometry cache): fast, deterministic across runs, and with no
//! dependency on pointer identity. Coordinates are hashed by their exact
//! `f64` bit patterns — a perturbation below display precision still
//! changes the key, which is what bitwise-reproducible solves require.

use crate::mg::MgOptions;
use pmg_mesh::Mesh;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a over `u64` words.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn eat(&mut self, x: u64) {
        // Mix each byte so permuted words never collide by XOR symmetry.
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Fingerprint of a `(mesh, options)` pair: equal iff the fine grid
/// geometry, the element connectivity, and every hierarchy-construction
/// option agree. Coordinates hash by exact bit pattern (see the module
/// docs); options hash through their `Debug` rendering, which covers
/// every field — including nested [`crate::CoarsenOptions`] — so adding
/// an option later automatically widens the key.
pub fn solver_fingerprint(mesh: &Mesh, opts: &MgOptions) -> u64 {
    let mut h = Fnv::new();
    h.eat(mesh.coords.len() as u64);
    for p in &mesh.coords {
        h.eat(p.x.to_bits());
        h.eat(p.y.to_bits());
        h.eat(p.z.to_bits());
    }
    h.eat(mesh.kind.nodes() as u64);
    h.eat(mesh.elem_verts.len() as u64);
    for &v in &mesh.elem_verts {
        h.eat(u64::from(v));
    }
    h.eat(mesh.materials.len() as u64);
    for &m in &mesh.materials {
        h.eat(u64::from(m));
    }
    let rendered = format!("{opts:?}");
    h.eat(rendered.len() as u64);
    for b in rendered.into_bytes() {
        h.eat(u64::from(b));
    }
    h.0
}

/// The fingerprint as the fixed-width hex string used on the wire and in
/// request logs.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse a [`fingerprint_hex`] rendering back to the key.
pub fn parse_fingerprint_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmg_geometry::Vec3;
    use pmg_mesh::generators::block;

    #[test]
    fn identical_inputs_agree() {
        let m = block(3, 3, 3, Vec3::splat(1.0), |_| 0);
        let opts = MgOptions::default();
        assert_eq!(
            solver_fingerprint(&m, &opts),
            solver_fingerprint(&m.clone(), &opts)
        );
    }

    #[test]
    fn coordinate_perturbation_changes_the_key() {
        let m = block(3, 3, 3, Vec3::splat(1.0), |_| 0);
        let opts = MgOptions::default();
        let base = solver_fingerprint(&m, &opts);
        let mut moved = m.clone();
        // A perturbation far below display precision must still change
        // the key: solves on the two meshes differ bitwise.
        moved.coords[5].x += 1e-14;
        assert_ne!(base, solver_fingerprint(&moved, &opts));
    }

    #[test]
    fn connectivity_change_changes_the_key() {
        let m = block(3, 3, 3, Vec3::splat(1.0), |_| 0);
        let opts = MgOptions::default();
        let base = solver_fingerprint(&m, &opts);
        let mut relabeled = m.clone();
        relabeled.elem_verts.swap(0, 1);
        assert_ne!(base, solver_fingerprint(&relabeled, &opts));
    }

    #[test]
    fn option_changes_change_the_key() {
        let m = block(3, 3, 3, Vec3::splat(1.0), |_| 0);
        let base = solver_fingerprint(&m, &MgOptions::default());
        let coarser = MgOptions {
            coarse_dof_threshold: 150,
            ..Default::default()
        };
        assert_ne!(base, solver_fingerprint(&m, &coarser));
        let wcycle = MgOptions {
            cycle: crate::CycleType::W,
            ..Default::default()
        };
        assert_ne!(base, solver_fingerprint(&m, &wcycle));
        // Nested coarsening options widen the key too.
        let tol = MgOptions {
            coarsen: crate::CoarsenOptions {
                face_tol: 0.71,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_ne!(base, solver_fingerprint(&m, &tol));
    }

    #[test]
    fn hex_roundtrip() {
        let m = block(2, 2, 2, Vec3::splat(1.0), |_| 0);
        let fp = solver_fingerprint(&m, &MgOptions::default());
        let hex = fingerprint_hex(fp);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_fingerprint_hex(&hex), Some(fp));
        assert_eq!(parse_fingerprint_hex("xyz"), None);
        assert_eq!(parse_fingerprint_hex(""), None);
    }
}
