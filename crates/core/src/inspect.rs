//! Hierarchy inspection helpers (the paper's Figure 7 view): build the
//! coarsening ladder of a mesh and report per-level statistics, plus a
//! Wavefront OBJ export of each coarse tetrahedral grid.

use crate::classify::{classify_mesh, VertexClass};
use crate::coarsen::{coarsen_level, CoarsenOptions};
use pmg_geometry::Vec3;
use pmg_mesh::Mesh;

/// Statistics of one grid in the coarsening ladder.
pub struct LevelInfo {
    /// Vertices on this grid.
    pub vertices: usize,
    /// Elements on this grid.
    pub elements: usize,
    /// Fine vertices that fell back to nearest-vertex interpolation when
    /// this grid was built (0 on the fine grid).
    pub lost: usize,
    /// Interior-classified vertices.
    pub interior: usize,
    /// Surface-classified vertices.
    pub surface: usize,
    /// Edge-classified vertices.
    pub edge: usize,
    /// Corner-classified vertices.
    pub corner: usize,
    /// OBJ model of the grid (coarse tet grids only).
    pub obj: Option<String>,
}

/// Coarsen `mesh` up to `max_levels` times and report each grid.
pub fn classify_mesh_levels(
    mesh: &Mesh,
    opts: &CoarsenOptions,
    max_levels: usize,
) -> Vec<LevelInfo> {
    let mut out = Vec::new();
    let classes = classify_mesh(mesh, opts.face_tol);
    out.push(LevelInfo {
        vertices: mesh.num_vertices(),
        elements: mesh.num_elements(),
        lost: 0,
        interior: classes.count(VertexClass::Interior),
        surface: classes.count(VertexClass::Surface),
        edge: classes.count(VertexClass::Edge),
        corner: classes.count(VertexClass::Corner),
        obj: None,
    });

    let mut coords = mesh.coords.clone();
    let mut graph = mesh.vertex_graph();
    let mut cls = classes;
    for level in 1..max_levels {
        if coords.len() < 30 {
            break;
        }
        let mut o = *opts;
        o.reclassify = level >= 2;
        let lvl = coarsen_level(&coords, &graph, &cls, &o);
        out.push(LevelInfo {
            vertices: lvl.selected.len(),
            elements: lvl.tets.len(),
            lost: lvl.lost_vertices,
            interior: lvl.classes.count(VertexClass::Interior),
            surface: lvl.classes.count(VertexClass::Surface),
            edge: lvl.classes.count(VertexClass::Edge),
            corner: lvl.classes.count(VertexClass::Corner),
            obj: Some(tets_to_obj(&lvl.coords, &lvl.tets)),
        });
        coords = lvl.coords;
        graph = lvl.graph;
        cls = lvl.classes;
    }
    out
}

/// Wavefront OBJ of a tetrahedral grid (all four faces of every tet).
pub fn tets_to_obj(coords: &[Vec3], tets: &[[u32; 4]]) -> String {
    let mut s = String::with_capacity(coords.len() * 32 + tets.len() * 64);
    for p in coords {
        s.push_str(&format!("v {} {} {}\n", p.x, p.y, p.z));
    }
    // Positive-volume tet faces (outward): see ElementKind::Tet4.
    const FACES: [[usize; 3]; 4] = [[0, 2, 1], [0, 3, 2], [0, 1, 3], [1, 2, 3]];
    for t in tets {
        for f in FACES {
            // OBJ indices are 1-based.
            s.push_str(&format!(
                "f {} {} {}\n",
                t[f[0]] + 1,
                t[f[1]] + 1,
                t[f[2]] + 1
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmg_mesh::generators::cube;

    #[test]
    fn ladder_reports_levels() {
        let m = cube(5);
        let info = classify_mesh_levels(&m, &CoarsenOptions::default(), 4);
        assert!(info.len() >= 2);
        assert_eq!(info[0].vertices, 216);
        assert_eq!(info[0].corner, 8);
        for w in info.windows(2) {
            assert!(w[1].vertices < w[0].vertices);
        }
        // Class counts partition the vertex set.
        for l in &info {
            assert_eq!(l.interior + l.surface + l.edge + l.corner, l.vertices);
        }
    }

    #[test]
    fn obj_export_format() {
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let obj = tets_to_obj(&coords, &[[0, 1, 2, 3]]);
        assert_eq!(
            obj.matches("\nf ").count() + usize::from(obj.starts_with("f ")),
            4
        );
        assert_eq!(obj.matches("v ").count(), 4);
        assert!(obj.contains("f 1 3 2"));
    }
}
