//! The top-level solver API ("Prometheus" proper): give it a fine grid and
//! an assembled operator, get solutions back — with the whole simulated
//! parallel machine and its per-phase statistics inside.

use crate::classify::VertexClasses;
use crate::mg::{MgHierarchy, MgOptions};
use pmg_geometry::Vec3;
use pmg_mesh::Mesh;
use pmg_parallel::{DistVec, MachineModel, PhaseStats, Sim};
use pmg_partition::Graph;
use pmg_solver::{pcg, pcg_multi_each, PcgOptions, PcgResult};
use pmg_sparse::{CsrMatrix, MatrixFreeFactory};
use std::collections::BTreeMap;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct PrometheusOptions {
    /// Hierarchy construction and cycling options.
    pub mg: MgOptions,
    /// Virtual ranks of the simulated machine.
    pub nranks: usize,
    /// BSP machine model the simulated ranks are charged against.
    pub model: MachineModel,
    /// Face identification tolerance for the fine-grid classification.
    pub face_tol: f64,
    /// Krylov iteration cap.
    pub max_iters: usize,
}

impl Default for PrometheusOptions {
    fn default() -> Self {
        PrometheusOptions {
            mg: MgOptions::default(),
            nranks: 1,
            model: MachineModel::default(),
            face_tol: 0.7,
            max_iters: 200,
        }
    }
}

/// Summary of one linear solve.
#[derive(Clone, Debug)]
pub struct SolveSummary {
    /// Krylov iterations taken.
    pub iterations: usize,
    /// Whether the relative-residual tolerance was reached.
    pub converged: bool,
    /// Final preconditioned relative residual.
    pub rel_residual: f64,
}

/// The solver: a multigrid hierarchy bound to a simulated machine.
pub struct Prometheus {
    /// The simulated parallel machine (virtual ranks + BSP accounting).
    pub sim: Sim,
    /// The multigrid hierarchy the setup built.
    pub mg: MgHierarchy,
    opts: PrometheusOptions,
    /// Dedicated thread pool when `MgOptions::threads` is `Some(n)`;
    /// otherwise all parallel kernels run on the process-global pool.
    pool: Option<rayon::ThreadPool>,
}

/// Build the dedicated pool requested by the options, if any.
fn pool_for(opts: &PrometheusOptions) -> Option<rayon::ThreadPool> {
    opts.mg.threads.map(|n| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool build is infallible")
    })
}

/// Run `f` on the solver's pool (or inline on the current one).
fn on_pool<R>(pool: &Option<rayon::ThreadPool>, f: impl FnOnce() -> R) -> R {
    match pool {
        Some(p) => p.install(f),
        None => f(),
    }
}

impl Prometheus {
    /// Build from a finite element mesh and its assembled operator (3 dofs
    /// per vertex). This is the paper's usage: the solver needs only data
    /// "easily available in most finite element codes".
    pub fn from_mesh(mesh: &Mesh, a: &CsrMatrix, opts: PrometheusOptions) -> Prometheus {
        let _t = pmg_telemetry::scope("setup");
        let pool = pool_for(&opts);
        let (sim, mg) = on_pool(&pool, || {
            let mut sim = Sim::new(opts.nranks, opts.model);
            sim.phase("mesh setup");
            let graph = mesh.vertex_graph();
            let classes = crate::classify::classify_mesh_parallel(mesh, opts.face_tol, opts.nranks);
            let mg = MgHierarchy::build(&mut sim, a, &mesh.coords, &graph, &classes, opts.mg);
            (sim, mg)
        });
        Prometheus {
            sim,
            mg,
            opts,
            pool,
        }
    }

    /// [`from_mesh`](Self::from_mesh) with a matrix-free factory for the
    /// fine-grid apply. Pass `MgOptions { fine_operator: MatrixFree, .. }`
    /// to route every solve-time level-0 `A x` through the factory's
    /// element-loop kernels; the assembled `a` is still consumed for the
    /// Galerkin coarse grids and the smoother factorizations.
    pub fn from_mesh_matrix_free(
        mesh: &Mesh,
        a: &CsrMatrix,
        opts: PrometheusOptions,
        factory: &dyn MatrixFreeFactory,
    ) -> Prometheus {
        let _t = pmg_telemetry::scope("setup");
        let pool = pool_for(&opts);
        let (sim, mg) = on_pool(&pool, || {
            let mut sim = Sim::new(opts.nranks, opts.model);
            sim.phase("mesh setup");
            let graph = mesh.vertex_graph();
            let classes = crate::classify::classify_mesh_parallel(mesh, opts.face_tol, opts.nranks);
            let mg = MgHierarchy::build_with_factory(
                &mut sim,
                a,
                &mesh.coords,
                &graph,
                &classes,
                opts.mg,
                Some(factory),
            );
            (sim, mg)
        });
        Prometheus {
            sim,
            mg,
            opts,
            pool,
        }
    }

    /// Build from raw grid data (coords + vertex graph + classification).
    pub fn from_graph(
        a: &CsrMatrix,
        coords: &[Vec3],
        graph: &Graph,
        classes: &VertexClasses,
        opts: PrometheusOptions,
    ) -> Prometheus {
        let _t = pmg_telemetry::scope("setup");
        let pool = pool_for(&opts);
        let (sim, mg) = on_pool(&pool, || {
            let mut sim = Sim::new(opts.nranks, opts.model);
            let mg = MgHierarchy::build(&mut sim, a, coords, graph, classes, opts.mg);
            (sim, mg)
        });
        Prometheus {
            sim,
            mg,
            opts,
            pool,
        }
    }

    /// Solve `A x = b` to relative tolerance `rtol` with FMG-preconditioned
    /// CG, starting from `x0` (zeros if `None`). Returns the solution and
    /// the Krylov statistics; work is charged to the sim phase `"solve"`.
    pub fn solve(&mut self, b: &[f64], x0: Option<&[f64]>, rtol: f64) -> (Vec<f64>, PcgResult) {
        let _t = pmg_telemetry::scope("solve");
        let pool = self.pool.take();
        let out = on_pool(&pool, || {
            let layout = self.mg.levels[0].a.row_layout().clone();
            assert_eq!(b.len(), layout.num_global());
            self.sim.phase("solve");
            let db = DistVec::from_global(layout.clone(), b);
            let mut dx = match x0 {
                Some(x) => DistVec::from_global(layout, x),
                None => DistVec::zeros(layout),
            };
            let res = pcg(
                &mut self.sim,
                self.mg.fine_op(),
                &self.mg,
                &db,
                &mut dx,
                PcgOptions {
                    rtol,
                    max_iters: self.opts.max_iters,
                    ..Default::default()
                },
            );
            (dx.to_global(), res)
        });
        self.pool = pool;
        out
    }

    /// Solve `k` systems `A xs[c] = bs[c]` in one blocked PCG sweep: the
    /// operator is applied once per iteration for all columns
    /// ([`pmg_sparse::Operator::apply_multi`] / SpMM underneath) while each
    /// column keeps its own Krylov recurrence and its own `rtol`. Column
    /// `c`'s solution and statistics are **bitwise identical** to
    /// `self.solve(&bs[c], None, rtols[c])` — this is the entry the
    /// `pmg-serve` daemon routes coalesced concurrent requests through,
    /// where that guarantee is what makes batching transparent to clients.
    pub fn solve_multi(&mut self, bs: &[Vec<f64>], rtols: &[f64]) -> Vec<(Vec<f64>, PcgResult)> {
        let _t = pmg_telemetry::scope("solve");
        assert_eq!(bs.len(), rtols.len(), "one rtol per right-hand side");
        if bs.is_empty() {
            return Vec::new();
        }
        let pool = self.pool.take();
        let out = on_pool(&pool, || {
            let layout = self.mg.levels[0].a.row_layout().clone();
            self.sim.phase("solve");
            let dbs: Vec<DistVec> = bs
                .iter()
                .map(|b| {
                    assert_eq!(b.len(), layout.num_global());
                    DistVec::from_global(layout.clone(), b)
                })
                .collect();
            let mut dxs: Vec<DistVec> = (0..bs.len())
                .map(|_| DistVec::zeros(layout.clone()))
                .collect();
            let opts_each: Vec<PcgOptions> = rtols
                .iter()
                .map(|&rtol| PcgOptions {
                    rtol,
                    max_iters: self.opts.max_iters,
                    ..Default::default()
                })
                .collect();
            let res = pcg_multi_each(
                &mut self.sim,
                self.mg.fine_op(),
                &self.mg,
                &dbs,
                &mut dxs,
                &opts_each,
            );
            dxs.iter().map(DistVec::to_global).zip(res).collect()
        });
        self.pool = pool;
        out
    }

    /// Replace the operator (new Newton tangent on the same mesh): re-runs
    /// only the matrix-setup phase, keeping the grid hierarchy.
    pub fn update_matrix(&mut self, a: &CsrMatrix) {
        let _t = pmg_telemetry::scope("setup");
        let pool = self.pool.take();
        on_pool(&pool, || self.mg.update_operator(&mut self.sim, a));
        self.pool = pool;
    }

    /// Grid sizes, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.mg.level_sizes()
    }

    /// Consume the solver and return the per-phase machine statistics.
    pub fn finish(self) -> BTreeMap<String, PhaseStats> {
        self.sim.finish()
    }

    /// Snapshot the process-global telemetry and bridge this solver's BSP
    /// machine-model phases (`"mesh setup"`, `"matrix setup"`, `"solve"`)
    /// into the same [`pmg_telemetry::Report`], so wall-clock scopes and
    /// modeled times land in one artifact. Unlike [`Prometheus::finish`]
    /// this does not consume the solver (the in-progress sim phase's wall
    /// time is not yet closed out).
    pub fn report(&self) -> pmg_telemetry::Report {
        // Publish the thread pool's cumulative scheduling stats as
        // `pool/*` gauges so they ride along in the snapshot (gauges, not
        // counters, so repeated report() calls don't double-count).
        let stats = match &self.pool {
            Some(p) => p.stats(),
            None => rayon::current_pool_stats(),
        };
        pmg_telemetry::gauge_set("pool/threads", stats.threads as f64);
        pmg_telemetry::gauge_set("pool/batches", stats.batches as f64);
        pmg_telemetry::gauge_set("pool/tasks", stats.tasks as f64);
        pmg_telemetry::gauge_set("pool/stolen_tasks", stats.stolen_tasks as f64);
        let mut report = pmg_telemetry::snapshot();
        let names: Vec<String> = self.sim.phase_names().map(str::to_string).collect();
        for name in names {
            let stats = self.sim.stats(&name).expect("listed phase exists");
            report.add_sim_phase(sim_phase_record(&name, stats));
        }
        report
    }
}

/// Convert one BSP-sim phase into the telemetry report's bridged form.
pub fn sim_phase_record(name: &str, stats: &PhaseStats) -> pmg_telemetry::SimPhaseRecord {
    pmg_telemetry::SimPhaseRecord {
        name: name.to_string(),
        modeled_s: stats.modeled_time,
        modeled_comm_s: stats.modeled_comm_time,
        wall_s: stats.wall_time,
        total_flops: stats.total_flops(),
        max_flops: stats.max_flops(),
        total_msgs: stats.ranks.iter().map(|r| r.msgs).sum(),
        total_bytes: stats.ranks.iter().map(|r| r.bytes).sum(),
        supersteps: stats.supersteps,
        load_balance: stats.load_balance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmg_fem::{FemProblem, LinearElastic};
    use pmg_mesh::generators::block;
    use std::sync::Arc;

    /// A small elasticity problem with Dirichlet conditions applied.
    fn elasticity_system(n: usize) -> (Mesh, CsrMatrix, Vec<f64>) {
        let mesh = block(n, n, n, Vec3::splat(1.0), |_| 0);
        let ndof = mesh.num_dof();
        let mut fem = FemProblem::new(
            mesh.clone(),
            vec![Arc::new(LinearElastic::from_e_nu(1.0, 0.3))],
        );
        let (k, _) = fem.assemble(&vec![0.0; ndof]);
        // Clamp the z=0 face, pull the top face in z.
        let mut fixed = Vec::new();
        for (v, p) in mesh.coords.iter().enumerate() {
            if p.z == 0.0 {
                for c in 0..3 {
                    fixed.push((3 * v as u32 + c, 0.0));
                }
            }
        }
        let mut f = vec![0.0; ndof];
        for (v, p) in mesh.coords.iter().enumerate() {
            if p.z == 1.0 {
                f[3 * v + 2] = 0.01;
            }
        }
        let (kc, rhs) = pmg_fem::bc::constrain_system(&k, &f, &fixed);
        // rhs = -f; we want to solve K u = f, so negate.
        let b: Vec<f64> = rhs.iter().map(|v| -v).collect();
        (mesh, kc, b)
    }

    #[test]
    fn solves_3d_elasticity_with_mg() {
        let (mesh, k, b) = elasticity_system(6); // 1029 dof
        let opts = PrometheusOptions {
            nranks: 2,
            mg: MgOptions {
                coarse_dof_threshold: 200,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut solver = Prometheus::from_mesh(&mesh, &k, opts);
        assert!(solver.level_sizes().len() >= 2);
        let (x, res) = solver.solve(&b, None, 1e-8);
        assert!(res.converged, "{res:?}");
        assert!(res.iterations < 60, "{} iterations", res.iterations);
        let mut ax = vec![0.0; b.len()];
        k.spmv(&x, &mut ax);
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-6 * bn);
        // Phase stats exist.
        let phases = solver.finish();
        assert!(phases.contains_key("solve"));
        assert!(phases.contains_key("matrix setup"));
        assert!(phases["solve"].total_flops() > 0);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (mesh, k, b) = elasticity_system(5);
        let opts = PrometheusOptions {
            mg: MgOptions {
                coarse_dof_threshold: 150,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut solver = Prometheus::from_mesh(&mesh, &k, opts);
        let (x, _) = solver.solve(&b, None, 1e-10);
        let (_, res2) = solver.solve(&b, Some(&x), 1e-10);
        assert_eq!(res2.iterations, 0, "warm start from the answer");
    }

    #[test]
    fn solve_multi_k1_is_bitwise_the_scalar_path() {
        let (mesh, k, b) = elasticity_system(5);
        let opts = PrometheusOptions {
            mg: MgOptions {
                coarse_dof_threshold: 150,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut scalar = Prometheus::from_mesh(&mesh, &k, opts);
        let (x, res) = scalar.solve(&b, None, 1e-8);
        let mut multi = Prometheus::from_mesh(&mesh, &k, opts);
        let mut out = multi.solve_multi(std::slice::from_ref(&b), &[1e-8]);
        assert_eq!(out.len(), 1);
        let (x1, res1) = out.pop().unwrap();
        assert_eq!(res1.iterations, res.iterations);
        assert_eq!(res1.converged, res.converged);
        for (a, b) in x1.iter().zip(&x) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "k=1 batch must match solve() bitwise"
            );
        }
    }

    #[test]
    fn solve_multi_columns_match_independent_solves() {
        let (mesh, k, b) = elasticity_system(5);
        let b2: Vec<f64> = b.iter().map(|v| 2.5 * v + 1e-3).collect();
        let opts = PrometheusOptions {
            mg: MgOptions {
                coarse_dof_threshold: 150,
                ..Default::default()
            },
            ..Default::default()
        };
        let rtols = [1e-8, 1e-5];
        let mut multi = Prometheus::from_mesh(&mesh, &k, opts);
        let out = multi.solve_multi(&[b.clone(), b2.clone()], &rtols);
        assert_eq!(out.len(), 2);
        for (c, rhs) in [b, b2].iter().enumerate() {
            let mut solo = Prometheus::from_mesh(&mesh, &k, opts);
            let (x, res) = solo.solve(rhs, None, rtols[c]);
            assert_eq!(out[c].1.iterations, res.iterations, "column {c}");
            for (a, b) in out[c].0.iter().zip(&x) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "column {c} differs from solo solve"
                );
            }
        }
    }
}
