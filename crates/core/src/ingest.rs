//! Partition-at-ingest: plan per-rank seeds at load time so compute ranks
//! never materialize the global fine problem (§5).
//!
//! The paper's Athena reader partitions the finite element graph *before*
//! any processor builds a stiffness matrix. This module is that seam for
//! the SPMD setup: whatever loads the mesh (rank 0, or a file reader) runs
//! [`plan_ingest`] once against the fine geometry and produces one
//! [`RankSeed`] per rank. A seed carries everything
//! [`crate::spmd::RankHierarchy::build_from_shards`] needs that cannot be
//! computed from owned data alone:
//!
//! * the fine vertex partition (4 bytes/vertex of layout metadata — the
//!   one global-length array a rank keeps, needed for ghost-owner lookups;
//!   no global mesh, matrix, or dof vector is ever shipped),
//! * this rank's **owned rows** of the level-0 scalar restriction, plus
//!   the transposed-restriction rows for the fine vertices the rank's
//!   Galerkin product can touch (owned vertices ∪ restriction support ∪
//!   its one-ring graph closure — a superset is harmless, a miss is a
//!   panic in `rap_local_rows`),
//! * the replicated **coarse** (level-1) geometry: coordinates, graph,
//!   classification. Coarse grids shrink geometrically (§5), so
//!   replicating their geometry — exactly what the distributed setup
//!   already does from level 1 on — costs O(N/c) per rank, while the
//!   coarse *operators* stay owned-share (see `build_from_shards`).
//!
//! The level-0 coarsening runs in-process here with `nproc = nranks`
//! virtual processors, which is bitwise identical to the transport MIS the
//! ranks would have run (`transport_coarsening_matches_in_process_exactly`
//! pins it) — so a hierarchy grown from seeds matches the extract oracle
//! bit for bit.

use crate::classify::{VertexClass, VertexClasses};
use crate::coarsen::coarsen_level;
use crate::mg::MgOptions;
use pmg_comm::{CommError, Transport};
use pmg_geometry::Vec3;
use pmg_parallel::Layout;
use pmg_partition::{recursive_coordinate_bisection, Graph};
use pmg_sparse::CsrMatrix;

/// Level-0 coarsening share of one rank's seed (absent when the fine grid
/// is already the coarsest level).
#[derive(Clone, Debug)]
pub struct CoarseSeed {
    /// This rank's owned rows of the scalar restriction (row `l` is the
    /// coarse vertex `owned[l]` of the coarse RCB layout; columns are
    /// global fine vertex ids).
    pub r_rows: CsrMatrix,
    /// Scalar transposed-restriction rows for the fine vertices in
    /// [`rt_ids`](CoarseSeed::rt_ids) (columns are global coarse ids).
    pub rt_rows: CsrMatrix,
    /// Ascending global fine vertex ids of `rt_rows`: owned vertices ∪
    /// restriction support ∪ one-ring closure.
    pub rt_ids: Vec<u32>,
    /// Coarse (level-1) vertex coordinates, replicated.
    pub coords: Vec<Vec3>,
    /// Coarse vertex connectivity, replicated.
    pub graph: Graph,
    /// Coarse vertex classification, replicated.
    pub classes: VertexClasses,
}

/// One rank's ingest payload: partition metadata plus its level-0
/// coarsening share.
#[derive(Clone, Debug)]
pub struct RankSeed {
    /// This seed's rank.
    pub rank: u32,
    /// Ranks in the partition.
    pub nranks: u32,
    /// Dofs per vertex the plan was built for.
    pub dofs: u32,
    /// Fine vertex → owning rank (the RCB partition over the fine
    /// coordinates; layout metadata, 4 bytes per global vertex).
    pub part: Vec<u32>,
    /// Ghost-closure element count per rank at partition time (empty when
    /// the problem was not sharded from a mesh). Drives the ingest-time
    /// `mg/level0/element_imbalance` gauge.
    pub elem_counts: Vec<u32>,
    /// The level-0 coarsening share; `None` when the fine grid is the
    /// bottom (tiny problem, `max_levels == 1`, or stalled coarsening).
    pub coarse: Option<CoarseSeed>,
}

/// The full ingest plan: one seed per rank. Lives only on the loading
/// side; compute ranks receive their seed through [`scatter_seeds`].
#[derive(Clone, Debug)]
pub struct IngestPlan {
    /// Per-rank seeds, indexed by rank.
    pub seeds: Vec<RankSeed>,
}

impl IngestPlan {
    /// The fine vertex partition shared by every seed (for carving mesh
    /// shards with `pmg_mesh::shard_mesh` against the same ownership).
    pub fn part(&self) -> &[u32] {
        &self.seeds[0].part
    }
}

/// Plan the ingest: partition the fine vertices (RCB over the
/// coordinates — identical to the layout every rank derives), run the
/// level-0 coarsening once, and split its restriction into per-rank owned
/// rows. `elem_counts` is the per-rank ghost-closure element count from
/// `pmg_mesh::shard_mesh` (pass `&[]` for problems not born from a mesh).
///
/// Mirrors the level-0 decisions of the distributed setup exactly: the
/// same bottom test, the same stall test, the same `CoarsenOptions`
/// derivation — so `build_from_shards` reproduces `build_distributed`'s
/// level structure bit for bit.
pub fn plan_ingest(
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    elem_counts: &[u32],
    nranks: usize,
    opts: &MgOptions,
) -> IngestPlan {
    let part = recursive_coordinate_bisection(coords, nranks);
    plan_ingest_with_part(coords, graph, classes, elem_counts, part, nranks, opts)
}

/// [`plan_ingest`] with an explicit fine ownership map instead of the RCB
/// partition — for external partitioners and for exercising degenerate
/// ownership (empty ranks) in tests. Note the bitwise-parity contract with
/// the replicated setup paths only holds for the RCB map those paths
/// derive themselves.
pub fn plan_ingest_with_part(
    coords: &[Vec3],
    graph: &Graph,
    classes: &VertexClasses,
    elem_counts: &[u32],
    part: Vec<u32>,
    nranks: usize,
    opts: &MgOptions,
) -> IngestPlan {
    assert_eq!(part.len(), coords.len(), "one owner per fine vertex");
    let dofs = opts.dofs_per_vertex;
    let n = coords.len() * dofs;

    let at_bottom = n <= opts.coarse_dof_threshold || opts.max_levels <= 1 || coords.len() < 24;
    let cl = if at_bottom {
        None
    } else {
        let mut copts = opts.coarsen;
        copts.nproc = nranks;
        // Paper: reclassify the third and subsequent grids — not level 0.
        copts.reclassify = false;
        let cl = coarsen_level(coords, graph, classes, &copts);
        let nc = cl.selected.len();
        if nc * 100 >= coords.len() * 95 || nc < 4 {
            None // stalled: the fine grid finishes with a direct solve
        } else {
            Some(cl)
        }
    };

    let mut seeds = Vec::with_capacity(nranks);
    match cl {
        None => {
            for r in 0..nranks {
                seeds.push(RankSeed {
                    rank: r as u32,
                    nranks: nranks as u32,
                    dofs: dofs as u32,
                    part: part.clone(),
                    elem_counts: elem_counts.to_vec(),
                    coarse: None,
                });
            }
        }
        Some(cl) => {
            let fine_vlayout = Layout::from_part(part.clone(), nranks);
            let cpart = recursive_coordinate_bisection(&cl.coords, nranks);
            let cvlayout = Layout::from_part(cpart, nranks);
            let rt_full = cl.restriction.transpose();
            for r in 0..nranks {
                let r_rows = cl.restriction.extract_rows(cvlayout.owned(r));
                // Fine vertices this rank's Galerkin product can touch:
                // the owned restriction support K plus its one-ring graph
                // closure (the assembled operator's pattern lives inside
                // the vertex adjacency), plus the rank's own fine vertices
                // (whose prolongation rows it owns).
                let mut rt_ids: Vec<u32> = r_rows.col_idx().iter().map(|&c| c as u32).collect();
                rt_ids.sort_unstable();
                rt_ids.dedup();
                let k_support = rt_ids.clone();
                for &k in &k_support {
                    rt_ids.extend_from_slice(graph.neighbors(k as usize));
                }
                rt_ids.extend_from_slice(fine_vlayout.owned(r));
                rt_ids.sort_unstable();
                rt_ids.dedup();
                let rt_rows = rt_full.extract_rows(&rt_ids);
                seeds.push(RankSeed {
                    rank: r as u32,
                    nranks: nranks as u32,
                    dofs: dofs as u32,
                    part: part.clone(),
                    elem_counts: elem_counts.to_vec(),
                    coarse: Some(CoarseSeed {
                        r_rows,
                        rt_rows,
                        rt_ids,
                        coords: cl.coords.clone(),
                        graph: cl.graph.clone(),
                        classes: cl.classes.clone(),
                    }),
                });
            }
        }
    }
    IngestPlan { seeds }
}

/// Ship each rank its seed: rank 0 (the loader) passes `Some(plan)`, every
/// other rank `None`; the seeds travel the binomial scatter tree and each
/// rank decodes only its own. Rank 0's copy never leaves its address space.
pub fn scatter_seeds<T: Transport>(
    t: &mut T,
    plan: Option<&IngestPlan>,
) -> Result<RankSeed, CommError> {
    let parts = plan.map(|p| {
        assert_eq!(p.seeds.len(), t.size(), "plan rank count");
        p.seeds.iter().map(|s| s.encode()).collect()
    });
    let mine = pmg_comm::scatter(t, parts)?;
    RankSeed::decode(&mine).ok_or_else(|| CommError::Invalid("malformed ingest seed".into()))
}

// --- byte codec -----------------------------------------------------------
//
// Little-endian, length-prefixed; f64s travel as raw bits so restriction
// weights and coordinates roundtrip bitwise.

const SEED_MAGIC: u32 = 0x504D_5344; // "PMSD"

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u32s(b: &mut Vec<u8>, v: &[u32]) {
    put_u32(b, v.len() as u32);
    for &x in v {
        put_u32(b, x);
    }
}

fn put_csr(b: &mut Vec<u8>, m: &CsrMatrix) {
    put_u32(b, m.nrows() as u32);
    put_u32(b, m.ncols() as u32);
    put_u32(b, m.nnz() as u32);
    for i in 0..m.nrows() {
        let (cols, _) = m.row(i);
        put_u32(b, cols.len() as u32);
    }
    for &c in m.col_idx() {
        put_u32(b, c as u32);
    }
    for &v in m.vals() {
        b.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn put_vec3s(b: &mut Vec<u8>, v: &[Vec3]) {
    put_u32(b, v.len() as u32);
    for p in v {
        for c in [p.x, p.y, p.z] {
            b.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
}

fn put_graph(b: &mut Vec<u8>, g: &Graph) {
    put_u32(b, g.num_vertices() as u32);
    for v in 0..g.num_vertices() {
        put_u32s(b, g.neighbors(v));
    }
}

fn put_classes(b: &mut Vec<u8>, c: &VertexClasses) {
    put_u32(b, c.class.len() as u32);
    for &cl in &c.class {
        b.push(cl as u8);
    }
    put_u32(b, c.faces.len() as u32);
    for f in &c.faces {
        put_u32s(b, f);
    }
}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl Cur<'_> {
    fn u32(&mut self) -> Option<u32> {
        let s = self.b.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn f64(&mut self) -> Option<f64> {
        let s = self.b.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
    }

    fn u32s(&mut self) -> Option<Vec<u32>> {
        let n = self.u32()? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Some(v)
    }

    fn csr(&mut self) -> Option<CsrMatrix> {
        let nrows = self.u32()? as usize;
        let ncols = self.u32()? as usize;
        let nnz = self.u32()? as usize;
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        for _ in 0..nrows {
            let len = self.u32()? as usize;
            row_ptr.push(row_ptr.last().unwrap() + len);
        }
        if *row_ptr.last().unwrap() != nnz {
            return None;
        }
        let mut col_idx = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let c = self.u32()? as usize;
            if c >= ncols {
                return None;
            }
            col_idx.push(c);
        }
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            vals.push(self.f64()?);
        }
        Some(CsrMatrix::from_parts(nrows, ncols, row_ptr, col_idx, vals))
    }

    fn vec3s(&mut self) -> Option<Vec<Vec3>> {
        let n = self.u32()? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let x = self.f64()?;
            let y = self.f64()?;
            let z = self.f64()?;
            v.push(Vec3::new(x, y, z));
        }
        Some(v)
    }

    fn graph(&mut self) -> Option<Graph> {
        let n = self.u32()? as usize;
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            adj.push(self.u32s()?);
        }
        Some(Graph::from_adjacency(&adj))
    }

    fn classes(&mut self) -> Option<VertexClasses> {
        let n = self.u32()? as usize;
        let mut class = Vec::with_capacity(n);
        for _ in 0..n {
            class.push(match self.u8()? {
                0 => VertexClass::Interior,
                1 => VertexClass::Surface,
                2 => VertexClass::Edge,
                3 => VertexClass::Corner,
                _ => return None,
            });
        }
        let nf = self.u32()? as usize;
        if nf != n {
            return None;
        }
        let mut faces = Vec::with_capacity(nf);
        for _ in 0..nf {
            faces.push(self.u32s()?);
        }
        Some(VertexClasses { class, faces })
    }
}

impl RankSeed {
    /// Serialize to the scatter payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, SEED_MAGIC);
        put_u32(&mut b, self.rank);
        put_u32(&mut b, self.nranks);
        put_u32(&mut b, self.dofs);
        put_u32s(&mut b, &self.part);
        put_u32s(&mut b, &self.elem_counts);
        match &self.coarse {
            None => put_u32(&mut b, 0),
            Some(c) => {
                put_u32(&mut b, 1);
                put_csr(&mut b, &c.r_rows);
                put_csr(&mut b, &c.rt_rows);
                put_u32s(&mut b, &c.rt_ids);
                put_vec3s(&mut b, &c.coords);
                put_graph(&mut b, &c.graph);
                put_classes(&mut b, &c.classes);
            }
        }
        b
    }

    /// Decode a payload produced by [`RankSeed::encode`]; `None` on a
    /// malformed buffer.
    pub fn decode(bytes: &[u8]) -> Option<RankSeed> {
        let mut c = Cur { b: bytes, at: 0 };
        if c.u32()? != SEED_MAGIC {
            return None;
        }
        let rank = c.u32()?;
        let nranks = c.u32()?;
        let dofs = c.u32()?;
        let part = c.u32s()?;
        let elem_counts = c.u32s()?;
        let coarse = match c.u32()? {
            0 => None,
            1 => Some(CoarseSeed {
                r_rows: c.csr()?,
                rt_rows: c.csr()?,
                rt_ids: c.u32s()?,
                coords: c.vec3s()?,
                graph: c.graph()?,
                classes: c.classes()?,
            }),
            _ => return None,
        };
        if c.at != bytes.len() {
            return None;
        }
        Some(RankSeed {
            rank,
            nranks,
            dofs,
            part,
            elem_counts,
            coarse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_mesh;
    use crate::mg::expand_restriction;
    use pmg_comm::LocalTransport;
    use pmg_sparse::RapPlan;

    fn fine_problem(n: usize) -> (Vec<Vec3>, Graph, VertexClasses, CsrMatrix) {
        let m = pmg_mesh::generators::cube(n);
        let g = m.vertex_graph();
        let classes = classify_mesh(&m, 0.7);
        let nv = m.num_vertices();
        let mut b = pmg_sparse::CooBuilder::new(nv, nv);
        for v in 0..nv {
            b.push(v, v, g.degree(v) as f64 + 1.0);
            for &w in g.neighbors(v) {
                b.push(v, w as usize, -1.0);
            }
        }
        (m.coords.clone(), g, classes, b.build())
    }

    #[test]
    fn seeds_split_the_level0_restriction_by_ownership() {
        let (coords, graph, classes, a) = fine_problem(6);
        let opts = MgOptions {
            dofs_per_vertex: 1,
            coarse_dof_threshold: 40,
            ..Default::default()
        };
        for p in [1usize, 2, 3] {
            let plan = plan_ingest(&coords, &graph, &classes, &[], p, &opts);
            assert_eq!(plan.seeds.len(), p);

            // Oracle: the same coarsening the seeds were carved from.
            let mut copts = opts.coarsen;
            copts.nproc = p;
            let cl = coarsen_level(&coords, &graph, &classes, &copts);
            let cpart = recursive_coordinate_bisection(&cl.coords, p);
            let cvlayout = Layout::from_part(cpart, p);
            let fine_vlayout = Layout::from_part(plan.part().to_vec(), p);

            let mut rows_seen = 0usize;
            for (r, seed) in plan.seeds.iter().enumerate() {
                let c = seed.coarse.as_ref().expect("coarsened");
                assert_eq!(c.r_rows.nrows(), cvlayout.owned(r).len());
                rows_seen += c.r_rows.nrows();
                // Owned rows are verbatim slices of the full restriction.
                for (l, &g) in cvlayout.owned(r).iter().enumerate() {
                    let (c1, v1) = cl.restriction.row(g as usize);
                    let (c2, v2) = c.r_rows.row(l);
                    assert_eq!(c1, c2);
                    assert_eq!(v1, v2);
                }
                // rt rows cover owned fine vertices and the support closure.
                for &g in fine_vlayout.owned(r) {
                    assert!(c.rt_ids.binary_search(&g).is_ok(), "rank {r} misses {g}");
                }
                // Replicated coarse geometry matches the oracle coarsening.
                assert_eq!(c.coords.len(), cl.coords.len());
                assert_eq!(c.graph.num_edges(), cl.graph.num_edges());
            }
            assert_eq!(rows_seen, cl.restriction.nrows());

            // The per-rank (r_rows, rt_rows) tiles reproduce the Galerkin
            // product bitwise through rap_local_rows.
            let r_dof = expand_restriction(&cl.restriction, 1);
            let mut rap = RapPlan::new(&a, &r_dof);
            for (r, seed) in plan.seeds.iter().enumerate() {
                let c = seed.coarse.as_ref().unwrap();
                let mut a_ids: Vec<u32> = c.r_rows.col_idx().iter().map(|&x| x as u32).collect();
                a_ids.sort_unstable();
                a_ids.dedup();
                let a_rows = a.extract_rows(&a_ids);
                let mine =
                    pmg_sparse::rap_local_rows(&c.r_rows, &a_ids, &a_rows, &c.rt_ids, &c.rt_rows);
                let expect = rap.execute_rows(&a, cvlayout.owned(r));
                let got: Vec<f64> = mine.vals().to_vec();
                assert_eq!(got.len(), expect.len(), "rank {r} segment length");
                for (x, y) in got.iter().zip(&expect) {
                    assert_eq!(x.to_bits(), y.to_bits(), "rank {r} Galerkin bits");
                }
            }
        }
    }

    #[test]
    fn tiny_problem_seeds_have_no_coarse_level() {
        let (coords, graph, classes, _) = fine_problem(2);
        let opts = MgOptions {
            dofs_per_vertex: 1,
            ..Default::default()
        };
        let plan = plan_ingest(&coords, &graph, &classes, &[4, 4], 2, &opts);
        for seed in &plan.seeds {
            assert!(seed.coarse.is_none());
            assert_eq!(seed.elem_counts, vec![4, 4]);
        }
    }

    #[test]
    fn seed_codec_roundtrips_bitwise_and_scatters() {
        let (coords, graph, classes, _) = fine_problem(5);
        let opts = MgOptions {
            dofs_per_vertex: 3,
            coarse_dof_threshold: 60,
            ..Default::default()
        };
        let plan = plan_ingest(&coords, &graph, &classes, &[9, 7, 8], 3, &opts);
        for seed in &plan.seeds {
            let bytes = seed.encode();
            let back = RankSeed::decode(&bytes).expect("decode");
            assert_eq!(back.rank, seed.rank);
            assert_eq!(back.part, seed.part);
            assert_eq!(back.elem_counts, seed.elem_counts);
            let (a, b) = (seed.coarse.as_ref().unwrap(), back.coarse.as_ref().unwrap());
            assert_eq!(a.rt_ids, b.rt_ids);
            assert_eq!(a.r_rows.vals(), b.r_rows.vals());
            assert_eq!(a.r_rows.col_idx(), b.r_rows.col_idx());
            assert_eq!(a.rt_rows.vals(), b.rt_rows.vals());
            for (p, q) in a.coords.iter().zip(&b.coords) {
                assert_eq!(p.x.to_bits(), q.x.to_bits());
            }
            for v in 0..a.graph.num_vertices() {
                assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
            }
            assert_eq!(a.classes.class, b.classes.class);
            assert_eq!(a.classes.faces, b.classes.faces);
            assert!(RankSeed::decode(&bytes[..bytes.len() - 2]).is_none());
        }

        // Rank 0 holds the plan; everyone receives exactly their seed.
        let plan_ref = &plan;
        let oks = LocalTransport::run_ranks(3, move |mut t| {
            let mine = if t.rank() == 0 { Some(plan_ref) } else { None };
            let seed = scatter_seeds(&mut t, mine).unwrap();
            seed.rank as usize == t.rank()
                && seed.coarse.as_ref().unwrap().r_rows.nrows()
                    == plan_ref.seeds[t.rank()]
                        .coarse
                        .as_ref()
                        .unwrap()
                        .r_rows
                        .nrows()
        });
        assert!(oks.into_iter().all(|ok| ok));
    }
}
