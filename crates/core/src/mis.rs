//! Maximal independent set coarsening (§4.1, §4.2, §4.7).
//!
//! The MIS picks the coarse vertex set: selected vertices survive to the
//! next grid, their neighbors are deleted. The *order* vertices are visited
//! controls the MIS density (natural orders give dense MISs near the 1/2³
//! bound on uniform hex meshes, random orders sparse ones near 1/3³), and a
//! per-vertex *rank* (the topological class) guarantees that a vertex is
//! never suppressed by a lower-ranked neighbor — the parallel algorithm
//! enforces the same dominance rule across processor boundaries.

use pmg_partition::{random_permutation, Graph};

/// Vertex visiting order heuristic (§4.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisOrdering {
    /// The input (or Cuthill–McKee) order: produces denser MISs.
    Natural,
    /// Seeded random order: produces sparser MISs.
    Random(u64),
    /// The paper's recommendation: natural order for exterior vertices,
    /// random for interior ones (keeps boundaries well articulated while
    /// thinning the interior aggressively).
    NaturalExteriorRandomInterior(u64),
    /// Cuthill–McKee order — the paper's example of a "cache optimizing"
    /// natural order. Requires the graph: use
    /// [`MisOrdering::order_with_graph`].
    CuthillMcKee,
}

impl MisOrdering {
    /// Produce the visit order for `n` vertices with the given ranks
    /// (rank 0 = interior). Higher ranks are always visited first. For
    /// [`MisOrdering::CuthillMcKee`] use [`MisOrdering::order_with_graph`];
    /// this method falls back to the natural order for it.
    pub fn order(self, n: usize, rank: &[u8]) -> Vec<u32> {
        assert_eq!(rank.len(), n);
        let base: Vec<u32> = match self {
            MisOrdering::Natural | MisOrdering::CuthillMcKee => (0..n as u32).collect(),
            MisOrdering::Random(seed) => random_permutation(n, seed),
            MisOrdering::NaturalExteriorRandomInterior(seed) => {
                let perm = random_permutation(n, seed);
                // Exterior keep natural relative order; interior take the
                // random relative order. (Classes are interleaved below by
                // the stable sort on rank.)
                let mut inv = vec![0u32; n];
                for (k, &v) in perm.iter().enumerate() {
                    inv[v as usize] = k as u32;
                }
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by_key(|&v| {
                    if rank[v as usize] > 0 {
                        (0u8, v) // exterior: natural order
                    } else {
                        (1u8, inv[v as usize]) // interior: random order
                    }
                });
                return sort_by_rank_stable(idx, rank);
            }
        };
        sort_by_rank_stable(base, rank)
    }
}

impl MisOrdering {
    /// Like [`MisOrdering::order`], but with the graph available so
    /// Cuthill–McKee can do its breadth-first traversal.
    pub fn order_with_graph(self, g: &Graph, rank: &[u8]) -> Vec<u32> {
        match self {
            MisOrdering::CuthillMcKee => {
                let cm = pmg_partition::cuthill_mckee(g);
                sort_by_rank_stable(cm, rank)
            }
            other => other.order(g.num_vertices(), rank),
        }
    }
}

/// Stable sort by descending rank, preserving the relative order within
/// each rank class.
fn sort_by_rank_stable(mut idx: Vec<u32>, rank: &[u8]) -> Vec<u32> {
    idx.sort_by_key(|&v| std::cmp::Reverse(rank[v as usize]));
    idx
}

/// The greedy serial MIS (Figure 2 of the paper): visit vertices in
/// `order`; an undone vertex is selected and its neighbors deleted.
/// Returns the selection mask.
///
/// ```
/// use pmg_partition::Graph;
/// use prometheus::greedy_mis;
/// // A path 0-1-2-3-4: natural order selects 0, 2, 4.
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let sel = greedy_mis(&g, &[0, 1, 2, 3, 4]);
/// assert_eq!(sel, vec![true, false, true, false, true]);
/// ```
pub fn greedy_mis(g: &Graph, order: &[u32]) -> Vec<bool> {
    let n = g.num_vertices();
    assert_eq!(order.len(), n);
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Undone,
        Selected,
        Deleted,
    }
    let mut state = vec![S::Undone; n];
    for &v in order {
        let v = v as usize;
        if state[v] == S::Undone {
            state[v] = S::Selected;
            for &w in g.neighbors(v) {
                state[w as usize] = S::Deleted;
            }
        }
    }
    state.iter().map(|&s| s == S::Selected).collect()
}

/// The partition-based parallel MIS (§4.2). Each vertex carries an
/// immutable `rank` and its owning `proc`; processor `p` may select a
/// vertex `v` only if every adjacent vertex `v1` is already deleted, or
/// `v.rank > v1.rank`, or (`v.rank == v1.rank` and `v.proc ≥ v1.proc`).
/// Each processor traverses its local vertices in the order induced by
/// `order`; rounds repeat until a fixed point. The result is a correct
/// global MIS respecting any rank heuristic.
///
/// Rounds are bulk-synchronous and the per-processor passes really run in
/// parallel on the workspace thread pool: within a round every processor
/// reads the round-start state for *remote* vertices and sees its *own*
/// selections/deletions immediately (a local overlay), then the
/// per-processor decision lists are merged in processor order. Two
/// processors can never select adjacent vertices in the same round — that
/// would require each to dominate the other under the (rank, proc) rule —
/// so the merge is conflict-free and the result is identical for any pool
/// size (each processor's pass depends only on the round-start snapshot).
pub fn parallel_mis(g: &Graph, rank: &[u8], proc: &[u32], order: &[u32]) -> Vec<bool> {
    use rayon::prelude::*;

    let n = g.num_vertices();
    assert_eq!(rank.len(), n);
    assert_eq!(proc.len(), n);
    assert_eq!(order.len(), n);

    let mut state = vec![S::Undone; n];
    let local = local_orders(proc, order);

    let mut rounds = 0u64;
    loop {
        rounds += 1;
        // Parallel half-round: every processor decides against the
        // round-start `state` (shared immutably) plus its own overlay.
        let decisions: Vec<(Vec<u32>, Vec<u32>)> = local
            .par_iter()
            .map(|plist| proc_pass(g, rank, proc, &state, plist))
            .collect();

        // Merge in processor order (conflict-free, see above).
        if !merge_decisions(&mut state, decisions.iter()) {
            break;
        }
    }
    pmg_telemetry::counter_add("mis/rounds", rounds);
    debug_assert!(
        state.iter().all(|&s| s != S::Undone),
        "MIS did not cover the graph"
    );
    state.iter().map(|&s| s == S::Selected).collect()
}

#[derive(Clone, Copy, PartialEq)]
enum S {
    Undone,
    Selected,
    Deleted,
}

/// Per-processor local traversal orders, indexed by processor id.
fn local_orders(proc: &[u32], order: &[u32]) -> Vec<Vec<u32>> {
    let nproc = proc.iter().map(|&p| p as usize + 1).max().unwrap_or(1);
    let mut local: Vec<Vec<u32>> = vec![Vec::new(); nproc];
    for &v in order {
        local[proc[v as usize] as usize].push(v);
    }
    local
}

/// One processor's pass of a BSP round: decide selections/deletions against
/// the round-start `state` snapshot plus an overlay of the processor's own
/// in-round updates (remote vertices keep their snapshot state until the
/// merge). Shared by the rayon and the [`Transport`](pmg_comm::Transport)
/// drivers so both make bit-for-bit the same decisions.
fn proc_pass(
    g: &Graph,
    rank: &[u8],
    proc: &[u32],
    state: &[S],
    plist: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let mut selected: Vec<u32> = Vec::new();
    let mut deleted: Vec<u32> = Vec::new();
    let mut overlay: std::collections::HashMap<u32, S> = std::collections::HashMap::new();
    let view = |overlay: &std::collections::HashMap<u32, S>, w: u32| {
        overlay.get(&w).copied().unwrap_or(state[w as usize])
    };
    for &v in plist {
        if view(&overlay, v) != S::Undone {
            continue;
        }
        let vu = v as usize;
        let selectable = g.neighbors(vu).iter().all(|&w| {
            let wu = w as usize;
            match view(&overlay, w) {
                S::Deleted => true,
                S::Selected => false,
                S::Undone => rank[vu] > rank[wu] || (rank[vu] == rank[wu] && proc[vu] >= proc[wu]),
            }
        });
        if selectable {
            overlay.insert(v, S::Selected);
            selected.push(v);
            for &w in g.neighbors(vu) {
                overlay.insert(w, S::Deleted);
                deleted.push(w);
            }
        }
    }
    (selected, deleted)
}

/// Merge per-processor decision lists (in processor order) into `state`.
/// Returns whether any vertex was selected this round.
fn merge_decisions<'a>(
    state: &mut [S],
    decisions: impl Iterator<Item = &'a (Vec<u32>, Vec<u32>)>,
) -> bool {
    let mut progress = false;
    for (selected, deleted) in decisions {
        for &v in selected {
            debug_assert!(state[v as usize] == S::Undone);
            state[v as usize] = S::Selected;
            progress = true;
        }
        for &w in deleted {
            debug_assert!(state[w as usize] != S::Selected);
            state[w as usize] = S::Deleted;
        }
    }
    progress
}

/// The same BSP MIS with the rounds' supersteps carried over a real
/// [`Transport`](pmg_comm::Transport): every transport rank owns the
/// processors `p` with `p % t.size() == t.rank()`, runs their passes against
/// its replica of the round-start state, and each round's decision lists are
/// exchanged with one deterministic allgather, then merged in processor
/// order on every rank. All ranks therefore hold identical replicas, make
/// identical progress decisions, and return the same mask as
/// [`parallel_mis`] bit for bit — it is the same algorithm, with the round
/// barrier realized by messages instead of a rayon join.
pub fn parallel_mis_transport<T: pmg_comm::Transport>(
    t: &mut T,
    g: &Graph,
    rank: &[u8],
    proc: &[u32],
    order: &[u32],
    tag: u32,
) -> Result<Vec<bool>, pmg_comm::CommError> {
    let n = g.num_vertices();
    assert_eq!(rank.len(), n);
    assert_eq!(proc.len(), n);
    assert_eq!(order.len(), n);

    let mut state = vec![S::Undone; n];
    let local = local_orders(proc, order);
    let nproc = local.len();

    let mut rounds = 0u64;
    loop {
        rounds += 1;
        // My processors' passes, recorded with their processor ids.
        let mine: ProcDecisions = (0..nproc)
            .filter(|p| p % t.size() == t.rank())
            .map(|p| (p as u32, proc_pass(g, rank, proc, &state, &local[p])))
            .collect();
        let blob = pack_decisions(&mine);
        let all = pmg_comm::allgather(t, &blob)?;

        // Re-key every rank's decisions by processor id and merge in
        // processor order — identical to the rayon merge.
        let mut by_proc: Vec<Option<(Vec<u32>, Vec<u32>)>> = vec![None; nproc];
        for rank_blob in &all {
            for (p, lists) in unpack_decisions(rank_blob)? {
                by_proc[p as usize] = Some(lists);
            }
        }
        let decisions: Vec<(Vec<u32>, Vec<u32>)> = by_proc.into_iter().flatten().collect();
        if !merge_decisions(&mut state, decisions.iter()) {
            break;
        }
    }
    if t.rank() == 0 {
        pmg_telemetry::counter_add("mis/rounds", rounds);
    }
    let _ = tag; // decisions travel in the allgather's collective tag
    debug_assert!(
        state.iter().all(|&s| s != S::Undone),
        "MIS did not cover the graph"
    );
    Ok(state.iter().map(|&s| s == S::Selected).collect())
}

/// One rank's share of a round: `(processor id, (selected, deleted))`.
type ProcDecisions = Vec<(u32, (Vec<u32>, Vec<u32>))>;

/// Wire format for one rank's round decisions:
/// `[nproc u32] ([proc u32][nsel u32][sel u32…][ndel u32][del u32…])*`,
/// all little-endian.
fn pack_decisions(mine: &ProcDecisions) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(mine.len() as u32).to_le_bytes());
    for (p, (sel, del)) in mine {
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&(sel.len() as u32).to_le_bytes());
        for v in sel {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(del.len() as u32).to_le_bytes());
        for v in del {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn unpack_decisions(buf: &[u8]) -> Result<ProcDecisions, pmg_comm::CommError> {
    let bad = || pmg_comm::CommError::Invalid("malformed MIS decision blob".into());
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Result<u32, pmg_comm::CommError> {
        let b = buf.get(*pos..*pos + 4).ok_or_else(bad)?;
        *pos += 4;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    };
    let count = take_u32(&mut pos)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let p = take_u32(&mut pos)?;
        let nsel = take_u32(&mut pos)? as usize;
        let mut sel = Vec::with_capacity(nsel);
        for _ in 0..nsel {
            sel.push(take_u32(&mut pos)?);
        }
        let ndel = take_u32(&mut pos)? as usize;
        let mut del = Vec::with_capacity(ndel);
        for _ in 0..ndel {
            del.push(take_u32(&mut pos)?);
        }
        out.push((p, (sel, del)));
    }
    if pos != buf.len() {
        return Err(bad());
    }
    Ok(out)
}

/// Check independence: no two selected vertices are adjacent.
pub fn is_independent(g: &Graph, sel: &[bool]) -> bool {
    for v in 0..g.num_vertices() {
        if !sel[v] {
            continue;
        }
        if g.neighbors(v).iter().any(|&w| sel[w as usize]) {
            return false;
        }
    }
    true
}

/// Check maximality: every unselected vertex has a selected neighbor.
pub fn is_maximal(g: &Graph, sel: &[bool]) -> bool {
    for v in 0..g.num_vertices() {
        if sel[v] {
            continue;
        }
        if !g.neighbors(v).iter().any(|&w| sel[w as usize]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    fn grid3(n: usize) -> Graph {
        // n^3 grid vertices adjacent iff they share a hex element => 26
        // neighbors: build via the mesh crate's machinery indirectly? Use a
        // simple 6-connected grid here; MIS properties don't depend on it.
        let id = |i: usize, j: usize, k: usize| (i * n * n + j * n + k) as u32;
        let mut e = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if i + 1 < n {
                        e.push((id(i, j, k), id(i + 1, j, k)));
                    }
                    if j + 1 < n {
                        e.push((id(i, j, k), id(i, j + 1, k)));
                    }
                    if k + 1 < n {
                        e.push((id(i, j, k), id(i, j, k + 1)));
                    }
                }
            }
        }
        Graph::from_edges(n * n * n, e)
    }

    #[test]
    fn greedy_path_natural() {
        let g = path(7);
        let sel = greedy_mis(&g, &(0..7).collect::<Vec<u32>>());
        // Natural order on a path selects 0, 2, 4, 6.
        assert_eq!(sel, vec![true, false, true, false, true, false, true]);
        assert!(is_independent(&g, &sel));
        assert!(is_maximal(&g, &sel));
    }

    #[test]
    fn natural_is_denser_than_random() {
        let g = grid3(10);
        let rank = vec![0u8; 1000];
        let nat = greedy_mis(&g, &MisOrdering::Natural.order(1000, &rank));
        let rnd = greedy_mis(&g, &MisOrdering::Random(5).order(1000, &rank));
        let n_nat = nat.iter().filter(|&&s| s).count();
        let n_rnd = rnd.iter().filter(|&&s| s).count();
        assert!(
            n_nat > n_rnd,
            "natural {n_nat} should exceed random {n_rnd}"
        );
        for sel in [&nat, &rnd] {
            assert!(is_independent(&g, sel));
            assert!(is_maximal(&g, sel));
        }
    }

    #[test]
    fn ranks_are_respected_by_parallel_mis() {
        // A star: center has rank 0, leaves rank 1 => all leaves selected.
        let n = 6;
        let g = Graph::from_edges(n, (1..n as u32).map(|i| (0, i)));
        let mut rank = vec![1u8; n];
        rank[0] = 0;
        let proc = vec![0u32; n];
        let order: Vec<u32> = (0..n as u32).collect();
        let sel = parallel_mis(&g, &rank, &proc, &order);
        assert!(!sel[0]);
        assert!(sel[1..].iter().all(|&s| s));
        assert!(is_independent(&g, &sel));
        assert!(is_maximal(&g, &sel));
    }

    #[test]
    fn parallel_mis_multiproc_consistent() {
        let g = grid3(6);
        let n = g.num_vertices();
        let rank = vec![0u8; n];
        let order: Vec<u32> = (0..n as u32).collect();
        for nproc in [1, 2, 7] {
            let proc: Vec<u32> = (0..n).map(|v| (v % nproc) as u32).collect();
            let sel = parallel_mis(&g, &rank, &proc, &order);
            assert!(is_independent(&g, &sel), "nproc={nproc}");
            assert!(is_maximal(&g, &sel), "nproc={nproc}");
        }
    }

    #[test]
    fn uniform_grid_mis_ratio_bounds() {
        // §4.7: on a uniform 3D mesh the MIS fraction lies between 1/27 and
        // 1/8 (asymptotically; allow slack on a finite 6-connected grid).
        let g = grid3(12);
        let n = g.num_vertices();
        let rank = vec![0u8; n];
        for ordering in [MisOrdering::Natural, MisOrdering::Random(42)] {
            let sel = greedy_mis(&g, &ordering.order(n, &rank));
            let frac = sel.iter().filter(|&&s| s).count() as f64 / n as f64;
            // 6-connected grid MIS is denser than the element-graph bound;
            // sanity-check the broad range.
            assert!(frac > 0.03 && frac < 0.51, "{ordering:?}: {frac}");
        }
    }

    #[test]
    fn cuthill_mckee_ordering_is_dense_like_natural() {
        // CM is a "natural" order in the paper's taxonomy: it should land
        // near the natural MIS density, not the random one.
        let g = grid3(10);
        let n = g.num_vertices();
        let rank = vec![0u8; n];
        let count = |ord: MisOrdering| {
            greedy_mis(&g, &ord.order_with_graph(&g, &rank))
                .iter()
                .filter(|&&s| s)
                .count()
        };
        let cm = count(MisOrdering::CuthillMcKee);
        let nat = count(MisOrdering::Natural);
        let rnd = count(MisOrdering::Random(3));
        assert!(cm > rnd, "CM {cm} should be denser than random {rnd}");
        assert!(
            (cm as f64 - nat as f64).abs() < 0.35 * nat as f64,
            "CM {cm} should be near natural {nat}"
        );
        let sel = greedy_mis(&g, &MisOrdering::CuthillMcKee.order_with_graph(&g, &rank));
        assert!(is_independent(&g, &sel));
        assert!(is_maximal(&g, &sel));
    }

    #[test]
    fn exterior_natural_interior_random_orders_exterior_first() {
        let n = 10;
        let mut rank = vec![0u8; n];
        rank[3] = 1;
        rank[7] = 2;
        let ord = MisOrdering::NaturalExteriorRandomInterior(1).order(n, &rank);
        assert_eq!(ord[0], 7); // highest rank first
        assert_eq!(ord[1], 3);
    }

    #[test]
    fn transport_mis_matches_rayon_exactly() {
        let g = grid3(5);
        let n = g.num_vertices();
        let rank: Vec<u8> = (0..n).map(|v| (v % 3) as u8).collect();
        let order: Vec<u32> = (0..n as u32).collect();
        for nproc in [1usize, 3, 7] {
            let proc: Vec<u32> = (0..n).map(|v| (v % nproc) as u32).collect();
            let expect = parallel_mis(&g, &rank, &proc, &order);
            for nranks in [1usize, 2, 4] {
                let (g2, rank2, proc2, order2) = (&g, &rank, &proc, &order);
                let masks = pmg_comm::LocalTransport::run_ranks(nranks, move |mut t| {
                    parallel_mis_transport(&mut t, g2, rank2, proc2, order2, 0).unwrap()
                });
                for mask in &masks {
                    assert_eq!(mask, &expect, "nproc={nproc} nranks={nranks}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_greedy_mis_invariants(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
            seed in 0u64..1000,
        ) {
            let g = Graph::from_edges(30, edges);
            let order = MisOrdering::Random(seed).order(30, &[0u8; 30]);
            let sel = greedy_mis(&g, &order);
            prop_assert!(is_independent(&g, &sel));
            prop_assert!(is_maximal(&g, &sel));
        }

        #[test]
        fn prop_parallel_mis_invariants(
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..80),
            ranks in proptest::collection::vec(0u8..4, 24),
            nproc in 1u32..5,
        ) {
            let g = Graph::from_edges(24, edges);
            let proc: Vec<u32> = (0..24).map(|v| v % nproc).collect();
            let order: Vec<u32> = (0..24).collect();
            let sel = parallel_mis(&g, &ranks, &proc, &order);
            prop_assert!(is_independent(&g, &sel));
            prop_assert!(is_maximal(&g, &sel));
            // Rank dominance: a deleted vertex has a selected neighbor of
            // rank >= ... (not strictly true: equal-rank proc ties) — check
            // the weaker invariant that no vertex was suppressed by a
            // strictly lower-ranked selected neighbor *only*: every deleted
            // vertex has some selected neighbor with rank >= its own, OR
            // was deleted by an equal/higher proc tie... The guaranteed
            // invariant from the algorithm: some selected neighbor exists
            // (maximality), already checked.
        }
    }
}
